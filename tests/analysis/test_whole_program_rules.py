"""Seeded-violation fixtures for the whole-program rules.

Each test writes a small multi-file package tree under ``tmp_path`` and
lints the *tmp root* (not the package directory): module names derive
from lint-root-relative paths, so the ``repro/`` path prefix must be
present for sim-domain matching and cross-module import resolution.
"""

from __future__ import annotations

import pathlib
import textwrap

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.engine import LintRun, lint_paths


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` files and lint the whole tree."""

    def _lint(files: dict[str, str], select: set[str] | None = None) -> LintRun:
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return lint_paths(
            [tmp_path],
            config=LintConfig(root=tmp_path),
            select=select,
            baseline_override=tmp_path / "no-baseline.json",
        )

    return _lint


class TestDet005DigestTaint:
    def test_set_iteration_reached_through_chain(self, lint_tree):
        run = lint_tree({
            "repro/harness/result.py": """
                from repro.util.agg import summarize

                class Result:
                    def to_dict(self):
                        return {"summary": summarize({"a", "b"})}
            """,
            "repro/util/agg.py": """
                def summarize(names):
                    flagged = {n for n in names if n}
                    return [item for item in flagged]
            """,
        }, select={"DET005"})
        assert [f.rule_id for f in run.findings] == ["DET005"]
        finding = run.findings[0]
        assert finding.path == "repro/util/agg.py"
        assert "reached via Result.to_dict -> summarize" in finding.message

    def test_id_call_in_digest_root(self, lint_tree):
        run = lint_tree({
            "repro/mod.py": """
                class Peer:
                    def to_dict(self):
                        return {"key": id(self)}
            """,
        }, select={"DET005"})
        assert len(run.findings) == 1
        assert "`id()` on a digest path" in run.findings[0].message

    def test_sorted_set_iteration_is_clean(self, lint_tree):
        run = lint_tree({
            "repro/mod.py": """
                def to_dict():
                    names = {"b", "a"}
                    return [n for n in sorted(names)]
            """,
        }, select={"DET005"})
        assert run.findings == []

    def test_repr_inside_raise_is_clean(self, lint_tree):
        run = lint_tree({
            "repro/mod.py": """
                def to_dict(value):
                    if value is None:
                        raise ValueError(f"bad value {value!r}: {repr(value)}")
                    return {"v": value}
            """,
        }, select={"DET005"})
        assert run.findings == []

    def test_unreachable_set_iteration_is_clean(self, lint_tree):
        # The same pattern outside the digest closure is DET003's
        # business (file-local), not DET005's.
        run = lint_tree({
            "repro/mod.py": """
                def helper():
                    return [n for n in {"a", "b"}]
            """,
        }, select={"DET005"})
        assert run.findings == []


class TestDet006RngEscape:
    def test_domain_chain_to_global_rng(self, lint_tree):
        run = lint_tree({
            "repro/net/jitter.py": """
                from repro.util.noise import jitter

                def run(packets):
                    return [p + jitter() for p in packets]
            """,
            "repro/util/noise.py": """
                import random

                def jitter():
                    return random.random()
            """,
        }, select={"DET006"})
        # Only the domain function is flagged, anchored at its def.
        assert [f.path for f in run.findings] == ["repro/net/jitter.py"]
        assert "run reaches the process-global RNG via run -> jitter" in run.findings[0].message

    def test_direct_sink_in_domain(self, lint_tree):
        run = lint_tree({
            "repro/experiments/detect.py": """
                import random

                def sample():
                    return random.choice([1, 2, 3])
            """,
        }, select={"DET006"})
        assert len(run.findings) == 1
        assert "sample uses the process-global RNG" in run.findings[0].message

    def test_unseeded_random_instance_is_a_sink(self, lint_tree):
        run = lint_tree({
            "repro/net/link.py": """
                import random

                def build():
                    return random.Random()
            """,
        }, select={"DET006"})
        assert len(run.findings) == 1

    def test_seeded_random_instance_is_clean(self, lint_tree):
        run = lint_tree({
            "repro/net/link.py": """
                import random

                def build(seed):
                    return random.Random(seed)
            """,
        }, select={"DET006"})
        assert run.findings == []

    def test_non_domain_module_untouched(self, lint_tree):
        run = lint_tree({
            "repro/tooling/fuzz.py": """
                import random

                def shuffle(items):
                    random.shuffle(items)
            """,
        }, select={"DET006"})
        assert run.findings == []


class TestShard001SharedState:
    def test_subscript_write_into_module_dict(self, lint_tree):
        run = lint_tree({
            "repro/net/cache.py": """
                _CACHE = {}

                def remember(key, value):
                    _CACHE[key] = value
            """,
        }, select={"SHARD001"})
        assert len(run.findings) == 1
        assert "writes into module state `repro.net.cache._CACHE`" in run.findings[0].message

    def test_mutating_call_on_imported_state(self, lint_tree):
        run = lint_tree({
            "repro/net/feed.py": """
                from repro.net.store import EVENTS

                def record(event):
                    EVENTS.append(event)
            """,
            "repro/net/store.py": """
                EVENTS = []
            """,
        }, select={"SHARD001"})
        assert len(run.findings) == 1
        assert "mutates module state `repro.net.store.EVENTS`" in run.findings[0].message

    def test_global_rebinding(self, lint_tree):
        run = lint_tree({
            "repro/net/counts.py": """
                _TOTALS = {}

                def reset():
                    global _TOTALS
                    _TOTALS = {}
            """,
        }, select={"SHARD001"})
        assert len(run.findings) == 1
        assert "rebinds module state" in run.findings[0].message

    def test_cls_attribute_write_in_method(self, lint_tree):
        run = lint_tree({
            "repro/net/pool.py": """
                class Pool:
                    limit = 4

                    def grow(self):
                        type(self).limit  # read is fine
                        Pool.limit = 8

                    @classmethod
                    def shrink(cls):
                        cls.limit = 2
            """,
        }, select={"SHARD001"})
        assert len(run.findings) == 2
        assert all("rebinds class attribute" in f.message for f in run.findings)

    def test_definition_time_hooks_exempt(self, lint_tree):
        run = lint_tree({
            "repro/net/kinds.py": """
                class Base:
                    registry = {}

                    def __init_subclass__(cls, **kwargs):
                        super().__init_subclass__(**kwargs)
                        cls.slot = len(cls.registry)
            """,
        }, select={"SHARD001"})
        assert run.findings == []

    def test_local_shadow_is_clean(self, lint_tree):
        run = lint_tree({
            "repro/net/shadow.py": """
                _CACHE = {}

                def isolated(_CACHE):
                    _CACHE["k"] = 1

                def fresh():
                    _CACHE = {}
                    _CACHE["k"] = 1
                    return _CACHE
            """,
        }, select={"SHARD001"})
        assert run.findings == []

    def test_out_of_scope_module_untouched(self, lint_tree):
        # Module state written outside the sim domain's reach is fine.
        run = lint_tree({
            "repro/tooling/memo.py": """
                _MEMO = {}

                def put(key, value):
                    _MEMO[key] = value
            """,
        }, select={"SHARD001"})
        assert run.findings == []


class TestApi002BlockingChain:
    FIXTURE = {
        "repro/experiments/probe.py": """
            from repro.util.shell import shell_out

            def run():
                return shell_out("git rev-parse HEAD")
        """,
        "repro/util/shell.py": """
            import subprocess  # repro: allow[API001] harness-side helper

            def shell_out(cmd):
                return subprocess.run(cmd, shell=True)  # repro: allow[API001]
        """,
    }

    def test_chain_to_blocking_sink(self, lint_tree):
        run = lint_tree(dict(self.FIXTURE), select={"API002"})
        assert [f.path for f in run.findings] == ["repro/experiments/probe.py"]
        assert "run reaches a blocking primitive via run -> shell_out" in run.findings[0].message

    def test_intermediate_pragma_does_not_kill_taint(self, lint_tree):
        # The helper's API001 pragmas (present in the fixture) sanction
        # the helper module — they must not license the domain chain.
        run = lint_tree(dict(self.FIXTURE), select={"API001", "API002"})
        assert "API002" in {f.rule_id for f in run.findings}

    def test_pragma_at_domain_function_suppresses(self, lint_tree):
        files = dict(self.FIXTURE)
        files["repro/experiments/probe.py"] = """
            from repro.util.shell import shell_out

            def run():  # repro: allow[API002] offline metadata probe, not sim time
                return shell_out("git rev-parse HEAD")
        """
        run = lint_tree(files, select={"API002"})
        assert run.findings == []
        assert len(run.suppressed) == 1

    def test_direct_blocking_call_in_domain(self, lint_tree):
        run = lint_tree({
            "repro/net/wait.py": """
                import time

                def settle():
                    time.sleep(0.1)
            """,
        }, select={"API002"})
        assert len(run.findings) == 1
        assert "calls a blocking primitive directly" in run.findings[0].message
