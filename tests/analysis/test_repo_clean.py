"""Self-check: the shipped tree satisfies its own determinism linter.

This is the CI gate the linter exists for — ``python -m pytest`` fails
the moment a wall-clock read, global random draw, or blocking call
lands in ``src/repro/`` — plus the acceptance check that a deliberately
re-introduced ``time.time()`` in ``net/clock.py`` is caught with the
right rule ID and location.
"""

import pathlib
import shutil

from repro.analysis.cli import main as lint_main
from repro.analysis.config import load_config
from repro.analysis.engine import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


class TestRepoIsClean:
    def test_src_repro_has_no_error_findings(self):
        config = load_config(SRC)
        run = lint_paths([SRC], config=config)
        locations = [f"{f.location} {f.rule_id} {f.message}" for f in run.errors]
        assert run.parse_errors == []
        assert locations == [], "new determinism violations:\n" + "\n".join(locations)
        assert run.exit_code == 0

    def test_cli_exits_zero_on_src(self, capsys):
        assert lint_main([str(SRC)]) == 0

    def test_sanctioned_wall_clock_is_suppressed_not_absent(self):
        # util/perf.py really does read the host clock; the run must show
        # it as suppressed (pragma/allowlist), proving DET001 saw it.
        run = lint_paths([SRC], config=load_config(SRC), select={"DET001"})
        suppressed_paths = {f.path for f in run.suppressed}
        assert any(path.endswith("util/perf.py") for path in suppressed_paths)


class TestReintroducedViolationFails:
    def test_wall_clock_in_clock_py_fails_with_det001(self, tmp_path, capsys):
        """Acceptance check: time.time() back in net/clock.py -> exit != 0."""
        sabotaged = tmp_path / "net"
        sabotaged.mkdir()
        target = sabotaged / "clock.py"
        shutil.copy(SRC / "net" / "clock.py", target)
        original = target.read_text()
        target.write_text(
            original.replace(
                "import itertools",
                "import itertools\nimport time",
            ).replace(
                "        self.now: float = 0.0",
                "        self.now: float = time.time()",
            )
        )
        assert target.read_text() != original, "sabotage did not apply"

        exit_code = lint_main([str(target)])
        out = capsys.readouterr().out
        assert exit_code != 0
        assert "DET001" in out
        assert "clock.py:" in out  # file:line location is reported

    def test_unseeded_random_in_scheduler_fails_with_det002(self, tmp_path, capsys):
        source = (
            "import random\n\n\n"
            "def pick_peer(peers):\n"
            "    return peers[int(random.random() * len(peers))]\n"
        )
        target = tmp_path / "scheduler.py"
        target.write_text(source)
        assert lint_main([str(target)]) != 0
        assert "DET002" in capsys.readouterr().out
