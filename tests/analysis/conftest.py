"""Shared fixtures for the reprolint tests.

``lint_snippet`` writes a code snippet into a tmp tree and lints it with
an isolated empty config (no pyproject discovery, no allowlist, no
baseline), so rule tests see exactly what the rule reports.
"""

from __future__ import annotations

import pathlib
import textwrap

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.engine import LintRun, lint_paths


@pytest.fixture
def lint_snippet(tmp_path):
    """Lint a dedented snippet; returns the LintRun."""

    def _lint(
        code: str,
        select: set[str] | None = None,
        filename: str = "snippet.py",
        config: LintConfig | None = None,
        baseline: pathlib.Path | None = None,
    ) -> LintRun:
        target = tmp_path / filename
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code))
        return lint_paths(
            [target],
            config=config or LintConfig(root=tmp_path),
            select=select,
            # A nonexistent override keeps any repo-level baseline out.
            baseline_override=baseline or (tmp_path / "no-baseline.json"),
        )

    return _lint


def rule_ids(run: LintRun) -> list[str]:
    """The rule IDs of a run's new findings, in report order."""
    return [finding.rule_id for finding in run.findings]
