"""DetSan: guard trips, clean restore, and dispatch-trace divergence.

The guard tests fabricate "simulation" callers by exec-ing functions
under a controlled ``__name__`` — DetSan keys on the caller frame's
module, so that is the only thing the fixture needs to fake — and
assert the violation names the exact file/line/function of the read.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis.sanitizer import (
    DetSanViolation,
    DispatchTrace,
    _Guards,
    first_divergence,
    sanitized_run,
)
from repro.net.clock import EventLoop
from repro.util.rand import DeterministicRandom


def make_caller(module_name: str, body: str, filename: str = "<sim-fixture>"):
    """Compile ``def probe(): return <body>`` under a fake module name."""
    namespace = {"__name__": module_name, "time": time, "random": random}
    code = compile(f"def probe():\n    return {body}\n", filename, "exec")
    exec(code, namespace)
    return namespace["probe"]


@pytest.fixture
def guards():
    g = _Guards()
    g.install()
    yield g
    g.uninstall()


class TestGuards:
    def test_wall_clock_read_from_sim_module_raises(self, guards):
        probe = make_caller("repro.experiments.fake", "time.time()")
        with pytest.raises(DetSanViolation) as exc:
            probe()
        message = str(exc.value)
        assert "`time.time`" in message
        assert "<sim-fixture>:2 in probe" in message  # the offending stack
        assert "repro.experiments.fake" in message

    def test_global_rng_draw_from_sim_module_raises(self, guards):
        probe = make_caller("repro.net.fake", "random.random()")
        with pytest.raises(DetSanViolation, match="`random.random`"):
            probe()

    def test_non_project_callers_pass_through(self, guards):
        # This test module is not repro.*; the host clock must work.
        assert time.time() > 0
        assert 0.0 <= random.random() < 1.0

    @pytest.mark.parametrize(
        "module", ["repro.util.perf", "repro.analysis.engine", "repro.harness.runner"]
    )
    def test_sanctioned_prefixes_pass_through(self, guards, module):
        probe = make_caller(module, "time.monotonic()")
        assert probe() > 0

    def test_deterministic_random_unaffected(self, guards):
        # DeterministicRandom binds instance methods at construction;
        # the module-level patch must not reach it even when drawn from
        # simulation code.
        rand = DeterministicRandom(2024)
        probe = make_caller("repro.experiments.fake", "rand.uniform(0.0, 1.0)")
        probe.__globals__["rand"] = rand
        assert 0.0 <= probe() <= 1.0

    def test_install_is_idempotent_and_restores_exactly(self):
        original_time, original_random = time.time, random.random
        outer, inner = _Guards(), _Guards()
        outer.install()
        inner.install()  # must not re-wrap the already-guarded functions
        assert not hasattr(getattr(time.time, "__detsan_original__"), "__detsan_original__")
        inner.uninstall()
        assert hasattr(time.time, "__detsan_original__")  # outer still armed
        outer.uninstall()
        assert time.time is original_time
        assert random.random is original_random


def run_loop(schedule, stride: int = 4):
    """Run ``[(when, callback), ...]`` under a trace; return the snapshot."""
    with sanitized_run(stride=stride) as detsan:
        loop = EventLoop()
        for when, callback in schedule:
            loop.schedule_at(when, callback)
        loop.run_all()
    return detsan.snapshot()


def cb_a():
    pass


def cb_b():
    pass


def cb_c():
    pass


class TestDispatchTrace:
    def test_identical_runs_have_identical_fingerprints(self):
        schedule = [(1.0, cb_a), (2.0, cb_b), (3.0, cb_c)]
        first, second = run_loop(schedule), run_loop(schedule)
        assert first.count == 3
        assert first.fingerprint == second.fingerprint
        assert first_divergence(first, second) is None

    def test_order_divergence_names_the_event(self):
        base = [(1.0, cb_a), (2.0, cb_b), (3.0, cb_c)]
        swapped = [(1.0, cb_a), (2.0, cb_c), (3.0, cb_b)]
        divergence = first_divergence(run_loop(base), run_loop(swapped))
        assert divergence is not None
        assert divergence.index == 1  # first event both runs agree on is #0
        assert "cb_b" in divergence.detail and "cb_c" in divergence.detail
        assert "t=2.000000" in divergence.detail
        assert divergence.render().startswith("first divergent event #1:")

    def test_timing_divergence_names_the_event(self):
        base = [(1.0, cb_a), (2.0, cb_b)]
        late = [(1.0, cb_a), (2.5, cb_b)]
        divergence = first_divergence(run_loop(base), run_loop(late))
        assert divergence is not None
        assert divergence.index == 1
        assert "t=2.000000" in divergence.detail and "t=2.500000" in divergence.detail

    def test_extra_event_reported_as_length_divergence(self):
        base = [(1.0, cb_a), (2.0, cb_b)]
        extra = [(1.0, cb_a), (2.0, cb_b), (3.0, cb_c)]
        divergence = first_divergence(run_loop(base), run_loop(extra))
        assert divergence is not None
        assert divergence.index == 2
        assert "run lengths differ (2 vs 3 events)" in divergence.detail
        assert "cb_c" in divergence.detail  # the first extra event is named

    def test_checkpoints_bound_old_divergence(self):
        # Divergence at event #0 with a tail window that has long since
        # slid past it: the checkpoint stream must still bound it.
        import repro.analysis.sanitizer as sanitizer_mod

        many = [(float(i), cb_a) for i in range(1, 40)]
        base = [(0.5, cb_b)] + many
        other = [(0.5, cb_c)] + many
        original_window = sanitizer_mod.TRACE_WINDOW
        sanitizer_mod.TRACE_WINDOW = 8
        try:
            divergence = first_divergence(
                run_loop(base, stride=16), run_loop(other, stride=16)
            )
        finally:
            sanitizer_mod.TRACE_WINDOW = original_window
        assert divergence is not None
        assert divergence.index == 0
        assert "between events #0 and #16" in divergence.detail

    def test_trace_seam_cleared_after_context(self):
        run_loop([(1.0, cb_a)])
        assert EventLoop._trace is None

    def test_snapshot_is_plain_data(self):
        import pickle

        snapshot = run_loop([(1.0, cb_a), (2.0, cb_b)])
        clone = pickle.loads(pickle.dumps(snapshot))
        assert first_divergence(snapshot, clone) is None


class TestSanitizedRunEndToEnd:
    def test_injected_wall_clock_read_caught_mid_run(self):
        # The canonical seeded violation: an event callback that reads
        # the host clock. The run must die at that callback with the
        # injection site in the message.
        leak = make_caller("repro.experiments.fake", "time.perf_counter()")
        with pytest.raises(DetSanViolation, match="time.perf_counter"):
            with sanitized_run():
                loop = EventLoop()
                loop.schedule_at(1.0, cb_a)
                loop.schedule_at(2.0, leak)
                loop.run_all()
        # Guards must be gone even though the run raised.
        assert not hasattr(time.perf_counter, "__detsan_original__")
        assert EventLoop._trace is None

    def test_trace_disabled_when_not_wanted(self):
        with sanitized_run(trace=False) as detsan:
            loop = EventLoop()
            loop.schedule_at(1.0, cb_a)
            loop.run_all()
        assert detsan.snapshot() is None
