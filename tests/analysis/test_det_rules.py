"""Determinism rules DET001-DET004: positive hits and pragma suppression."""

from conftest import rule_ids


class TestDet001WallClock:
    def test_time_time_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            import time

            def stamp():
                return time.time()
            """,
            select={"DET001"},
        )
        assert rule_ids(run) == ["DET001"]
        assert run.findings[0].line == 5
        assert "EventLoop.now" in run.findings[0].message

    def test_aliased_and_from_imports_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            import time as t
            from datetime import datetime

            def stamps():
                return t.monotonic(), datetime.now()
            """,
            select={"DET001"},
        )
        assert rule_ids(run) == ["DET001", "DET001"]

    def test_eventloop_now_not_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            def tick(loop):
                return loop.now
            """,
            select={"DET001"},
        )
        assert run.findings == []

    def test_pragma_suppresses(self, lint_snippet):
        run = lint_snippet(
            """
            import time

            def harness_stamp():
                return time.perf_counter()  # repro: allow[DET001] harness wall time
            """,
            select={"DET001"},
        )
        assert run.findings == []
        assert [f.rule_id for f in run.suppressed] == ["DET001"]


class TestDet002GlobalRandom:
    def test_global_random_call_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            import random

            def jitter():
                return random.random() * 2
            """,
            select={"DET002"},
        )
        assert rule_ids(run) == ["DET002"]
        assert "DeterministicRandom" in run.findings[0].message

    def test_from_import_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            from random import choice

            def pick(options):
                return choice(options)
            """,
            select={"DET002"},
        )
        assert rule_ids(run) == ["DET002"]

    def test_unseeded_random_instance_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            import random

            RNG = random.Random()
            """,
            select={"DET002"},
        )
        assert rule_ids(run) == ["DET002"]

    def test_seeded_random_instance_ok(self, lint_snippet):
        run = lint_snippet(
            """
            import random

            RNG = random.Random(2024)
            """,
            select={"DET002"},
        )
        assert run.findings == []

    def test_pragma_suppresses(self, lint_snippet):
        run = lint_snippet(
            """
            import random

            def noise():
                return random.random()  # repro: allow[DET002] test-only jitter
            """,
            select={"DET002"},
        )
        assert run.findings == []
        assert [f.rule_id for f in run.suppressed] == ["DET002"]


class TestDet003SetOrdering:
    def test_set_iteration_into_schedule_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            def arm(loop, peers):
                pending = set(peers)
                for peer in pending:
                    loop.schedule(1.0, peer.tick)
            """,
            select={"DET003"},
        )
        assert rule_ids(run) == ["DET003"]
        assert "sorted" in run.findings[0].message

    def test_keys_view_into_print_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            def report(stats):
                for name in stats.keys():
                    print(name, stats[name])
            """,
            select={"DET003"},
        )
        assert rule_ids(run) == ["DET003"]

    def test_set_comprehension_feeding_render_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            def table(render_table, hosts):
                seen = {h.ip for h in hosts}
                return render_table(["ip"], [[ip] for ip in seen])
            """,
            select={"DET003"},
        )
        assert rule_ids(run) == ["DET003"]

    def test_sorted_wrapper_ok(self, lint_snippet):
        run = lint_snippet(
            """
            def arm(loop, peers):
                pending = set(peers)
                for peer in sorted(pending):
                    loop.schedule(1.0, peer.tick)
            """,
            select={"DET003"},
        )
        assert run.findings == []

    def test_set_iteration_without_sink_ok(self, lint_snippet):
        run = lint_snippet(
            """
            def total(values):
                acc = 0
                for v in set(values):
                    acc += v
                return acc
            """,
            select={"DET003"},
        )
        assert run.findings == []

    def test_pragma_suppresses(self, lint_snippet):
        run = lint_snippet(
            """
            def arm(loop, peers):
                for peer in set(peers):  # repro: allow[DET003] order-insensitive sink
                    loop.schedule(1.0, peer.tick)
            """,
            select={"DET003"},
        )
        assert run.findings == []
        assert [f.rule_id for f in run.suppressed] == ["DET003"]


class TestDet004FloatTimeEquality:
    def test_now_equality_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            def expired(loop, deadline):
                return loop.now == deadline
            """,
            select={"DET004"},
        )
        assert rule_ids(run) == ["DET004"]
        assert "isclose" in run.findings[0].message

    def test_not_equal_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            def pending(when, target):
                return when != target
            """,
            select={"DET004"},
        )
        assert rule_ids(run) == ["DET004"]

    def test_band_comparison_ok(self, lint_snippet):
        run = lint_snippet(
            """
            def expired(loop, deadline):
                return loop.now >= deadline
            """,
            select={"DET004"},
        )
        assert run.findings == []

    def test_pragma_suppresses(self, lint_snippet):
        run = lint_snippet(
            """
            def at_origin(loop):
                return loop.now == 0.0  # repro: allow[DET004] exact origin sentinel
            """,
            select={"DET004"},
        )
        assert run.findings == []
        assert [f.rule_id for f in run.suppressed] == ["DET004"]
