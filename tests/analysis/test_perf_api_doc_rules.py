"""PERF001, API001, and the soft DOC001 rule."""

from repro.analysis.findings import Severity

from conftest import rule_ids


class TestPerf001RegexCompile:
    def test_compile_in_loop_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            import re

            PATTERNS = ["a+", "b+"]

            def scan(lines):
                hits = 0
                for line in lines:
                    if re.compile("x+").search(line):
                        hits += 1
                return hits
            """,
            select={"PERF001"},
        )
        assert rule_ids(run) == ["PERF001"]
        assert "loop" in run.findings[0].message

    def test_compile_per_call_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            import re

            class Signature:
                def compiled(self):
                    return re.compile("a+")
            """,
            select={"PERF001"},
        )
        assert rule_ids(run) == ["PERF001"]
        assert "compiled" in run.findings[0].message

    def test_module_level_compile_ok(self, lint_snippet):
        run = lint_snippet(
            """
            import re

            KEY_RE = re.compile("[0-9a-f]{8,}")
            """,
            select={"PERF001"},
        )
        assert run.findings == []

    def test_init_and_lru_cache_ok(self, lint_snippet):
        run = lint_snippet(
            """
            import functools
            import re

            class Scanner:
                def __init__(self):
                    self.pattern = re.compile("a+")

            @functools.lru_cache(maxsize=None)
            def compiled(pattern):
                return re.compile(pattern)
            """,
            select={"PERF001"},
        )
        assert run.findings == []

    def test_pragma_suppresses(self, lint_snippet):
        run = lint_snippet(
            """
            import re

            def one_shot(pattern, text):
                return re.compile(pattern).search(text)  # repro: allow[PERF001] cold path
            """,
            select={"PERF001"},
        )
        assert run.findings == []
        assert [f.rule_id for f in run.suppressed] == ["PERF001"]


class TestApi001Blocking:
    def test_time_sleep_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            import time

            def wait():
                time.sleep(1.0)
            """,
            select={"API001"},
        )
        assert rule_ids(run) == ["API001"]
        assert "event loop" in run.findings[0].message

    def test_socket_and_subprocess_imports_flagged(self, lint_snippet):
        run = lint_snippet(
            """
            import socket
            from subprocess import run
            """,
            select={"API001"},
        )
        assert rule_ids(run) == ["API001", "API001"]

    def test_sim_socket_attribute_not_flagged(self, lint_snippet):
        # `self.socket` is the simulated UDP socket, not the socket module.
        run = lint_snippet(
            """
            class Host:
                def address(self):
                    return self.socket.port
            """,
            select={"API001"},
        )
        assert run.findings == []

    def test_pragma_suppresses(self, lint_snippet):
        run = lint_snippet(
            """
            import time

            def settle():
                time.sleep(0.1)  # repro: allow[API001] harness-only backoff
            """,
            select={"API001"},
        )
        assert run.findings == []
        assert [f.rule_id for f in run.suppressed] == ["API001"]


class TestDoc001StubDocstrings:
    def test_stub_docstring_reported_as_info(self, lint_snippet):
        run = lint_snippet(
            '''
            class Signature:
                def matches(self, text):
                    """Matches."""
                    return True
            ''',
            select={"DOC001"},
        )
        assert rule_ids(run) == ["DOC001"]
        assert run.findings[0].severity is Severity.INFO
        # Soft rule: findings never gate the build.
        assert run.exit_code == 0

    def test_name_restated_with_spaces_reported(self, lint_snippet):
        run = lint_snippet(
            '''
            def is_potential(self):
                """Is potential."""
                return True
            ''',
            select={"DOC001"},
        )
        assert rule_ids(run) == ["DOC001"]

    def test_real_docstring_ok(self, lint_snippet):
        run = lint_snippet(
            '''
            def matches(self, text):
                """True when the fingerprint occurs anywhere in ``text``."""
                return True
            ''',
            select={"DOC001"},
        )
        assert run.findings == []

    def test_missing_docstring_not_reported(self, lint_snippet):
        # DOC001 targets *placeholder* docstrings, not missing ones.
        run = lint_snippet(
            """
            def helper(x):
                return x + 1
            """,
            select={"DOC001"},
        )
        assert run.findings == []

    def test_pragma_suppresses(self, lint_snippet):
        run = lint_snippet(
            '''
            def fork(self):  # repro: allow[DOC001] name is the whole story
                """Fork."""
                return self
            ''',
            select={"DOC001"},
        )
        assert run.findings == []
        assert [f.rule_id for f in run.suppressed] == ["DOC001"]
