"""ProjectGraph construction: symbols, edges, resolution, determinism."""

import textwrap

import pytest

from repro.analysis.callgraph import build_project, module_name_for
from repro.analysis.context import build_context
from repro.analysis.dataflow import chain, reachable_from, reaches, render_chain


def make_contexts(files: dict[str, str]) -> dict:
    """Parse a ``{relpath: source}`` mapping into FileContexts."""
    return {
        relpath: build_context(relpath, textwrap.dedent(source))
        for relpath, source in files.items()
    }


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/net/clock.py") == "repro.net.clock"

    def test_init_collapses_to_package(self):
        assert module_name_for("repro/net/__init__.py") == "repro.net"

    def test_bare_file(self):
        assert module_name_for("tool.py") == "tool"


class TestSymbolTable:
    def test_functions_classes_and_module_state(self):
        graph = build_project(make_contexts({
            "repro/mod.py": """
                REGISTRY = {}
                LIMIT = 3

                def helper():
                    pass

                class Box:
                    def get(self):
                        pass
            """,
        }))
        assert "repro.mod.helper" in graph.functions
        assert "repro.mod.Box.get" in graph.functions
        assert "repro.mod.Box" in graph.classes
        assert "repro.mod.REGISTRY" in graph.module_state
        assert graph.module_state["repro.mod.REGISTRY"].kind == "dict"
        # Immutable module constants are not tracked as shared state.
        assert "repro.mod.LIMIT" not in graph.module_state

    def test_short_names_strip_module(self):
        graph = build_project(make_contexts({
            "repro/mod.py": """
                class Box:
                    def get(self):
                        pass
            """,
        }))
        assert graph.functions["repro.mod.Box.get"].short == "Box.get"


class TestEdges:
    def test_same_module_call(self):
        graph = build_project(make_contexts({
            "repro/mod.py": """
                def low():
                    pass

                def high():
                    low()
            """,
        }))
        assert graph.edges["repro.mod.high"] == ["repro.mod.low"]

    def test_cross_module_import_call(self):
        graph = build_project(make_contexts({
            "repro/a.py": """
                from repro.b import helper

                def caller():
                    helper()
            """,
            "repro/b.py": """
                def helper():
                    pass
            """,
        }))
        assert graph.edges["repro.a.caller"] == ["repro.b.helper"]

    def test_self_method_and_base_class_resolution(self):
        graph = build_project(make_contexts({
            "repro/mod.py": """
                class Base:
                    def shared(self):
                        pass

                class Child(Base):
                    def use(self):
                        self.shared()
            """,
        }))
        assert graph.edges["repro.mod.Child.use"] == ["repro.mod.Base.shared"]

    def test_attr_type_from_init(self):
        graph = build_project(make_contexts({
            "repro/mod.py": """
                class Engine:
                    def fire(self):
                        pass

                class Car:
                    def __init__(self):
                        self.engine = Engine()

                    def drive(self):
                        self.engine.fire()
            """,
        }))
        assert "repro.mod.Engine.fire" in graph.edges["repro.mod.Car.drive"]

    def test_local_instantiation_typing(self):
        graph = build_project(make_contexts({
            "repro/mod.py": """
                class Engine:
                    def fire(self):
                        pass

                def go():
                    e = Engine()
                    e.fire()
            """,
        }))
        assert "repro.mod.Engine.fire" in graph.edges["repro.mod.go"]

    def test_constructor_call_targets_init(self):
        graph = build_project(make_contexts({
            "repro/mod.py": """
                class Box:
                    def __init__(self):
                        pass

                def build():
                    return Box()
            """,
        }))
        assert graph.edges["repro.mod.build"] == ["repro.mod.Box.__init__"]

    def test_external_refs_resolved_through_imports(self):
        graph = build_project(make_contexts({
            "repro/mod.py": """
                import time

                def stamp():
                    return time.time()
            """,
        }))
        refs = [ref for _, ref in graph.functions["repro.mod.stamp"].external_refs]
        assert "time.time" in refs


class TestDataflow:
    def graph(self):
        return build_project(make_contexts({
            "repro/mod.py": """
                def sink():
                    pass

                def mid():
                    sink()

                def root():
                    mid()

                def unrelated():
                    pass
            """,
        }))

    def test_forward_closure_with_chain(self):
        graph = self.graph()
        parents = reachable_from(graph, ["repro.mod.root"])
        assert set(parents) == {"repro.mod.root", "repro.mod.mid", "repro.mod.sink"}
        path = list(reversed(chain(parents, "repro.mod.sink")))
        assert path == ["repro.mod.root", "repro.mod.mid", "repro.mod.sink"]
        assert render_chain(graph, path) == "root -> mid -> sink"

    def test_backward_closure_walks_toward_sink(self):
        graph = self.graph()
        parents = reaches(graph, {"repro.mod.sink"})
        assert "repro.mod.root" in parents
        assert "repro.mod.unrelated" not in parents
        assert chain(parents, "repro.mod.root") == [
            "repro.mod.root", "repro.mod.mid", "repro.mod.sink",
        ]

    def test_build_is_deterministic(self):
        files = {
            "repro/z.py": "def zf():\n    pass\n",
            "repro/a.py": "from repro.z import zf\n\ndef af():\n    zf()\n",
        }
        first = build_project(make_contexts(files))
        second = build_project(make_contexts(dict(reversed(list(files.items())))))
        assert sorted(first.functions) == sorted(second.functions)
        assert first.edges == second.edges
