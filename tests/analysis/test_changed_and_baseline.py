"""``lint --changed`` scoping and stale-baseline enforcement.

These tests build throwaway git repositories under ``tmp_path`` so the
git plumbing in :mod:`repro.analysis.changed` runs for real, and drive
the linter through its CLI ``main`` for end-to-end exit codes.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import textwrap

import pytest

from repro.analysis.changed import ChangedFilesError, changed_python_files
from repro.analysis.cli import main as lint_main

PYPROJECT = """\
[tool.reprolint]
baseline = "baseline.json"
"""

CLEAN_MODULE = """\
def describe():
    return "clean"
"""

RNG_HELPER = """\
import random


def jitter():
    return random.random()
"""

DOMAIN_CALLER = """\
from repro.util.noise import jitter


def run(packets):
    return [p + jitter() for p in packets]
"""


def git(repo: pathlib.Path, *args: str) -> str:
    proc = subprocess.run(
        ["git", "-c", "user.email=t@example.invalid", "-c", "user.name=t", *args],
        cwd=repo, capture_output=True, text=True, check=True,
    )
    return proc.stdout


def write(repo: pathlib.Path, relpath: str, content: str) -> pathlib.Path:
    target = repo / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(content))
    return target


@pytest.fixture
def git_repo(tmp_path):
    """A committed repo: pyproject + one clean tracked module."""
    git(tmp_path, "init", "-q")
    write(tmp_path, "pyproject.toml", PYPROJECT)
    write(tmp_path, "repro/util/clean.py", CLEAN_MODULE)
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


class TestChangedPythonFiles:
    def test_modified_and_untracked_files_listed(self, git_repo):
        write(git_repo, "repro/util/clean.py", CLEAN_MODULE + "\n# touched\n")
        write(git_repo, "repro/util/fresh.py", CLEAN_MODULE)
        write(git_repo, "notes.txt", "not python\n")
        assert changed_python_files(git_repo) == {
            "repro/util/clean.py",
            "repro/util/fresh.py",
        }

    def test_committed_change_vs_older_ref(self, git_repo):
        write(git_repo, "repro/util/clean.py", CLEAN_MODULE + "\n# touched\n")
        git(git_repo, "add", "-A")
        git(git_repo, "commit", "-q", "-m", "touch")
        assert changed_python_files(git_repo) == set()
        assert changed_python_files(git_repo, "HEAD~1") == {"repro/util/clean.py"}

    def test_paths_outside_lint_root_skipped(self, git_repo):
        lint_root = git_repo / "repro"
        write(git_repo, "tools/outside.py", CLEAN_MODULE)
        write(git_repo, "repro/util/fresh.py", CLEAN_MODULE)
        assert changed_python_files(lint_root) == {"util/fresh.py"}

    def test_not_a_repo_raises(self, tmp_path):
        with pytest.raises(ChangedFilesError):
            changed_python_files(tmp_path)


class TestChangedCli:
    def test_reports_only_changed_files_with_full_graph(self, git_repo, capsys):
        # The RNG helper is committed (unchanged); the new domain caller
        # is untracked. --changed must report only the caller, but the
        # DET006 chain through the unchanged helper must still resolve.
        write(git_repo, "repro/util/noise.py", RNG_HELPER)
        git(git_repo, "add", "-A")
        git(git_repo, "commit", "-q", "-m", "helper")
        write(git_repo, "repro/net/jitter.py", DOMAIN_CALLER)

        rc = lint_main(["--changed", "--format", "json", str(git_repo)])
        report = json.loads(capsys.readouterr().out)
        paths = {f["path"] for f in report["findings"]}
        assert paths == {"repro/net/jitter.py"}
        messages = [f["message"] for f in report["findings"] if f["rule"] == "DET006"]
        assert any("via run -> jitter" in m for m in messages)
        assert rc == 1

    def test_empty_change_set_is_clean(self, git_repo, capsys):
        # Paths go first: --changed takes an optional REF, so a path
        # straight after it would parse as the ref.
        rc = lint_main([str(git_repo), "--changed"])
        assert rc == 0
        assert "no Python files changed" in capsys.readouterr().out

    def test_prune_rejects_changed(self, git_repo, capsys):
        rc = lint_main(["--prune", "--changed", str(git_repo)])
        assert rc == 2
        assert "--prune cannot be combined with --changed" in capsys.readouterr().err


class TestStaleBaseline:
    def seed_violation(self, git_repo) -> pathlib.Path:
        write(git_repo, "repro/net/jitter.py", DOMAIN_CALLER)
        write(git_repo, "repro/util/noise.py", RNG_HELPER)
        return git_repo / "baseline.json"

    def test_stale_fingerprint_fails_and_prune_recovers(self, git_repo, capsys):
        baseline = self.seed_violation(git_repo)

        assert lint_main(["--write-baseline", str(git_repo)]) == 0
        assert lint_main([str(git_repo)]) == 0  # everything grandfathered
        capsys.readouterr()

        # A fingerprint that matches nothing is a latent hole: error.
        data = json.loads(baseline.read_text())
        data["fingerprints"].append("deadbeefdeadbeef")
        baseline.write_text(json.dumps(data))
        rc = lint_main([str(git_repo)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "STALE fingerprint deadbeefdeadbeef" in out
        assert "--prune" in out  # the report names the remedy

    def test_prune_drops_only_stale_entries(self, git_repo, capsys):
        baseline = self.seed_violation(git_repo)
        assert lint_main(["--write-baseline", str(git_repo)]) == 0
        kept = set(json.loads(baseline.read_text())["fingerprints"])

        data = json.loads(baseline.read_text())
        data["fingerprints"].append("deadbeefdeadbeef")
        baseline.write_text(json.dumps(data))

        assert lint_main(["--prune", str(git_repo)]) == 0
        assert set(json.loads(baseline.read_text())["fingerprints"]) == kept
        assert lint_main([str(git_repo)]) == 0
        capsys.readouterr()

    def test_prune_never_grandfathers_new_findings(self, git_repo, capsys):
        baseline = self.seed_violation(git_repo)
        baseline.write_text(json.dumps({"version": 1, "fingerprints": []}))
        # Pruning an empty baseline keeps it empty even though the tree
        # has live findings — pruning is subtractive only.
        assert lint_main(["--prune", str(git_repo)]) == 0
        assert json.loads(baseline.read_text())["fingerprints"] == []
        assert lint_main([str(git_repo)]) == 1
        capsys.readouterr()

    def test_scoped_runs_skip_staleness(self, git_repo, capsys):
        baseline = self.seed_violation(git_repo)
        git(git_repo, "add", "-A")
        git(git_repo, "commit", "-q", "-m", "violations")
        assert lint_main(["--write-baseline", str(git_repo)]) == 0
        data = json.loads(baseline.read_text())
        data["fingerprints"].append("deadbeefdeadbeef")
        baseline.write_text(json.dumps(data))

        # Touch one clean file: the scoped run must not flag the stale
        # entry (it may belong to an unreported file)...
        write(git_repo, "repro/util/extra.py", CLEAN_MODULE)
        assert lint_main([str(git_repo), "--changed"]) == 0
        # ...but the full run still fails on it.
        assert lint_main([str(git_repo)]) == 1
        capsys.readouterr()
