"""Engine behaviour: allowlist, baseline, selection, reports, CLI."""

import json
import pathlib
import textwrap

import pytest

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import lint_paths
from repro.analysis.reporting import render_json, render_text

SNIPPET = """
import time

def stamp():
    return time.time()
"""


def write_snippet(tmp_path: pathlib.Path, name: str = "mod.py") -> pathlib.Path:
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(SNIPPET))
    return target


class TestAllowlist:
    def test_allowlisted_file_suppressed(self, tmp_path):
        target = write_snippet(tmp_path)
        config = LintConfig(root=tmp_path, allow={"DET001": ["mod.py"]})
        run = lint_paths([target], config=config, select={"DET001"})
        assert run.findings == []
        assert [f.rule_id for f in run.suppressed] == ["DET001"]
        assert run.exit_code == 0

    def test_allow_glob_matches_directories(self, tmp_path):
        target = write_snippet(tmp_path, "pkg/inner/mod.py")
        config = LintConfig(root=tmp_path, allow={"DET001": ["pkg/*"]})
        run = lint_paths([target], config=config, select={"DET001"})
        assert run.findings == []

    def test_other_rules_unaffected(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\nimport subprocess\n\nx = time.time()\n")
        config = LintConfig(root=tmp_path, allow={"DET001": ["mod.py"]})
        run = lint_paths([target], config=config, select={"DET001", "API001"})
        assert [f.rule_id for f in run.findings] == ["API001"]


class TestBaseline:
    def test_baseline_roundtrip_filters_old_findings(self, tmp_path):
        target = write_snippet(tmp_path)
        config = LintConfig(root=tmp_path)
        first = lint_paths([target], config=config, select={"DET001"})
        assert first.exit_code == 1

        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, first.findings)
        assert load_baseline(baseline_file) == {f.fingerprint() for f in first.findings}

        second = lint_paths(
            [target], config=config, select={"DET001"}, baseline_override=baseline_file
        )
        assert second.findings == []
        assert [f.rule_id for f in second.baselined] == ["DET001"]
        assert second.exit_code == 0

    def test_new_violation_still_fails_under_baseline(self, tmp_path):
        target = write_snippet(tmp_path)
        config = LintConfig(root=tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, lint_paths([target], config=config).findings)

        target.write_text(target.read_text() + "\n\ndef other():\n    return time.monotonic()\n")
        run = lint_paths(
            [target], config=config, select={"DET001"}, baseline_override=baseline_file
        )
        assert [f.rule_id for f in run.findings] == ["DET001"]
        assert "monotonic" in run.findings[0].message
        assert run.exit_code == 1

    def test_fingerprint_survives_line_shift(self, tmp_path):
        target = write_snippet(tmp_path)
        config = LintConfig(root=tmp_path)
        before = lint_paths([target], config=config, select={"DET001"}).findings
        target.write_text("# a new leading comment\n" + textwrap.dedent(SNIPPET))
        after = lint_paths([target], config=config, select={"DET001"}).findings
        assert [f.fingerprint() for f in before] == [f.fingerprint() for f in after]
        assert after[0].line == before[0].line + 1

    def test_duplicate_lines_get_distinct_fingerprints(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\n\nx = time.time()\nprint(x)\nx = time.time()\n")
        run = lint_paths([target], config=LintConfig(root=tmp_path), select={"DET001"})
        prints = [f.fingerprint() for f in run.findings]
        assert len(prints) == 2
        # Identical source text on both lines — only the occurrence differs.
        assert len(set(prints)) == 2


class TestSelectionAndErrors:
    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(ValueError, match="NOPE999"):
            lint_paths([write_snippet(tmp_path)], config=LintConfig(root=tmp_path),
                       select={"NOPE999"})

    def test_syntax_error_reported_as_parse_error(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        run = lint_paths([target], config=LintConfig(root=tmp_path))
        assert run.parse_errors and run.parse_errors[0][0] == "broken.py"
        assert run.exit_code == 2


class TestConfigLoading:
    def test_loads_tool_reprolint_section(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
            [tool.reprolint]
            baseline = "base.json"
            exclude = ["gen/*"]

            [tool.reprolint.allow]
            det001 = ["a.py"]
        """))
        config = load_config(tmp_path / "sub")
        assert config.root == tmp_path
        assert config.baseline_path == tmp_path / "base.json"
        assert config.is_allowlisted("DET001", "a.py")
        assert config.is_excluded("gen/x.py")

    def test_missing_pyproject_gives_empty_config(self, tmp_path):
        config = load_config(tmp_path)
        assert config.allow == {} and config.baseline_path is None


class TestReports:
    def test_text_report_has_location_and_verdict(self, tmp_path):
        run = lint_paths([write_snippet(tmp_path)], config=LintConfig(root=tmp_path),
                         select={"DET001"})
        text = render_text(run)
        assert "mod.py:5:11 DET001" in text
        assert "verdict" in text and "FAIL" in text

    def test_json_report_parses(self, tmp_path):
        run = lint_paths([write_snippet(tmp_path)], config=LintConfig(root=tmp_path),
                         select={"DET001"})
        payload = json.loads(render_json(run))
        assert payload["exit_code"] == 1
        assert payload["findings"][0]["rule"] == "DET001"
        assert payload["findings"][0]["path"] == "mod.py"


class TestCli:
    def test_exit_codes_and_output(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # keep the repo pyproject out of discovery
        target = write_snippet(tmp_path)
        assert lint_main([str(target), "--select", "DET001"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "mod.py:5" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        clean = tmp_path / "clean.py"
        clean.write_text('"""A clean module."""\n\nVALUE = 1\n')
        assert lint_main([str(clean)]) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "PERF001", "API001", "DOC001"):
            assert rule_id in out

    def test_nonexistent_path_is_an_error_not_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert lint_main([str(tmp_path / "no-such-dir")]) == 2
        assert "no Python files found" in capsys.readouterr().err

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = write_snippet(tmp_path)
        baseline = tmp_path / "base.json"
        assert lint_main([str(target), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
