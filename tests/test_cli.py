"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("detect", "risk-matrix", "im-checking", "resources",
                        "bandwidth", "free-riding", "ip-leak", "token-defense",
                        "ecdn", "propagation", "consent", "detection-quality", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_option(self):
        args = build_parser().parse_args(["detect", "--seed", "7"])
        assert args.seed == 7


class TestExecution:
    def test_token_defense_runs(self, capsys):
        assert main(["token-defense"]) == 0
        out = capsys.readouterr().out
        assert "283 B" in out
        assert "defense effective" in out

    def test_resources_runs(self, capsys):
        assert main(["resources"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "CPU overhead" in out

    def test_ecdn_runs(self, capsys):
        assert main(["ecdn"]) == 0
        out = capsys.readouterr().out
        assert "Microsoft eCDN" in out
