"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.harness import registry


class TestParser:
    def test_all_registered_experiments_are_commands(self):
        parser = build_parser()
        for command in registry.names():
            args = parser.parse_args([command])
            assert args.command == command

    def test_harness_commands_present(self):
        parser = build_parser()
        for command in ("all", "verify", "list", "lint"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_option(self):
        args = build_parser().parse_args(["detect", "--seed", "7"])
        assert args.seed == 7

    def test_spec_option_surfaces(self):
        args = build_parser().parse_args(["ip-leak", "--days", "2.5"])
        assert args.opt_days == 2.5

    def test_param_overrides_parse_to_typed_pairs(self):
        args = build_parser().parse_args(["detect", "-p", "watch_seconds=5", "-p", "x=y"])
        assert args.param == [("watch_seconds", 5), ("x", "y")]

    def test_jobs_option(self):
        args = build_parser().parse_args(["all", "--jobs", "4"])
        assert args.jobs == 4


class TestExecution:
    def test_token_defense_runs(self, capsys):
        assert main(["token-defense"]) == 0
        out = capsys.readouterr().out
        assert "283 B" in out
        assert "defense effective" in out

    def test_resources_runs(self, capsys):
        assert main(["resources"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "CPU overhead" in out

    def test_ecdn_runs(self, capsys):
        assert main(["ecdn"]) == 0
        out = capsys.readouterr().out
        assert "Microsoft eCDN" in out

    def test_json_format_emits_payload(self, capsys):
        assert main(["token-defense", "--format", "json"]) == 0
        runs = json.loads(capsys.readouterr().out)["runs"]
        assert len(runs) == 1
        assert runs[0]["experiment"] == "token-defense"
        assert runs[0]["result_digest"]
        assert runs[0]["result"]["listing1_bytes"] == 283
        assert runs[0]["manifest"]["status"] == "ok"

    def test_profile_prints_site_table(self, capsys):
        assert main(["token-defense", "--profile"]) == 0
        assert "event-loop profile" in capsys.readouterr().out

    def test_list_shows_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out


class TestAllSmoke:
    def test_all_jobs2_json_quick(self, capsys, tmp_path):
        assert main([
            "all", "--quick", "--jobs", "2", "--format", "json",
            "--out", str(tmp_path),
        ]) == 0
        payloads = json.loads(capsys.readouterr().out)["runs"]
        assert [p["experiment"] for p in payloads] == registry.names()
        assert all(p["result_digest"] for p in payloads)
        for name in registry.names():
            manifest = json.loads((tmp_path / f"{name}.manifest.json").read_text())
            assert manifest["status"] == "ok"
            result = json.loads((tmp_path / f"{name}.result.json").read_text())
            assert result["result_digest"] == manifest["result_digest"]


class TestVerify:
    def test_verify_fast_experiments(self, capsys):
        assert main([
            "verify", "--quick", "--runs", "2", "token-defense", "consent", "ecdn",
        ]) == 0
        assert "verdict: deterministic" in capsys.readouterr().out
