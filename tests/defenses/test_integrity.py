"""Tests for peer-assisted integrity checking (§V-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.defenses.integrity import ClientIntegrity, IntegrityCoordinator, compute_im, content_id
from repro.environment import Environment
from repro.pdn.provider import PEER5


class TestComputeIm:
    def test_binds_content_video_and_position(self):
        base = compute_im(b"data", "video-a", 3)
        assert compute_im(b"data2", "video-a", 3) != base  # content
        assert compute_im(b"data", "video-b", 3) != base  # video (cross-video replay)
        assert compute_im(b"data", "video-a", 4) != base  # position (reorder replay)

    def test_deterministic(self):
        assert compute_im(b"x", "v", 0) == compute_im(b"x", "v", 0)


def make_world(seed=121, quorum=2):
    env = Environment(seed=seed)
    bed = build_test_bed(env, PEER5, video_segments=6)
    coordinator = IntegrityCoordinator(
        env.loop, env.rand.fork("im"), bed.provider, env.urlspace, quorum=quorum
    ).install()
    return env, bed, coordinator


class TestCoordinator:
    def test_quorum_agreement_signs_sim(self):
        env, bed, coord = make_world(quorum=2)
        digest = compute_im(bed.video.segments[0].data, content_id(bed.video_url, ''), 0)
        coord.receive_report("peer-1", bed.video_url, 0, digest)
        assert coord.get_sim(bed.video_url, 0) is None  # below quorum
        coord.receive_report("peer-2", bed.video_url, 0, digest)
        sim = coord.get_sim(bed.video_url, 0)
        assert sim is not None and sim.digest == digest

    def test_conflict_resolved_from_cdn_and_faker_banned(self):
        env, bed, coord = make_world()
        authentic = compute_im(bed.video.segments[1].data, content_id(bed.video_url, ''), 1)
        coord.receive_report("honest-peer", bed.video_url, 1, authentic)
        coord.receive_report("evil-peer", bed.video_url, 1, "f" * 64)
        sim = coord.get_sim(bed.video_url, 1)
        assert sim is not None and sim.digest == authentic
        assert "evil-peer" in coord.peers_blacklisted
        assert "honest-peer" not in coord.peers_blacklisted
        assert coord.conflicts_resolved == 1
        assert coord.cdn_fetches == 1

    def test_single_benign_reporter_wins(self):
        """The paper's guarantee: one benign reporter identifies the truth."""
        env, bed, coord = make_world(quorum=3)
        authentic = compute_im(bed.video.segments[2].data, content_id(bed.video_url, ''), 2)
        coord.receive_report("evil-1", bed.video_url, 2, "a" * 64)
        coord.receive_report("evil-2", bed.video_url, 2, "a" * 64)
        coord.receive_report("honest", bed.video_url, 2, authentic)
        assert coord.get_sim(bed.video_url, 2).digest == authentic
        assert coord.peers_blacklisted == {"evil-1", "evil-2"}

    def test_late_fake_report_still_banned(self):
        env, bed, coord = make_world(quorum=1)
        authentic = compute_im(bed.video.segments[0].data, content_id(bed.video_url, ''), 0)
        coord.receive_report("honest", bed.video_url, 0, authentic)
        coord.receive_report("late-evil", bed.video_url, 0, "b" * 64)
        assert "late-evil" in coord.peers_blacklisted

    def test_signature_verifies(self):
        env, bed, coord = make_world(quorum=1)
        digest = compute_im(bed.video.segments[0].data, content_id(bed.video_url, ''), 0)
        coord.receive_report("p", bed.video_url, 0, digest)
        sim = coord.get_sim(bed.video_url, 0)
        verify = coord.verifier()
        cid = content_id(bed.video_url, "")
        assert verify(cid, 0, sim.digest, sim.signature)
        assert not verify(cid, 0, "0" * 64, sim.signature)
        assert not verify(cid, 1, sim.digest, sim.signature)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    def test_authentic_wins_whenever_a_benign_reporter_exists(self, evil, honest):
        env, bed, coord = make_world(seed=500 + evil * 10 + honest, quorum=evil + honest)
        authentic = compute_im(bed.video.segments[0].data, content_id(bed.video_url, ''), 0)
        for i in range(evil):
            coord.receive_report(f"evil-{i}", bed.video_url, 0, "c" * 64)
        for i in range(honest):
            coord.receive_report(f"honest-{i}", bed.video_url, 0, authentic)
        sim = coord.get_sim(bed.video_url, 0)
        assert sim is not None and sim.digest == authentic


class TestEndToEndDefense:
    def test_pollution_blocked_and_attacker_blacklisted(self):
        from repro.attacks.pollution import VideoSegmentPollutionTest

        env, bed, coord = make_world(seed=122)
        integrity = ClientIntegrity(env.loop, coord)
        analyzer = PdnAnalyzer(env)
        original_create = analyzer.create_peer

        def create_with_integrity(*args, **kwargs):
            kwargs.setdefault("integrity", integrity)
            return original_create(*args, **kwargs)

        analyzer.create_peer = create_with_integrity
        report = analyzer.run_test(VideoSegmentPollutionTest(bed))
        verdict = report.verdicts[0]
        assert not verdict.triggered
        assert verdict.details["authentic_played"] == len(bed.video.segments)
        assert coord.peers_blacklisted  # the polluter got banned
        analyzer.teardown()

    def test_benign_swarm_unaffected_by_defense(self):
        # quorum=1: a two-peer swarm can never satisfy a larger quorum
        # (see the quorum ablation bench for the trade-off).
        env, bed, coord = make_world(seed=123, quorum=1)
        integrity = ClientIntegrity(env.loop, coord)
        analyzer = PdnAnalyzer(env)
        peer_a = analyzer.create_peer(name="a", integrity=integrity)
        peer_a.watch_test_stream(bed)
        analyzer.run(8.0)
        peer_b = analyzer.create_peer(name="b", integrity=integrity)
        session_b = peer_b.watch_test_stream(bed)
        analyzer.run(60.0)
        assert session_b.player.finished
        assert session_b.player.stats.bytes_from_p2p > 0  # P2P still works
        assert session_b.player.stats.played_digests() == [
            s.digest for s in bed.video.segments
        ]
        assert not coord.peers_blacklisted
        analyzer.teardown()
