"""Tests for the §V-C privacy mitigations."""

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.defenses.privacy_mitigations import (
    apply_consent_policy,
    enable_geo_filter,
    enable_upload_cap,
)
from repro.environment import Environment
from repro.pdn.policy import ClientPolicy
from repro.pdn.provider import PEER5
from repro.pdn.scheduler import GeoFilterMode


class TestPolicyHelpers:
    def test_upload_cap(self):
        policy = enable_upload_cap(ClientPolicy(), 100_000)
        assert policy.max_upload_bytes_per_sec == 100_000

    def test_consent(self):
        policy = apply_consent_policy(ClientPolicy())
        assert policy.show_consent_dialog and policy.allow_user_disable


class TestGeoFilterDefense:
    def test_blocks_cross_country_disclosure(self):
        env = Environment(seed=131)
        bed = build_test_bed(env, PEER5, video_segments=6)
        enable_geo_filter(bed.provider, env.geo, GeoFilterMode.SAME_COUNTRY)
        analyzer = PdnAnalyzer(env)
        peer_us = analyzer.create_peer(name="us", country="US")
        peer_cn = analyzer.create_peer(name="cn", country="CN")
        peer_us.watch_test_stream(bed)
        peer_cn.watch_test_stream(bed)
        analyzer.run(40.0)
        assert peer_cn.browser.host.public_ip not in peer_us.harvested_ips()
        assert peer_us.browser.host.public_ip not in peer_cn.harvested_ips()
        analyzer.teardown()

    def test_same_country_peers_still_pair(self):
        env = Environment(seed=132)
        bed = build_test_bed(env, PEER5, video_segments=6)
        enable_geo_filter(bed.provider, env.geo, GeoFilterMode.SAME_COUNTRY)
        analyzer = PdnAnalyzer(env)
        peer_a = analyzer.create_peer(name="a", country="US")
        peer_a.watch_test_stream(bed)
        analyzer.run(6.0)
        peer_b = analyzer.create_peer(name="b", country="US")
        session_b = peer_b.watch_test_stream(bed)
        analyzer.run(60.0)
        assert session_b.player.stats.bytes_from_p2p > 0
        analyzer.teardown()


class TestTurnRelayDefense:
    def test_relay_hides_ips_end_to_end(self):
        env = Environment(seed=133)
        bed = build_test_bed(env, PEER5, video_segments=6)
        bed.site.landing.embed.relay_only = True
        analyzer = PdnAnalyzer(env)
        peer_a = analyzer.create_peer(name="a", country="US")
        peer_a.watch_test_stream(bed)
        analyzer.run(6.0)
        peer_b = analyzer.create_peer(name="b", country="CN")
        session_b = peer_b.watch_test_stream(bed)
        analyzer.run(80.0)
        # data still flows...
        assert session_b.player.stats.bytes_from_p2p > 0
        # ...but neither peer ever observes the other's address
        a_ip = peer_a.browser.host.public_ip
        b_ip = peer_b.browser.host.public_ip
        assert b_ip not in peer_a.harvested_ips()
        assert a_ip not in peer_b.harvested_ips()
        # the relay carried the traffic (the overhead the paper flags)
        assert env.turn.relayed_bytes > 0
        analyzer.teardown()
