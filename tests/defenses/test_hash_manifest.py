"""Tests for the CDN hash-manifest defense (prior work / vendor plugins)."""

import json

from repro.attacks.pollution import VideoSegmentPollutionTest
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.defenses.hash_manifest import (
    HASH_MANIFEST_FILENAME,
    ClientHashManifest,
    build_hash_manifest,
    install_hash_manifest,
)
from repro.environment import Environment
from repro.pdn.provider import PEER5
from repro.streaming.http import HttpClient
from repro.streaming.video import make_video


class TestManifestObject:
    def test_manifest_lists_every_segment(self):
        video = make_video("clip", 5, segment_size=100)
        payload = json.loads(build_hash_manifest(video, b"key").decode())
        assert payload["video"] == "clip"
        assert [e["index"] for e in payload["segments"]] == [0, 1, 2, 3, 4]
        assert payload["segments"][2]["sha256"] == video.segments[2].digest

    def test_served_through_the_cdn(self):
        env = Environment(seed=181)
        bed = build_test_bed(env, PEER5)
        install_hash_manifest(bed.origin, bed.video, b"key")
        url = bed.video_url.rsplit("/", 1)[0] + "/" + HASH_MANIFEST_FILENAME
        response = HttpClient(env.urlspace).get(url)
        assert response.ok
        assert json.loads(response.body.decode())["video"] == bed.video.video_id


class TestDefenseBlocksPollution:
    def test_segment_pollution_blocked(self):
        env = Environment(seed=182)
        bed = build_test_bed(env, PEER5)
        install_hash_manifest(bed.origin, bed.video, b"key")
        verifier = ClientHashManifest()
        analyzer = PdnAnalyzer(env)
        original = analyzer.create_peer
        analyzer.create_peer = lambda *a, **kw: original(*a, **{**kw, "integrity": verifier})
        report = analyzer.run_test(VideoSegmentPollutionTest(bed))
        assert not report.verdicts[0].triggered
        assert report.verdicts[0].details["authentic_played"] == len(bed.video.segments)
        assert verifier.rejections >= 0
        analyzer.teardown()

    def test_every_viewer_pays_the_manifest_fetch(self):
        """The §V-B objection: the integrity attributes ride the CDN, so
        each verifying viewer adds CDN bytes — unlike peer-assisted IM."""
        env = Environment(seed=183)
        bed = build_test_bed(env, PEER5, video_segments=6)
        install_hash_manifest(bed.origin, bed.video, b"key")
        verifier = ClientHashManifest()
        analyzer = PdnAnalyzer(env)
        peer_a = analyzer.create_peer(name="a", integrity=verifier)
        peer_a.watch_test_stream(bed)
        analyzer.run(6.0)
        peer_b = analyzer.create_peer(name="b", integrity=verifier)
        session_b = peer_b.watch_test_stream(bed)
        analyzer.run(50.0)
        assert session_b.player.finished
        assert session_b.player.stats.bytes_from_p2p > 0  # defense-compatible P2P
        assert verifier.manifests_fetched >= 2  # one per viewer
        analyzer.teardown()
