"""Tests for viewer-side PDN blocking (the douyu-p2p-block pattern)."""

from repro.core.testbed import build_test_bed
from repro.defenses.adblock import DEFAULT_FILTER_LIST, PdnBlocker
from repro.environment import Environment
from repro.pdn.provider import PEER5, STREAMROOT
from repro.web.browser import Browser


class TestFilterList:
    def test_default_list_covers_public_providers(self):
        blocker = PdnBlocker()
        for host in ("api.peer5.com", "backend.dna.streamroot.io", "pdn.viblast.com"):
            assert blocker.blocks(host)
        assert not blocker.blocks("cdn.test.com")

    def test_subdomains_blocked(self):
        blocker = PdnBlocker({"peer5.com"})
        assert blocker.blocks("api.peer5.com")
        assert blocker.blocks("PEER5.COM")
        assert not blocker.blocks("notpeer5.com")

    def test_from_providers(self):
        env = Environment(seed=151)
        bed = build_test_bed(env, STREAMROOT)
        blocker = PdnBlocker.from_providers([bed.provider])
        assert blocker.blocks(STREAMROOT.signaling_host)
        assert blocker.blocks(STREAMROOT.sdk_host)


class TestBlockedViewer:
    def test_pdn_fails_playback_continues(self):
        """A viewer running the filter list: no PDN join, clean CDN
        playback — exactly what douyu-p2p-block users get."""
        env = Environment(seed=152)
        bed = build_test_bed(env, PEER5, video_segments=6, segment_seconds=2.0)
        blocker = PdnBlocker.from_providers([bed.provider])
        viewer = Browser(env, "blocker-user", proxy=blocker)
        session = viewer.open(f"https://{bed.site.domain}/")
        assert not session.pdn_loaded
        assert blocker.blocked_requests > 0
        env.run(30.0)
        assert session.player.finished
        assert session.player.stats.bytes_from_p2p == 0
        assert session.player.stats.played_digests() == [
            s.digest for s in bed.video.segments
        ]

    def test_unblocked_viewer_unaffected(self):
        env = Environment(seed=153)
        bed = build_test_bed(env, PEER5, video_segments=6, segment_seconds=2.0)
        session = Browser(env, "normal").open(f"https://{bed.site.domain}/")
        assert session.pdn_loaded

    def test_blocked_viewer_invisible_to_swarm(self):
        """The blocked viewer never appears in candidate disclosures."""
        env = Environment(seed=154)
        bed = build_test_bed(env, PEER5, video_segments=6)
        blocker = PdnBlocker.from_providers([bed.provider])
        blocked = Browser(env, "blocked", proxy=blocker)
        blocked.open(f"https://{bed.site.domain}/")
        normal = Browser(env, "normal")
        normal_session = normal.open(f"https://{bed.site.domain}/")
        env.run(20.0)
        harvested = {ip for _, ip in normal_session.sdk.harvested_ips()}
        assert blocked.host.public_ip not in harvested
