"""Tests for the §V-A OAuth strawman and its MITM defeat."""

from repro.defenses.oauth import OAuthAuthorizationServer, OAuthMitmAttack
from repro.defenses.tokens import TokenIssuer, TokenValidator
from repro.util.rand import DeterministicRandom


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_server(ttl=300.0):
    clock = FakeClock()
    server = OAuthAuthorizationServer(clock, DeterministicRandom(7), ttl=ttl)
    server.register_customer("victim-corp", "victim.com")
    return clock, server


class TestOAuthBasics:
    def test_grant_for_registered_origin(self):
        _, server = make_server()
        token = server.grant("https://victim.com")
        assert token is not None
        assert server.validate(token.token) == (True, "victim-corp")

    def test_no_grant_for_stranger(self):
        _, server = make_server()
        assert server.grant("https://attacker.com") is None

    def test_token_expires(self):
        clock, server = make_server(ttl=60.0)
        token = server.grant("https://victim.com")
        clock.now = 61.0
        valid, _ = server.validate(token.token)
        assert not valid

    def test_unknown_token_invalid(self):
        _, server = make_server()
        assert server.validate("bogus") == (False, None)


class TestMitmDefeat:
    def test_mitm_harvests_valid_tokens(self):
        """The §V-A argument: OAuth tokens reduce exposure but a MITM
        gets fresh valid ones at will — free riding survives."""
        _, server = make_server()
        attack = OAuthMitmAttack(server, "victim.com")
        assert attack.attack_succeeds()
        assert len(attack.harvested) >= 1

    def test_tokens_not_video_bound(self):
        """Nothing in the bearer token restricts *what* it streams."""
        _, server = make_server()
        attack = OAuthMitmAttack(server, "victim.com")
        token = attack.harvest_token()
        # the validator has no video parameter at all — the design gap
        assert server.validate(token.token)[0]

    def test_video_binding_closes_the_gap(self):
        """The same MITM against the §V-A video-binding tokens: the
        harvested token cannot offload the attacker's own stream."""
        clock = FakeClock()
        secret = b"s3cret"
        issuer = TokenIssuer("victim-corp", secret, clock)
        validator = TokenValidator(clock)
        validator.register_customer("victim-corp", secret)
        # MITM harvests a real token minted for the victim's video...
        harvested = issuer.issue(["https://victim.com/live.m3u8"])
        # ...which is useless for the attacker's own stream:
        assert not validator.validate(harvested, "https://attacker.com/own.m3u8").accepted
        # and single-use on the victim's stream:
        assert validator.validate(harvested, "https://victim.com/live.m3u8").accepted
        assert not validator.validate(harvested, "https://victim.com/live.m3u8").accepted
