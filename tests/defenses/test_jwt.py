"""Tests for the minimal JWT implementation."""

import pytest
from hypothesis import given, strategies as st

from repro.defenses.jwtmin import jwt_decode, jwt_encode
from repro.util.errors import TokenError

SECRET = b"test-secret"


class TestRoundTrip:
    def test_basic(self):
        payload = {"sub": "peer-1", "n": 42}
        assert jwt_decode(jwt_encode(payload, SECRET), SECRET) == payload

    def test_compact_three_segments(self):
        token = jwt_encode({"a": 1}, SECRET)
        assert token.count(".") == 2
        assert "=" not in token  # unpadded base64url

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=10),
            st.one_of(st.integers(), st.text(max_size=20), st.booleans()),
            max_size=8,
        )
    )
    def test_round_trip_property(self, payload):
        assert jwt_decode(jwt_encode(payload, SECRET), SECRET) == payload


class TestVerification:
    def test_wrong_secret_rejected(self):
        token = jwt_encode({"a": 1}, SECRET)
        with pytest.raises(TokenError):
            jwt_decode(token, b"other-secret")

    def test_tampered_payload_rejected(self):
        token = jwt_encode({"role": "viewer"}, SECRET)
        header, payload, signature = token.split(".")
        from repro.util.encoding import b64url_decode, b64url_encode

        forged_payload = b64url_encode(
            b64url_decode(payload).replace(b"viewer", b"server")
        )
        with pytest.raises(TokenError):
            jwt_decode(f"{header}.{forged_payload}.{signature}", SECRET)

    def test_malformed_rejected(self):
        for bad in ["", "a.b", "a.b.c.d", "!!!.???.***"]:
            with pytest.raises(TokenError):
                jwt_decode(bad, SECRET)

    def test_wrong_alg_rejected(self):
        from repro.util.encoding import b64url_encode
        import json

        header = b64url_encode(json.dumps({"alg": "none", "typ": "JWT"}).encode())
        payload = b64url_encode(json.dumps({"a": 1}).encode())
        with pytest.raises(TokenError):
            jwt_decode(f"{header}.{payload}.", SECRET)


class TestPaperSize:
    def test_listing1_encodes_to_283_bytes(self):
        """§V-A: 'a encoded JWT of 283 bytes'."""
        from repro.experiments.token_defense import listing1_token_bytes

        assert listing1_token_bytes() == 283
