"""Tests for the disposable video-binding token defense (§V-A)."""

import pytest

from repro.defenses.tokens import TokenIssuer, TokenValidator, VideoToken
from repro.util.errors import TokenError

SECRET = b"customer-secret"
VIDEO = "https://cdn.test.com/vod/x/playlist.m3u8"


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


@pytest.fixture
def world():
    clock = FakeClock()
    issuer = TokenIssuer("site.com", SECRET, clock)
    validator = TokenValidator(clock)
    validator.register_customer("site.com", SECRET)
    return clock, issuer, validator


class TestHappyPath:
    def test_fresh_token_validates_once(self, world):
        clock, issuer, validator = world
        token = issuer.issue([VIDEO])
        outcome = validator.validate(token, VIDEO)
        assert outcome.accepted
        assert outcome.customer_id == "site.com"

    def test_multi_video_page(self, world):
        clock, issuer, validator = world
        token = issuer.issue([VIDEO, "https://cdn/other.m3u8"], usage_limit=2)
        assert validator.validate(token, VIDEO).accepted
        assert validator.validate(token, "https://cdn/other.m3u8").accepted


class TestBindings:
    def test_video_binding_rejects_other_stream(self, world):
        clock, issuer, validator = world
        token = issuer.issue([VIDEO])
        outcome = validator.validate(token, "https://attacker/own.m3u8")
        assert not outcome.accepted
        assert "not bound" in outcome.reason

    def test_usage_limit_blocks_replay(self, world):
        clock, issuer, validator = world
        token = issuer.issue([VIDEO], usage_limit=1)
        assert validator.validate(token, VIDEO).accepted
        outcome = validator.validate(token, VIDEO)
        assert not outcome.accepted
        assert "usage limit" in outcome.reason

    def test_ttl_expiry(self, world):
        clock, issuer, validator = world
        token = issuer.issue([VIDEO], ttl=60)
        clock.now += 61
        outcome = validator.validate(token, VIDEO)
        assert not outcome.accepted
        assert "expired" in outcome.reason

    def test_forged_signature_rejected(self, world):
        clock, issuer, validator = world
        forged_issuer = TokenIssuer("site.com", b"wrong-secret", clock)
        outcome = validator.validate(forged_issuer.issue([VIDEO]), VIDEO)
        assert not outcome.accepted

    def test_unknown_customer_rejected(self, world):
        clock, issuer, validator = world
        stranger = TokenIssuer("other.com", SECRET, clock)
        outcome = validator.validate(stranger.issue([VIDEO]), VIDEO)
        assert not outcome.accepted
        assert "unknown customer" in outcome.reason

    def test_garbage_token_rejected(self, world):
        clock, issuer, validator = world
        assert not validator.validate("garbage", VIDEO).accepted
        assert not validator.validate("", VIDEO).accepted


class TestVideoToken:
    def test_payload_round_trip(self):
        token = VideoToken("c", "1", ("u1", "u2"), 1000, 60, 1)
        assert VideoToken.from_payload(token.to_payload()) == token

    def test_missing_field_rejected(self):
        with pytest.raises(TokenError):
            VideoToken.from_payload({"customer_id": "c"})

    def test_counters(self, world):
        clock, issuer, validator = world
        token = issuer.issue([VIDEO])
        validator.validate(token, VIDEO)
        validator.validate(token, VIDEO)  # replay
        assert issuer.issued == 1
        assert validator.validations == 2
        assert validator.rejections == 1
