"""Tests for the website and APK scanners."""

from repro.detection.scanner import ApkScanner, WebsiteScanner
from repro.environment import Environment
from repro.pdn.provider import PEER5, PdnProvider
from repro.web.apk import AndroidApp, build_pdn_apk, build_plain_apk
from repro.web.page import PdnEmbed, WebPage, Website


def make_env():
    env = Environment(seed=51)
    provider = PdnProvider(env.loop, env.rand, PEER5)
    provider.install(env.urlspace)
    key = provider.signup_customer("target.com")
    return env, provider, key


class TestWebsiteScanner:
    def test_detects_embed_on_landing(self):
        env, provider, key = make_env()
        site = Website("target.com")
        site.add_page(WebPage("/", has_video=True, embed=PdnEmbed(provider, key.key, "u")))
        env.urlspace.register("target.com", site)
        result = WebsiteScanner(env.urlspace).scan("target.com")
        assert result.is_potential
        assert result.provider() == "peer5"
        assert key.key in result.extracted_keys

    def test_detects_embed_at_depth(self):
        env, provider, key = make_env()
        site = Website("target.com")
        site.add_page(WebPage("/", has_video=True, links=["/a"]))
        site.add_page(WebPage("/a", has_video=True, links=["/a/b"]))
        site.add_page(WebPage("/a/b", has_video=True, embed=PdnEmbed(provider, key.key, "u")))
        env.urlspace.register("target.com", site)
        result = WebsiteScanner(env.urlspace).scan("target.com")
        assert result.is_potential
        assert result.pages_scanned == 3

    def test_depth_limit_misses_deep_embeds(self):
        env, provider, key = make_env()
        site = Website("target.com")
        site.add_page(WebPage("/", has_video=True, links=["/1"]))
        site.add_page(WebPage("/1", has_video=True, links=["/2"]))
        site.add_page(WebPage("/2", has_video=True, links=["/3"]))
        site.add_page(WebPage("/3", has_video=True, links=["/4"]))
        site.add_page(WebPage("/4", has_video=True, embed=PdnEmbed(provider, key.key, "u")))
        env.urlspace.register("target.com", site)
        result = WebsiteScanner(env.urlspace, max_depth=3).scan("target.com")
        assert not result.is_potential  # the paper's acknowledged blind spot

    def test_requires_video_tag(self):
        env, provider, key = make_env()
        site = Website("target.com")
        site.add_page(WebPage("/", has_video=False, embed=PdnEmbed(provider, key.key, "u")))
        env.urlspace.register("target.com", site)
        result = WebsiteScanner(env.urlspace).scan("target.com")
        assert not result.is_potential
        assert result.pages_scanned == 0

    def test_unreachable_site(self):
        env, _, _ = make_env()
        result = WebsiteScanner(env.urlspace).scan("ghost.com")
        assert not result.is_potential

    def test_obfuscated_site_detected_without_key(self):
        env, provider, key = make_env()
        site = Website("target.com")
        site.add_page(
            WebPage("/", has_video=True,
                    embed=PdnEmbed(provider, key.key, "u", obfuscated=True))
        )
        env.urlspace.register("target.com", site)
        result = WebsiteScanner(env.urlspace).scan("target.com")
        assert result.is_potential
        assert result.extracted_keys == set()

    def test_generic_webrtc_attribution(self):
        env, _, _ = make_env()
        site = Website("webrtc-site.com")
        site.add_page(
            WebPage("/", has_video=True, extra_html="<script>new RTCPeerConnection()</script>")
        )
        env.urlspace.register("webrtc-site.com", site)
        result = WebsiteScanner(env.urlspace).scan("webrtc-site.com")
        assert result.provider() == "webrtc-generic"


class TestApkScanner:
    def _embed(self, env, provider, obfuscated=True):
        key = provider.signup_customer(f"com.app{obfuscated}")
        return PdnEmbed(provider, key.key, "u"), key

    def test_detects_namespace(self):
        env, provider, _ = make_env()
        embed, key = self._embed(env, provider)
        app = AndroidApp("com.app")
        app.add_version(build_pdn_apk(1, embed))
        result = ApkScanner().scan(app)
        assert result.is_potential
        assert result.provider() == "peer5"
        assert result.pdn_apk_versions == 1

    def test_counts_versions(self):
        env, provider, _ = make_env()
        embed, _ = self._embed(env, provider)
        app = AndroidApp("com.app")
        for v in range(3):
            app.add_version(build_pdn_apk(v, embed))
        app.add_version(build_plain_apk(99))
        result = ApkScanner().scan(app)
        assert result.pdn_apk_versions == 3
        assert result.total_apk_versions == 4

    def test_clear_key_extracted_from_manifest(self):
        env, provider, _ = make_env()
        embed, key = self._embed(env, provider)
        app = AndroidApp("com.app")
        app.add_version(build_pdn_apk(1, embed, obfuscated=False))
        result = ApkScanner().scan(app)
        assert key.key in result.extracted_keys

    def test_plain_app_not_potential(self):
        app = AndroidApp("com.plain")
        app.add_version(build_plain_apk(1))
        assert not ApkScanner().scan(app).is_potential
