"""Streaming detection pipeline: shard invariance, resume, and parity.

The contract under test: the streamed, sharded, parallel, resumable
pipeline produces a ``PipelineReport`` bit-identical to the monolithic
walk — pinned below by seed-2024 content digests so any divergence
(shard layout leaking into content, merge order, serialization drift)
fails loudly.
"""

import json

import pytest

from repro.detection.pipeline import DetectionPipeline
from repro.detection.stages import ShardScanState
from repro.detection.streaming import (
    ScanIncomplete,
    StreamingDetectionPipeline,
    merge_shard_states,
    scan_shard,
)
from repro.environment import Environment
from repro.experiments.detection_tables import DetectionTablesResult
from repro.util.errors import ConfigurationError
from repro.web.corpus import CorpusConfig, build_corpus

SMALL = CorpusConfig(noise_video_sites=10, noise_nonvideo_sites=5, noise_apps=5)
SEED = 2024
WATCH = 30.0

# Seed-2024 pins over the SMALL corpus. These change only when the
# detection methodology (or its canonical serialization) changes — never
# with --shards / --scan-jobs / --resume.
PIN_SCAN_DIGEST = "d58e9fd8b418992e817872213ba6b3b47d09d521f78da35fe6350a5c1b530997"
PIN_REPORT_DIGEST = "cbc70c584c51235fd6c6b4b806a85c65b777efb3c54a6661f47c792c19811126"


def stream(shards=1, jobs=1, **kwargs):
    return StreamingDetectionPipeline(
        seed=SEED, config=SMALL, shards=shards, scan_jobs=jobs, watch_seconds=WATCH, **kwargs
    )


@pytest.fixture(scope="module")
def monolithic_report():
    env = Environment(seed=SEED)
    corpus = build_corpus(env, SMALL)
    return DetectionPipeline(env, corpus, watch_seconds=WATCH).run()


@pytest.fixture(scope="module")
def streamed_outcome():
    return stream(shards=4).run()


class TestMonolithicParity:
    def test_report_bit_identical(self, monolithic_report, streamed_outcome):
        assert streamed_outcome.report.to_dict() == monolithic_report.to_dict()
        assert streamed_outcome.report.content_digest() == monolithic_report.content_digest()

    def test_tables_bit_identical(self, monolithic_report, streamed_outcome):
        mono = DetectionTablesResult(report=monolithic_report, corpus=None)
        streamed = DetectionTablesResult(
            report=streamed_outcome.report, corpus=streamed_outcome.corpus
        )
        assert streamed.to_dict() == mono.to_dict()  # Tables I-IV, bit for bit

    def test_provider_counts_match_derived_views(self, streamed_outcome):
        # Regression for the single-walk provider_counts rewrite: it must
        # agree with the (slow) derived-view definition it replaced.
        report = streamed_outcome.report
        for provider in ("peer5", "streamroot", "viblast"):
            counts = report.provider_counts(provider)
            potential_apps = report.potential_apps(provider)
            confirmed_apps = set(report.confirmed_apps(provider))
            assert counts.potential_sites == len(report.potential_sites(provider))
            assert counts.confirmed_sites == len(report.confirmed_sites(provider))
            assert counts.potential_apps == len(potential_apps)
            assert counts.confirmed_apps == len(confirmed_apps)
            assert counts.potential_apks == sum(
                report.app_scans[p].pdn_apk_versions for p in potential_apps
            )
            assert counts.confirmed_apks == sum(
                report.app_scans[p].pdn_apk_versions for p in confirmed_apps
            )


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [1, 4, 7])
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_report_digest_pinned(self, shards, jobs):
        outcome = stream(shards=shards, jobs=jobs).run()
        assert outcome.report.content_digest() == PIN_REPORT_DIGEST

    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_scan_state_digest_pinned(self, shards):
        states = [scan_shard((SEED, SMALL, i, shards)) for i in range(shards)]
        merged = merge_shard_states(states)
        assert merged.content_digest() == PIN_SCAN_DIGEST

    def test_merge_is_order_independent(self):
        states = [scan_shard((SEED, SMALL, i, 3)) for i in range(3)]
        forward = merge_shard_states(states)
        backward = merge_shard_states(list(reversed(states)))
        assert forward.content_digest() == backward.content_digest()

    def test_merge_rejects_overlapping_shards(self):
        state = scan_shard((SEED, SMALL, 0, 2))
        with pytest.raises(ConfigurationError, match="overlapping"):
            merge_shard_states([state, state])

    def test_shard_state_roundtrips_through_json(self):
        state = scan_shard((SEED, SMALL, 0, 2))
        clone = ShardScanState.from_dict(json.loads(json.dumps(state.to_dict())))
        assert clone.to_dict() == state.to_dict()
        assert clone.content_digest() == state.content_digest()


class TestResume:
    def test_interrupt_then_resume(self, tmp_path):
        run_dir = tmp_path / "run"
        # First invocation is bounded to 2 of 4 shards: an interrupt.
        with pytest.raises(ScanIncomplete):
            stream(shards=4, resume_dir=run_dir, max_shards=2).run()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert sorted(manifest["completed"]) == ["0", "1"]
        # Second invocation finishes: completed shards load, only the
        # remaining two execute, and the digest matches an uninterrupted run.
        outcome = stream(shards=4, resume_dir=run_dir).run()
        assert outcome.shards_loaded == [0, 1]
        assert outcome.shards_executed == [2, 3]
        assert outcome.report.content_digest() == PIN_REPORT_DIGEST
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["result_digest"] == PIN_REPORT_DIGEST
        # Third invocation re-executes nothing at all.
        outcome = stream(shards=4, resume_dir=run_dir).run()
        assert outcome.shards_executed == []
        assert outcome.shards_loaded == [0, 1, 2, 3]
        assert outcome.report.content_digest() == PIN_REPORT_DIGEST

    def test_corrupted_shard_is_rescanned(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(ScanIncomplete):
            stream(shards=4, resume_dir=run_dir, max_shards=2).run()
        shard_file = run_dir / "shard-0001.json"
        data = json.loads(shard_file.read_text())
        data["video_related_scanned"] += 1  # fails the manifest's digest pin
        shard_file.write_text(json.dumps(data))
        outcome = stream(shards=4, resume_dir=run_dir).run()
        assert outcome.shards_loaded == [0]
        assert outcome.shards_executed == [1, 2, 3]
        assert outcome.report.content_digest() == PIN_REPORT_DIGEST

    def test_resume_refuses_mismatched_run(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(ScanIncomplete):
            stream(shards=4, resume_dir=run_dir, max_shards=1).run()
        # A shard count that does not evenly subdivide the completed
        # granularity is still an identity mismatch, naming the field.
        with pytest.raises(ConfigurationError, match="resume mismatch.*shards"):
            stream(shards=6, resume_dir=run_dir).run()
        # So is a *downgrade*, even to a divisor of the completed count.
        with pytest.raises(ConfigurationError, match="resume mismatch.*shards"):
            stream(shards=2, resume_dir=run_dir).run()
        with pytest.raises(ConfigurationError, match="resume mismatch.*seed"):
            StreamingDetectionPipeline(
                seed=1, config=SMALL, shards=4, resume_dir=run_dir, watch_seconds=WATCH
            ).run()
        with pytest.raises(ConfigurationError, match="resume mismatch.*config_digest"):
            StreamingDetectionPipeline(
                seed=SEED,
                config=CorpusConfig(noise_video_sites=11, noise_nonvideo_sites=5, noise_apps=5),
                shards=4, resume_dir=run_dir, watch_seconds=WATCH,
            ).run()

    def test_resume_upgrade_subdivides_completed_shards(self, tmp_path):
        run_dir = tmp_path / "run"
        # Interrupt a 2-shard run after one shard, then resume at 4
        # shards: shard 0-of-2 covers new shards {0, 2}, so only {1, 3}
        # execute, and the report digest is the decomposition-invariant
        # pin.
        with pytest.raises(ScanIncomplete):
            stream(shards=2, resume_dir=run_dir, max_shards=1).run()
        outcome = stream(shards=4, resume_dir=run_dir).run()
        assert outcome.shards_loaded == [0, 2]
        assert outcome.shards_executed == [1, 3]
        assert outcome.report.content_digest() == PIN_REPORT_DIGEST
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["shards"] == 4
        assert sorted(manifest["completed"]) == ["1", "3"]
        assert manifest["coarse"] == [{"shards": 2, "completed": {
            "0": manifest["coarse"][0]["completed"]["0"]}}]
        assert (run_dir / "shard-0000-of-2.json").exists()
        # The renamed coarse file cannot collide with the new shard 0…
        assert not (run_dir / "shard-0000.json").exists()
        # …and a further resume at the upgraded count loads everything.
        outcome = stream(shards=4, resume_dir=run_dir).run()
        assert outcome.shards_executed == []
        assert outcome.shards_loaded == [0, 1, 2, 3]
        assert outcome.report.content_digest() == PIN_REPORT_DIGEST

    def test_resume_upgrade_of_finished_run_rescans_nothing(self, tmp_path):
        run_dir = tmp_path / "run"
        first = stream(shards=2, resume_dir=run_dir).run()
        outcome = stream(shards=8, resume_dir=run_dir).run()
        assert outcome.shards_executed == []
        assert outcome.shards_loaded == list(range(8))
        assert outcome.report.content_digest() == first.report.content_digest()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["result_digest"] == PIN_REPORT_DIGEST

    def test_resume_upgrade_twice_stacks_granularities(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(ScanIncomplete):
            stream(shards=2, resume_dir=run_dir, max_shards=1).run()
        with pytest.raises(ScanIncomplete):
            # 2 → 4: coarse shard 0-of-2 covers {0, 2}; scan only shard 1.
            stream(shards=4, resume_dir=run_dir, max_shards=1).run()
        # 4 → 8 must subdivide *both* completed granularities (2 and 4).
        outcome = stream(shards=8, resume_dir=run_dir).run()
        assert outcome.shards_loaded == [0, 1, 2, 4, 5, 6]  # 0-of-2 → {0,2,4,6}; 1-of-4 → {1,5}
        assert outcome.shards_executed == [3, 7]
        assert outcome.report.content_digest() == PIN_REPORT_DIGEST
        # A count that divides by 4 and 8 but not… there is none ≤ the
        # stack; instead check a non-multiple of the finest block fails.
        with pytest.raises(ConfigurationError, match="resume mismatch.*shards"):
            stream(shards=12, resume_dir=run_dir).run()

    def test_resume_upgrade_corrupted_coarse_shard_rescans_fine(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(ScanIncomplete):
            stream(shards=2, resume_dir=run_dir, max_shards=1).run()
        # Trigger the upgrade (renames shard-0000.json → -of-2), then
        # corrupt the coarse file: its whole coverage {0, 2} re-scans at
        # the new granularity and the digest still pins.
        with pytest.raises(ScanIncomplete):
            stream(shards=4, resume_dir=run_dir, max_shards=0).run()
        coarse_file = run_dir / "shard-0000-of-2.json"
        data = json.loads(coarse_file.read_text())
        data["video_related_scanned"] += 1
        coarse_file.write_text(json.dumps(data))
        outcome = stream(shards=4, resume_dir=run_dir).run()
        assert outcome.shards_loaded == []
        assert outcome.shards_executed == [0, 1, 2, 3]
        assert outcome.report.content_digest() == PIN_REPORT_DIGEST
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert "coarse" not in manifest  # the emptied block is pruned
