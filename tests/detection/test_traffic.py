"""Tests for the STUN/DTLS traffic classifier."""

from repro.detection.traffic import classify_capture
from repro.environment import Environment
from repro.net.capture import CapturedPacket, TrafficCapture
from repro.net.addresses import Endpoint
from repro.webrtc.stun import (
    AttributeType,
    StunClass,
    StunMessage,
    StunMethod,
    encode_stun,
)

A = Endpoint("1.1.1.1", 100)
B = Endpoint("2.2.2.2", 200)
STUN_SERVER = Endpoint("9.9.9.9", 3478)


def binding_request(with_username=True):
    msg = StunMessage(StunMethod.BINDING, StunClass.REQUEST, b"\x01" * 12)
    if with_username:
        msg.add(AttributeType.USERNAME, b"remote:local")
    return encode_stun(msg)


def dtls_record():
    import struct
    return struct.pack("!BHHQH", 22, 0xFEFD, 0, 0, 4) + b"test"


def capture_of(*packets):
    cap = TrafficCapture("t")
    for i, (src, dst, payload) in enumerate(packets):
        cap.record(CapturedPacket(float(i), src, dst, payload))
    return cap


class TestClassifier:
    def test_stun_then_dtls_confirms(self):
        cap = capture_of((A, B, binding_request()), (A, B, dtls_record()))
        report = classify_capture(cap)
        assert report.pdn_confirmed
        assert report.confirmed_pairs == {frozenset({"1.1.1.1", "2.2.2.2"})}
        assert report.observed_peer_ips == {"1.1.1.1", "2.2.2.2"}

    def test_stun_alone_not_confirmed(self):
        report = classify_capture(capture_of((A, B, binding_request())))
        assert not report.pdn_confirmed
        assert report.candidate_pairs

    def test_dtls_alone_not_confirmed(self):
        report = classify_capture(capture_of((A, B, dtls_record())))
        assert not report.pdn_confirmed

    def test_server_binding_requests_ignored(self):
        """Plain bindings to a STUN server carry no ICE username."""
        cap = capture_of(
            (A, STUN_SERVER, binding_request(with_username=False)),
            (A, STUN_SERVER, dtls_record()),
        )
        report = classify_capture(cap)
        assert not report.pdn_confirmed

    def test_infrastructure_filter(self):
        cap = capture_of((A, STUN_SERVER, binding_request()), (A, STUN_SERVER, dtls_record()))
        report = classify_capture(cap, infrastructure_ips={"9.9.9.9"})
        assert not report.pdn_confirmed

    def test_dropped_packets_ignored(self):
        cap = TrafficCapture("t")
        cap.record(CapturedPacket(0.0, A, B, binding_request(), dropped=True))
        cap.record(CapturedPacket(1.0, A, B, dtls_record(), dropped=True))
        assert not classify_capture(cap).pdn_confirmed

    def test_garbage_tolerated(self):
        cap = capture_of((A, B, b"\x00\x01 garbage not stun"), (A, B, b"random"))
        report = classify_capture(cap)
        assert not report.pdn_confirmed

    def test_turn_activity_detected(self):
        allocate = encode_stun(StunMessage(StunMethod.ALLOCATE, StunClass.REQUEST, b"\x02" * 12))
        send_ind = encode_stun(StunMessage(StunMethod.SEND, StunClass.INDICATION, b"\x03" * 12))
        report = classify_capture(capture_of((A, STUN_SERVER, allocate), (A, STUN_SERVER, send_ind)))
        assert report.turn_activity
        assert not report.pdn_confirmed


class TestEndToEndCapture:
    def test_real_webrtc_connection_classified(self):
        """Full pipeline: a real PeerConnection handshake gets classified."""
        from repro.net.capture import TrafficCapture as TC
        from repro.webrtc import PeerConnection, RtcConfig, StunServer

        env = Environment(seed=61)
        cap = env.network.add_capture(TC("all"))
        host_a = env.add_viewer_host("a", "US")
        host_b = env.add_viewer_host("b", "US")
        config = env.rtc_config()
        pa = PeerConnection(host_a, env.loop, env.rand, config, "a")
        pb = PeerConnection(host_b, env.loop, env.rand, config, "b")
        pa.create_offer(lambda o: pb.accept_offer(o, lambda ans: pa.set_answer(ans)))
        env.run(10.0)
        assert pa.connected
        report = classify_capture(cap, infrastructure_ips={env.stun.host.public_ip})
        assert report.pdn_confirmed
        assert frozenset({host_a.public_ip, host_b.public_ip}) in report.confirmed_pairs
