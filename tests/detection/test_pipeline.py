"""End-to-end detection pipeline tests against the seeded corpus.

These assert the Table I–IV counts the paper reports — the pipeline must
*discover* them from the corpus, not read the ground truth.
"""

import pytest

from repro.detection.pipeline import DetectionPipeline
from repro.environment import Environment
from repro.web.corpus import CorpusConfig, build_corpus

SMALL = CorpusConfig(noise_video_sites=10, noise_nonvideo_sites=5, noise_apps=5)


@pytest.fixture(scope="module")
def report_and_corpus():
    env = Environment(seed=2024)
    corpus = build_corpus(env, SMALL)
    pipeline = DetectionPipeline(env, corpus, watch_seconds=30.0)
    return pipeline.run(), corpus


class TestTable1Counts:
    @pytest.mark.parametrize(
        "provider,sites,apps,apks",
        [
            ("peer5", (16, 60), (15, 31), (199, 548)),
            ("streamroot", (1, 53), (3, 6), (53, 68)),
            ("viblast", (0, 21), (0, 1), (0, 11)),
        ],
    )
    def test_counts_match_paper(self, report_and_corpus, provider, sites, apps, apks):
        report, _ = report_and_corpus
        counts = report.provider_counts(provider)
        assert (counts.confirmed_sites, counts.potential_sites) == sites
        assert (counts.confirmed_apps, counts.potential_apps) == apps
        assert (counts.confirmed_apks, counts.potential_apks) == apks


class TestConfirmations:
    def test_confirmed_sites_match_ground_truth(self, report_and_corpus):
        report, corpus = report_and_corpus
        assert set(report.confirmed_sites()) == corpus.expected_confirmed("website")

    def test_confirmed_apps_match_ground_truth(self, report_and_corpus):
        report, corpus = report_and_corpus
        assert set(report.confirmed_apps()) == corpus.expected_confirmed("app")

    def test_private_services_confirmed(self, report_and_corpus):
        report, corpus = report_and_corpus
        assert set(report.confirmed_private()) == corpus.expected_confirmed("private")

    def test_adult_relay_sites_flagged(self, report_and_corpus):
        report, _ = report_and_corpus
        assert set(report.relay_sites) == {"xhamsterlive.com", "stripchat.com"}

    def test_tracking_sites_not_confirmed(self, report_and_corpus):
        report, _ = report_and_corpus
        for domain in ("tracker-cdn.example-ads.com", "fingerprintjs.example.net"):
            result = report.private_confirmations.get(domain)
            assert result is not None and not result.confirmed

    def test_no_noise_false_positives(self, report_and_corpus):
        report, _ = report_and_corpus
        for domain in report.confirmed_sites():
            assert "noise" not in domain

    def test_failure_hints_explain_unconfirmed(self, report_and_corpus):
        report, corpus = report_and_corpus
        unconfirmed = set(report.potential_sites()) - set(report.confirmed_sites())
        with_hints = [
            d for d in unconfirmed if report.site_confirmations[d].failure_hints
        ]
        assert len(with_hints) > len(unconfirmed) * 0.8


class TestKeyExtraction:
    def test_exactly_44_keys(self, report_and_corpus):
        report, _ = report_and_corpus
        assert len(report.extracted_keys) == 44
