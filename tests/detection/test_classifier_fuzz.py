"""Fuzzing the traffic classifier: arbitrary captures must never crash.

The dynamic detector parses whatever bytes the wire carried; hostile or
garbage datagrams (including truncated STUN and DTLS-looking frames)
must be skipped, not raised on.
"""

from hypothesis import given, settings, strategies as st

from repro.detection.traffic import classify_capture
from repro.net.addresses import Endpoint
from repro.net.capture import CapturedPacket, TrafficCapture

endpoints = st.builds(
    Endpoint,
    st.sampled_from(["1.1.1.1", "2.2.2.2", "9.9.9.9"]),
    st.integers(min_value=1, max_value=65535),
)

# Mix of pure noise and STUN/DTLS-prefixed noise to reach the parsers.
payloads = st.one_of(
    st.binary(max_size=64),
    st.binary(max_size=40).map(lambda b: b"\x00\x01" + b),
    st.binary(max_size=40).map(lambda b: b"\x00\x01\x00\x00\x21\x12\xa4\x42" + b),
    st.binary(max_size=40).map(lambda b: b"\x16\xfe\xfd" + b),
    st.binary(max_size=40).map(lambda b: b"\x17\xfe\xfd" + b),
)

packets = st.builds(
    CapturedPacket,
    st.floats(min_value=0, max_value=1000),
    endpoints,
    endpoints,
    payloads,
    st.booleans(),
)


class TestClassifierFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(packets, max_size=30))
    def test_never_crashes(self, packet_list):
        capture = TrafficCapture("fuzz")
        for packet in packet_list:
            capture.record(packet)
        report = classify_capture(capture, infrastructure_ips={"9.9.9.9"})
        # structural sanity regardless of input
        assert report.confirmed_pairs <= report.candidate_pairs
        for pair in report.candidate_pairs:
            assert len(pair) == 2
        assert "9.9.9.9" not in report.observed_peer_ips
