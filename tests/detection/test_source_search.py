"""Tests for the source-code search engine."""

from repro.detection.signatures import GENERIC_WEBRTC_SIGNATURES, provider_signatures
from repro.detection.source_search import SourceSearchEngine
from repro.environment import Environment
from repro.pdn.provider import PEER5, PdnProvider
from repro.web.page import PdnEmbed, WebPage, Website


def make_world():
    env = Environment(seed=71)
    provider = PdnProvider(env.loop, env.rand, PEER5)
    provider.install(env.urlspace)
    key = provider.signup_customer("pdn-site.com")
    pdn_site = Website("pdn-site.com", category="general")  # mis-categorised!
    pdn_site.add_page(
        WebPage("/", has_video=True, embed=PdnEmbed(provider, key.key, "u"))
    )
    env.urlspace.register("pdn-site.com", pdn_site)
    plain = Website("plain.com")
    plain.add_page(WebPage("/", title="nothing here"))
    env.urlspace.register("plain.com", plain)
    return env, pdn_site, plain


class TestIndexAndSearch:
    def test_signature_search_finds_pdn_site(self):
        env, pdn_site, plain = make_world()
        engine = SourceSearchEngine()
        engine.index_site(env.urlspace, pdn_site)
        engine.index_site(env.urlspace, plain)
        hits = engine.search_all(provider_signatures())
        assert hits == {"pdn-site.com"}

    def test_string_query(self):
        env, pdn_site, plain = make_world()
        engine = SourceSearchEngine()
        engine.index_site(env.urlspace, pdn_site)
        assert engine.search("api.peer5.com") == ["pdn-site.com"]
        assert engine.search("no-such-string") == []

    def test_subpages_indexed(self):
        env, pdn_site, plain = make_world()
        pdn_site.add_page(WebPage("/deep", extra_html="<script>new RTCPeerConnection()</script>"))
        pdn_site.pages["/"].links.append("/deep")
        engine = SourceSearchEngine()
        engine.index_site(env.urlspace, pdn_site)
        assert engine.search_all(GENERIC_WEBRTC_SIGNATURES) == {"pdn-site.com"}

    def test_unreachable_site_skipped(self):
        env, pdn_site, plain = make_world()
        ghost = Website("ghost.com")  # never registered in the urlspace
        engine = SourceSearchEngine()
        engine.index_site(env.urlspace, ghost)
        assert engine.search("anything") == []


class TestPipelineIntegration:
    def test_miscategorised_customer_rescued(self):
        """A PDN customer whose category filter fails must still reach
        the scanner via source search (the paper's 44 rescued sites)."""
        from repro.detection.pipeline import DetectionPipeline
        from repro.web.corpus import CorpusConfig, build_corpus

        env = Environment(seed=72)
        corpus = build_corpus(env, CorpusConfig(noise_video_sites=5, noise_nonvideo_sites=2, noise_apps=2))
        # Sabotage categories for one confirmed customer: general sites
        # never pass the video filter.
        site = corpus.website("clarin.com")
        site.category = "general"
        report = DetectionPipeline(env, corpus, confirm=False).run()
        assert "clarin.com" in report.source_search_hits
        assert "clarin.com" in report.potential_sites("peer5")
