"""Tests for PDN signatures and key extraction."""

from repro.detection.signatures import (
    GENERIC_WEBRTC_SIGNATURES,
    SignatureKind,
    extract_api_keys,
    provider_signatures,
)


class TestProviderSignatures:
    def test_all_providers_have_url_patterns(self):
        signatures = provider_signatures()
        providers = {s.provider for s in signatures if s.kind is SignatureKind.URL_PATTERN}
        assert providers == {"peer5", "streamroot", "viblast"}

    def test_url_pattern_wildcard_matches(self):
        signatures = provider_signatures()
        peer5 = next(
            s for s in signatures
            if s.provider == "peer5" and s.kind is SignatureKind.URL_PATTERN
        )
        assert peer5.matches('<script src="https://api.peer5.com/peer5.js?id=abc123"></script>')
        assert not peer5.matches('<script src="https://api.other.com/x.js"></script>')

    def test_namespace_signatures(self):
        signatures = provider_signatures()
        viblast = next(
            s for s in signatures
            if s.provider == "viblast" and s.kind is SignatureKind.NAMESPACE
        )
        assert viblast.pattern == "com.viblast.android"

    def test_generic_webrtc_signatures_match_rtc_code(self):
        html = "<script>var pc = new RTCPeerConnection();</script>"
        assert any(s.matches(html) for s in GENERIC_WEBRTC_SIGNATURES)


class TestKeyExtraction:
    def test_extracts_clear_key_from_script_url(self):
        html = '<script src="https://api.peer5.com/peer5.js?id=0123456789abcdef"></script>'
        assert extract_api_keys(html) == {"0123456789abcdef"}

    def test_extracts_inline_variable(self):
        html = "var pdnApiKey = 'deadbeefdeadbeef';"
        assert extract_api_keys(html) == {"deadbeefdeadbeef"}

    def test_extracts_streamroot_and_viblast_paths(self):
        html = (
            '<script src="https://cdn.streamroot.io/dna/aabbccddeeff0011/dna.js"></script>'
            '<script src="https://cdn.viblast.com/vb/1122334455667788/viblast.js"></script>'
        )
        assert extract_api_keys(html) == {"aabbccddeeff0011", "1122334455667788"}

    def test_obfuscated_key_not_extracted(self):
        html = "var _0x101f38=['beef','dead'];_s.src='https://api.peer5.com/peer5.js?id='+k;"
        assert extract_api_keys(html) == set()

    def test_non_hex_not_extracted(self):
        html = '<script src="https://api.peer5.com/peer5.js?id=RUNTIME_KEY"></script>'
        assert extract_api_keys(html) == set()
