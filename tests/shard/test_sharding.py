"""Sharded-simulation correctness: the worker-count-invariance oracle.

The whole design of :mod:`repro.net.shard` reduces to one testable
claim: the digest of a :class:`SwarmWorkload` run is a function of the
workload alone, never of how many shards computed it or whether they
shared an address space. These tests pin that claim at seed 2024 across
calm and chaos-mix plans, across the inline and multi-process
coordinators, and at the protocol's edges — arrivals landing exactly on
a window barrier, hosts crashing with cross-shard traffic in flight,
and ``max_events`` budgets that must stay exact under sharding.
"""

from array import array

import pytest

from repro.harness.profile import WheelStats
from repro.net.clock import EventLoop
from repro.net.faults import FaultPlan, HostCrash
from repro.net.network import ShardNetwork
from repro.net.shard import (
    DEFAULT_REGIONS,
    SwarmWorkload,
    build_fault_plan,
    run_workload,
    shard_of,
)
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRandom

#: Small enough to keep the whole module fast, big enough that every
#: region sends, receives, and exchanges cross-shard traffic.
SMALL = dict(viewers=400, datagrams=2_000, seed=2024)


def run_at(workers: int, **overrides):
    params = dict(SMALL)
    params.update(overrides)
    return run_workload(SwarmWorkload(**params), workers)


class TestDigestInvariance:
    """Shards 1 vs 2 vs 4 must agree bit-for-bit at seed 2024."""

    @pytest.mark.parametrize("faults", ["calm", "chaos-mix"])
    def test_worker_ladder_same_digest(self, faults):
        reports = [run_at(workers, faults=faults) for workers in (1, 2, 4)]
        digests = {report.digest for report in reports}
        assert len(digests) == 1
        for report in reports:
            assert report.conservation_ok
            assert report.totals["sent"] == SMALL["datagrams"]

    def test_chaos_actually_dropped_something(self):
        report = run_at(2, faults="chaos-mix")
        assert report.totals["dropped"] > 0
        assert set(report.drops_by_reason) & {"host_down", "link_down", "fault_loss"}

    def test_flash_crowd_invariant_and_distinct(self):
        flash = [run_at(workers, arrivals="flash-crowd") for workers in (1, 2)]
        assert flash[0].digest == flash[1].digest
        assert flash[0].digest != run_at(1).digest

    def test_seed_changes_digest(self):
        assert run_at(2).digest != run_at(2, seed=2025).digest

    def test_process_mode_matches_inline(self):
        inline = run_workload(SwarmWorkload(**SMALL), 2, inline=True)
        forked = run_workload(SwarmWorkload(**SMALL), 2, inline=False)
        assert inline.mode == "inline" and forked.mode == "process"
        assert forked.digest == inline.digest
        assert forked.totals == inline.totals

    def test_single_worker_auto_inline(self):
        report = run_at(1)
        assert report.mode == "inline"
        assert report.workers == 1

    def test_workers_clamp_to_region_count(self):
        report = run_at(16)
        assert report.workers == len(DEFAULT_REGIONS)


class TestWindowEdges:
    """The lookahead barrier is exact: arrivals may land *on* it."""

    def test_injection_on_the_barrier_is_legal(self):
        loop = EventLoop()
        loop.run_until_window(0.116)
        assert loop.now == 0.116
        fired = []
        loop.inject(0.116, fired.append, (1,))  # exactly at the barrier
        loop.run_until_window(0.232)
        assert fired == [1]
        assert loop.now == 0.232

    def test_injection_into_the_past_is_a_protocol_violation(self):
        loop = EventLoop()
        loop.run_until_window(0.116)
        with pytest.raises(ConfigurationError, match="window protocol"):
            loop.inject(0.1, lambda: None, ())

    def test_run_until_window_budget_is_exact(self):
        loop = EventLoop()
        fired = []
        for when in (0.01, 0.02, 0.03):
            loop.schedule(when, fired.append, when)
        assert loop.run_until_window(0.1, max_events=2) == 2
        # Interrupted by the budget: the clock must not jump to the
        # deadline past the still-pending third event.
        assert loop.now < 0.1
        assert loop.run_until_window(0.1) == 1
        assert fired == [0.01, 0.02, 0.03]
        assert loop.now == 0.1

    def test_stale_batch_rejected_by_inject_batches(self):
        net = ShardNetwork(0, 2, DEFAULT_REGIONS, rand=DeterministicRandom(7))
        net.add_indexed_host(0).bind_udp(4000)
        net.loop.run_until_window(1.0)
        cols = (array("d", [0.5]), array("q", [0]), array("q", [1]))
        with pytest.raises(ConfigurationError, match="window protocol"):
            net.inject_batches([cols])

    def test_cross_shard_send_lands_in_egress_not_wheel(self):
        net = ShardNetwork(0, 2, DEFAULT_REGIONS, rand=DeterministicRandom(7))
        net.add_indexed_host(0).bind_udp(4000)
        # Viewer 1 lives in region index 1 -> shard 1: remote from shard 0.
        assert shard_of(1, len(DEFAULT_REGIONS), 2) == 1
        net.send_indexed(0, 1, 0.5, 0.9)
        assert net.egress_sent == 1
        assert net.datagrams_sent == 1
        assert net.datagrams_in_flight == 0  # receiver-side accounting
        flushed = net.flush_egress()
        assert list(flushed) == [1] and len(flushed[1][0]) == 1
        assert net.flush_egress() == {}  # drained


class TestCrashWithInFlightTraffic:
    """A host crash while cross-shard datagrams are in flight."""

    @pytest.fixture(scope="class")
    def plan_path(self, tmp_path_factory):
        plan = FaultPlan(
            events=(HostCrash(at=5.0, host="v1"),), name="crash-v1"
        )
        path = tmp_path_factory.mktemp("plans") / "crash.json"
        path.write_text(plan.to_json())
        return str(path)

    def test_digest_invariant_and_drops_counted(self, plan_path):
        # Low locality maximises cross-shard traffic around the crash.
        reports = [
            run_at(workers, faults=plan_path, locality=0.5)
            for workers in (1, 2, 4)
        ]
        assert len({report.digest for report in reports}) == 1
        for report in reports:
            assert report.conservation_ok
            assert report.drops_by_reason.get("host_down", 0) >= 1

    def test_every_shard_applies_the_whole_plan(self, plan_path):
        report = run_at(4, faults=plan_path, locality=0.5)
        applied = [shard["fault_events_applied"] for shard in report.per_shard]
        assert applied == [1, 1, 1, 1]


class TestMaxEventsExactness:
    """``max_events=N`` must mean exactly N, at any worker count.

    Calm plans only: fault events re-apply on every shard (that is the
    invariance rule), so chaos event *counts* are K-dependent even
    though the digest is not.
    """

    @pytest.fixture(scope="class")
    def exact_total(self):
        return run_at(1).events_fired

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_exact_budget_completes(self, exact_total, workers):
        workload = SwarmWorkload(**SMALL)
        report = run_workload(workload, workers, max_events=exact_total)
        assert report.events_fired == exact_total
        assert report.conservation_ok

    @pytest.mark.parametrize("workers", [1, 2])
    def test_one_less_raises_the_livelock_error(self, exact_total, workers):
        workload = SwarmWorkload(**SMALL)
        with pytest.raises(RuntimeError, match=f"exceeded {exact_total - 1} events"):
            run_workload(workload, workers, max_events=exact_total - 1)

    def test_budget_requires_inline_coordinator(self):
        with pytest.raises(ConfigurationError, match="inline"):
            run_workload(SwarmWorkload(**SMALL), 2, max_events=10, inline=False)


class TestShardStats:
    """Per-shard diagnostics and their cross-shard aggregation."""

    def test_wheel_stats_absorb_remote(self):
        stats = WheelStats()
        stats.absorb_remote("shard:0", {"scheduled": 10, "overflow": 2,
                                        "batched": 8, "batch_drains": 4,
                                        "occupancy": 5})
        stats.absorb_remote("shard:1", {"scheduled": 7, "overflow": 1,
                                        "batched": 3, "batch_drains": 2,
                                        "occupancy": 9})
        assert stats.scheduled == 17
        assert stats.overflow == 3
        assert stats.batched == 11
        assert stats.batch_drains == 6
        assert stats.max_occupancy == 9
        # Re-absorbing a key replaces its snapshot (no double count).
        stats.absorb_remote("shard:0", {"scheduled": 11, "overflow": 2,
                                        "batched": 8, "batch_drains": 4,
                                        "occupancy": 5})
        assert stats.scheduled == 18

    def test_report_wheel_summary_sums_and_maxes(self):
        report = run_at(2)
        summary = report.wheel_summary()
        assert summary["scheduled"] == sum(
            shard["wheel"]["scheduled"] for shard in report.per_shard
        )
        assert summary["max_occupancy"] == max(
            shard["wheel"]["occupancy"] for shard in report.per_shard
        )

    def test_egress_matches_injection_globally(self):
        report = run_at(4, locality=0.5)
        egress = sum(shard["egress_sent"] for shard in report.per_shard)
        injected = sum(shard["remote_injected"] for shard in report.per_shard)
        assert egress == injected > 0

    def test_fault_plan_identical_for_any_caller(self):
        workload = SwarmWorkload(**SMALL, faults="chaos-mix")
        assert build_fault_plan(workload).digest() == build_fault_plan(workload).digest()
