"""Tests for RunRecord manifests."""

import json

from repro.harness.manifest import MANIFEST_VERSION, RunRecord


class TestRunRecord:
    def make(self) -> RunRecord:
        return RunRecord(
            experiment="token-defense",
            seed=2024,
            params={"ttl": 30},
            wall_seconds=0.5,
            events_fired=8,
            result_digest="abc123",
            result_type="TokenDefenseResult",
            started_at_unix=1_700_000_000.0,
        )

    def test_ok_property(self):
        assert self.make().ok
        assert not RunRecord(experiment="x", seed=0, status="error").ok

    def test_dict_round_trip(self):
        record = self.make()
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record

    def test_to_json_is_valid_json(self):
        data = json.loads(self.make().to_json())
        assert data["experiment"] == "token-defense"
        assert data["version"] == MANIFEST_VERSION

    def test_write_and_read(self, tmp_path):
        record = self.make()
        path = record.write(tmp_path / "m.json")
        assert RunRecord.read(path) == record

    def test_params_serialised_jsonably(self):
        record = RunRecord(experiment="x", seed=0, params={"tags": {"b", "a"}})
        assert record.to_dict()["params"] == {"tags": ["a", "b"]}
