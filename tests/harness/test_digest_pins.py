"""Pinned result digests: the replay-from-seed contract, frozen.

``repro verify`` proves an experiment replays to *some* stable digest;
these pins prove it replays to *the* digest recorded when this tree was
committed. Any change to simulation order, RNG stream consumption, or
result serialisation shows up here as a diff — which is the point: such
changes must be deliberate, and updating the constants below is the
explicit act of accepting them.

The pins run the registry's quick parameterisations at the default seed
(2024), exactly like ``repro <name> --quick``.
"""

import pytest

import repro.experiments  # noqa: F401  - triggers @experiment registration
from repro.harness import registry
from repro.harness.runner import execute_spec

#: name -> digest of ``result.to_dict()`` at seed 2024 with quick params.
#: Recorded with the million-datagram fast-path PR; re-record with
#:   PYTHONPATH=src python -c "from tests.harness.test_digest_pins import \
#:       current_digests; print(current_digests())"
EXPECTED_DIGESTS = {
    "bandwidth": "bf6e25fb8235109c0dd3c76bc45b162a319010a4b5ae675ec4e3dd6e1332c456",
    "chaos": "9a6263c61366eb2f218951774b52abe7d3d99cc838dd0e84d2c8453f4a6061ae",
}

PIN_SEED = 2024


def current_digests() -> dict:
    """Recompute the pinned digests on the current tree."""
    out = {}
    for name in EXPECTED_DIGESTS:
        params = registry.get(name).resolve_params(quick=True)
        outcome = execute_spec(name, PIN_SEED, params)
        assert outcome.record.ok, outcome.record.error
        out[name] = outcome.record.result_digest
    return out


class TestDigestPins:
    @pytest.mark.parametrize("name", sorted(EXPECTED_DIGESTS))
    def test_quick_run_matches_pinned_digest(self, name):
        params = registry.get(name).resolve_params(quick=True)
        outcome = execute_spec(name, PIN_SEED, params)
        assert outcome.record.ok, outcome.record.error
        assert outcome.record.result_digest == EXPECTED_DIGESTS[name], (
            f"{name} drifted from its pinned digest — if the simulation "
            f"change is intentional, update EXPECTED_DIGESTS"
        )
