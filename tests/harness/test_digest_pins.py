"""Pinned result digests: the replay-from-seed contract, frozen.

``repro verify`` proves an experiment replays to *some* stable digest;
these pins prove it replays to *the* digest recorded when this tree was
committed. Any change to simulation order, RNG stream consumption, or
result serialisation shows up here as a diff — which is the point: such
changes must be deliberate, and updating the constants below is the
explicit act of accepting them.

The pins run the registry's quick parameterisations at the default seed
(2024), exactly like ``repro <name> --quick``.
"""

import pytest

import repro.experiments  # noqa: F401  - triggers @experiment registration
from repro.harness import registry
from repro.harness.runner import execute_spec

#: name -> digest of ``result.to_dict()`` at seed 2024 with quick params.
#: Recorded with the million-datagram fast-path PR; re-record with
#:   PYTHONPATH=src python -c "from tests.harness.test_digest_pins import \
#:       current_digests; print(current_digests())"
EXPECTED_DIGESTS = {
    "bandwidth": "bf6e25fb8235109c0dd3c76bc45b162a319010a4b5ae675ec4e3dd6e1332c456",
    "chaos": "9a6263c61366eb2f218951774b52abe7d3d99cc838dd0e84d2c8453f4a6061ae",
    "scenario-matrix": "3e4c8b8a0746d3a67c85ca14fa68fd5cf342f015e35a4c1d908f0e7653c3a6eb",
}

#: scenario preset -> digest of a quick scenario-matrix run restricted
#: to that preset crossed with the "churn" fault plan at seed 2024.
#: Each pin freezes one preset's materialised audience *and* its
#: interaction with chaos injection — the preset cannot drift silently.
EXPECTED_SCENARIO_DIGESTS = {
    "cgnat-heavy": "376c84114153a52ffd2299b380b992c1a928ef897249bd9bef64ff7e77c59d53",
    "diurnal": "5d08db4accb30ebad0fee036658787772bde39af3ea71d9808037625ec1232fe",
    "flash-crowd": "60d147107f4b62636e9d6030d8922b239132cd95123a7cd2f6a73de4c7b276ac",
    "steady": "85f5caa42c5e49a0c9bc730fc895282575e56c8753dc1fd55593c73eb60ae459",
    "vod-longtail": "5530406d5cfdd27d289b2abdf876d22684ceb02cb96f2a2dc2d70f07873a1220",
}

PIN_SEED = 2024


def _scenario_params(preset: str) -> dict:
    """Quick scenario-matrix params restricted to one preset × churn."""
    base = dict(registry.get("scenario-matrix").resolve_params(quick=True))
    return {**base, "scenarios": preset, "faults": "churn"}


def current_digests() -> dict:
    """Recompute the pinned digests on the current tree."""
    out = {}
    for name in EXPECTED_DIGESTS:
        params = registry.get(name).resolve_params(quick=True)
        outcome = execute_spec(name, PIN_SEED, params)
        assert outcome.record.ok, outcome.record.error
        out[name] = outcome.record.result_digest
    for preset in EXPECTED_SCENARIO_DIGESTS:
        outcome = execute_spec("scenario-matrix", PIN_SEED, _scenario_params(preset))
        assert outcome.record.ok, outcome.record.error
        out[f"scenario:{preset}"] = outcome.record.result_digest
    return out


class TestDigestPins:
    @pytest.mark.parametrize("name", sorted(EXPECTED_DIGESTS))
    def test_quick_run_matches_pinned_digest(self, name):
        params = registry.get(name).resolve_params(quick=True)
        outcome = execute_spec(name, PIN_SEED, params)
        assert outcome.record.ok, outcome.record.error
        assert outcome.record.result_digest == EXPECTED_DIGESTS[name], (
            f"{name} drifted from its pinned digest — if the simulation "
            f"change is intentional, update EXPECTED_DIGESTS"
        )


class TestScenarioPresetPins:
    def test_pins_cover_every_preset(self):
        from repro.scenarios.planner import SCENARIO_PRESETS

        assert sorted(EXPECTED_SCENARIO_DIGESTS) == sorted(SCENARIO_PRESETS), (
            "add a digest pin for every new scenario preset"
        )

    @pytest.mark.parametrize("preset", sorted(EXPECTED_SCENARIO_DIGESTS))
    def test_preset_cross_churn_matches_pinned_digest(self, preset):
        outcome = execute_spec("scenario-matrix", PIN_SEED, _scenario_params(preset))
        assert outcome.record.ok, outcome.record.error
        assert outcome.record.result_digest == EXPECTED_SCENARIO_DIGESTS[preset], (
            f"scenario preset {preset} drifted from its pinned digest — "
            f"if the change is intentional, update EXPECTED_SCENARIO_DIGESTS"
        )
        assert outcome.record.extra.get("scenarios", {}).get(preset), (
            "run manifest must record the scenario digest"
        )
