"""Every registered experiment's result must survive JSON round-trips.

Acceptance check for the structured-result layer: run each experiment
once at its quick parameters, then assert the result satisfies the
:class:`Result` protocol, serialises to a JSON document and back without
loss, renders non-empty text, and digests stably.
"""

import json

import pytest

from repro.harness import registry
from repro.harness.result import Result, canonical_json, content_digest

_CACHE: dict[str, object] = {}


def run_quick(name: str):
    if name not in _CACHE:
        spec = registry.get(name)
        params = spec.resolve_params(quick=True)
        _CACHE[name] = spec.runner(seed=registry.DEFAULT_SEED, **params)
    return _CACHE[name]


@pytest.mark.parametrize("name", registry.names())
class TestResultRoundTrip:
    def test_satisfies_result_protocol(self, name):
        result = run_quick(name)
        assert isinstance(result, Result)

    def test_to_dict_survives_json(self, name):
        data = run_quick(name).to_dict()
        assert isinstance(data, dict) and data
        restored = json.loads(canonical_json(data))
        assert canonical_json(restored) == canonical_json(data)

    def test_renders_text(self, name):
        assert run_quick(name).render().strip()

    def test_digest_stable_for_one_result(self, name):
        data = run_quick(name).to_dict()
        assert content_digest(data) == content_digest(data)
