"""Tests for structured-result serialisation and content digests."""

import enum
import json
from dataclasses import dataclass, field

from repro.harness.result import (
    Result,
    ResultBase,
    canonical_json,
    content_digest,
    to_jsonable,
)


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass
class Inner:
    x: int
    tags: set = field(default_factory=set)


@dataclass
class Sample(ResultBase):
    name: str
    values: list
    inner: Inner
    secret: object = None

    _serialize_exclude = ("secret",)

    def render(self) -> str:
        return f"sample {self.name}"


class TestToJsonable:
    def test_scalars_pass_through(self):
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True
        assert to_jsonable(3) == 3
        assert to_jsonable(2.5) == 2.5
        assert to_jsonable("s") == "s"

    def test_sets_are_sorted(self):
        assert to_jsonable({"b", "a", "c"}) == ["a", "b", "c"]

    def test_mixed_type_sets_do_not_raise(self):
        out = to_jsonable({1, "a"})
        assert sorted(map(str, out)) == sorted(["1", "a"])

    def test_enum_becomes_name(self):
        assert to_jsonable(Color.RED) == "RED"

    def test_bytes_hex_encode(self):
        assert to_jsonable(b"\x00\xff") == "00ff"

    def test_dataclass_recurses(self):
        assert to_jsonable(Inner(1, {"b", "a"})) == {"x": 1, "tags": ["a", "b"]}

    def test_tuple_becomes_list(self):
        assert to_jsonable((1, (2, 3))) == [1, [2, 3]]

    def test_unknown_object_stringifies(self):
        class Weird:
            def __repr__(self):
                return "weird"

        assert isinstance(to_jsonable(Weird()), str)

    def test_to_dict_is_preferred(self):
        class Custom:
            def to_dict(self):
                return {"k": {"z", "y"}}

        assert to_jsonable(Custom()) == {"k": ["y", "z"]}


class TestCanonicalJson:
    def test_sorted_compact(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_digest_stable_under_key_order(self):
        assert content_digest({"a": 1, "b": 2}) == content_digest({"b": 2, "a": 1})

    def test_digest_stable_under_set_order(self):
        assert content_digest({"s": {"x", "y", "z"}}) == content_digest({"s": {"z", "y", "x"}})

    def test_digest_differs_on_content(self):
        assert content_digest({"a": 1}) != content_digest({"a": 2})


class TestResultBase:
    def make(self):
        return Sample(name="n", values=[1, 2], inner=Inner(5, {"t"}), secret=object())

    def test_satisfies_protocol(self):
        assert isinstance(self.make(), Result)

    def test_default_to_dict_excludes(self):
        d = self.make().to_dict()
        assert d == {"name": "n", "values": [1, 2], "inner": {"x": 5, "tags": ["t"]}}

    def test_round_trips_through_json(self):
        d = self.make().to_dict()
        assert json.loads(json.dumps(d)) == d

    def test_content_digest_stable(self):
        assert self.make().content_digest() == self.make().content_digest()
