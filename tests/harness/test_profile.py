"""Tests for event-loop instrumentation sinks."""

from repro.harness.profile import (
    EventCounter,
    SiteProfiler,
    TraceSink,
    callsite_of,
    capture_events,
)
from repro.net.clock import EventLoop


def _tick() -> None:
    """A no-op callback with a stable module/qualname for site tests."""


class TestCallsite:
    def test_function_label(self):
        assert callsite_of(_tick) == f"{__name__}._tick"

    def test_object_without_metadata(self):
        class Calls:
            def __call__(self):
                pass

        label = callsite_of(Calls())
        assert isinstance(label, str) and label


class TestEventCounter:
    def test_counts_fired_events(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule_at(float(i), _tick)
        with capture_events(EventCounter()) as counter:
            loop.run_until(10.0)
        assert counter.total == 5
        assert counter.total == loop.events_fired

    def test_sink_removed_after_context(self):
        loop = EventLoop()
        with capture_events(EventCounter()) as counter:
            loop.schedule_at(0.0, _tick)
            loop.run_until(1.0)
        loop.schedule_at(2.0, _tick)
        loop.run_until(3.0)
        assert counter.total == 1

    def test_observes_every_loop_instance(self):
        with capture_events(EventCounter()) as counter:
            for _ in range(2):
                loop = EventLoop()
                loop.schedule_at(0.0, _tick)
                loop.run_until(1.0)
        assert counter.total == 2


class TestSiteProfiler:
    def run_profiled(self) -> SiteProfiler:
        loop = EventLoop()
        loop.schedule_at(0.0, _tick)
        loop.call_every(1.0, _tick)  # fires at 1, 2, 3; next pending at 4
        with capture_events(SiteProfiler()) as profiler:
            loop.run_until(3.0)
        return profiler

    def test_attributes_by_site(self):
        profiler = self.run_profiled()
        assert profiler.total == 4
        assert profiler.sites == {f"{__name__}._tick": 4}

    def test_top_and_render(self):
        profiler = self.run_profiled()
        assert profiler.top(1) == [(f"{__name__}._tick", 4)]
        rendered = profiler.render()
        assert "_tick" in rendered and "100.0%" in rendered

    def test_to_dict_shape(self):
        data = self.run_profiled().to_dict()
        assert data == {
            "total_events": 4,
            "sites": {f"{__name__}._tick": 4},
            # schedule_at(0.0) is in-band; the call_every chain is a
            # heap-class timer that bypasses both wheel counters. No
            # datagram plane here, so the batching gauges stay zero.
            "wheel": {
                "scheduled": 1,
                "overflow": 0,
                "batched": 0,
                "batch_drains": 0,
                "max_occupancy": 0,
            },
        }

    def test_render_wheel_summary_includes_batching_when_present(self):
        from repro.harness.profile import render_wheel_summary

        quiet = render_wheel_summary(
            {"scheduled": 1, "overflow": 0, "batched": 0, "batch_drains": 0,
             "max_occupancy": 0}
        )
        assert "batched delivery" not in quiet
        busy = render_wheel_summary(
            {"scheduled": 10, "overflow": 0, "batched": 9, "batch_drains": 3,
             "max_occupancy": 4}
        )
        assert "9 datagrams over 3 drains (3.0/drain)" in busy


class TestTraceSink:
    def test_records_when_and_site(self):
        loop = EventLoop()
        loop.schedule_at(1.5, _tick)
        with capture_events(TraceSink()) as trace:
            loop.run_until(2.0)
        assert trace.events == [(1.5, f"{__name__}._tick")]
        assert trace.dropped == 0

    def test_bounded(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule_at(float(i), _tick)
        with capture_events(TraceSink(limit=3)) as trace:
            loop.run_until(10.0)
        assert len(trace.events) == 3
        assert trace.dropped == 2
