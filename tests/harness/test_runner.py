"""Tests for the run pipeline: execute_spec, Runner, and verify."""

import json

import pytest

from repro.harness import registry
from repro.harness.manifest import RunRecord
from repro.harness.runner import RunRequest, Runner, execute_spec

# The three fastest experiments (sub-100ms each), used wherever a test
# has to actually execute experiments rather than mock them.
FAST = ["token-defense", "consent", "ecdn"]


def quick_params(name: str) -> dict:
    spec = registry.get(name)
    return spec.resolve_params(quick=True)


class TestExecuteSpec:
    @pytest.mark.parametrize("name", FAST)
    def test_digest_stable_across_two_same_seed_runs(self, name):
        first = execute_spec(name, seed=2024, params=quick_params(name))
        second = execute_spec(name, seed=2024, params=quick_params(name))
        assert first.record.ok and second.record.ok
        assert first.record.result_digest == second.record.result_digest
        assert first.record.events_fired == second.record.events_fired

    def test_different_seed_changes_digest(self):
        # propagation is seed-sensitive even at quick scale (swarm
        # topology and infection order depend on the RNG stream).
        a = execute_spec("propagation", seed=1, params=quick_params("propagation"))
        b = execute_spec("propagation", seed=2, params=quick_params("propagation"))
        assert a.record.result_digest != b.record.result_digest

    def test_record_fields_populated(self):
        outcome = execute_spec("token-defense", seed=2024)
        record = outcome.record
        assert record.experiment == "token-defense"
        assert record.seed == 2024
        assert record.status == "ok"
        assert record.result_digest
        assert record.result_type
        assert record.events_fired > 0
        assert record.wall_seconds >= 0
        assert outcome.rendered
        assert isinstance(outcome.result_dict, dict)

    def test_error_captured_not_raised(self):
        outcome = execute_spec("token-defense", seed=2024, params={"no_such_kw": 1})
        assert outcome.record.status == "error"
        assert "no_such_kw" in (outcome.record.error or "")
        assert outcome.record.result_digest is None

    def test_profile_collects_sites(self):
        outcome = execute_spec("token-defense", seed=2024, profile=True)
        assert outcome.profile is not None
        assert outcome.profile["total_events"] == outcome.record.events_fired
        assert outcome.profile["sites"]


class TestRunner:
    def test_preserves_request_order(self):
        runner = Runner(jobs=1)
        requests = [RunRequest(n, 2024, quick_params(n)) for n in FAST]
        outcomes = runner.run(requests)
        assert [o.record.experiment for o in outcomes] == FAST

    def test_writes_manifest_and_result_artifacts(self, tmp_path):
        runner = Runner(jobs=1, out_dir=tmp_path)
        outcomes = runner.run([RunRequest("token-defense", 2024, {})])
        manifest_path = tmp_path / "token-defense.manifest.json"
        result_path = tmp_path / "token-defense.result.json"
        assert manifest_path.exists() and result_path.exists()
        assert RunRecord.read(manifest_path) == outcomes[0].record
        payload = json.loads(result_path.read_text())
        assert payload["experiment"] == "token-defense"
        assert payload["result_digest"] == outcomes[0].record.result_digest
        assert payload["result"] == outcomes[0].result_dict

    def test_verify_passes_for_deterministic_experiments(self):
        runner = Runner(jobs=1)
        report = runner.verify(
            FAST, seed=2024, runs=2, params_for={n: quick_params(n) for n in FAST}
        )
        assert report.ok
        assert report.mismatches() == []
        assert "deterministic" in report.render()
        for name in FAST:
            assert len(report.digests[name]) == 2
            assert len(set(report.digests[name])) == 1

    def test_verify_flags_errors(self):
        runner = Runner(jobs=1)
        report = runner.verify(
            ["token-defense"], seed=2024, runs=2,
            params_for={"token-defense": {"bogus_kw": 1}},
        )
        assert not report.ok
        assert report.mismatches() == ["token-defense"]
        assert "token-defense" in report.errors
        assert "NON-DETERMINISTIC" in report.render()
