"""Tests for the experiment registry and spec parameter resolution."""

import pytest

from repro.cli import build_parser
from repro.harness import registry
from repro.harness.registry import CliOption, ExperimentSpec, register
from repro.util.errors import ConfigurationError

EXPECTED = [
    "detect", "detection-quality", "free-riding", "risk-matrix", "resources",
    "bandwidth", "ip-leak", "consent", "propagation", "chaos",
    "scenario-matrix", "swarm-scale", "token-defense", "im-checking", "ecdn",
]


class TestDiscovery:
    def test_all_experiments_registered_in_paper_order(self):
        assert registry.names() == EXPECTED

    def test_every_spec_resolves_by_name(self):
        for name in EXPECTED:
            spec = registry.get(name)
            assert spec.name == name
            assert callable(spec.runner)
            assert spec.help

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            registry.get("nope")

    def test_spec_attached_to_runner(self):
        from repro.experiments import token_defense

        assert token_defense.run.spec is registry.get("token-defense")

    def test_module_provenance(self):
        assert registry.get("detect").module == "repro.experiments.detection_tables"


class TestCliRoundTrip:
    """Every CLI command resolves to a registered spec and vice versa."""

    def test_registry_to_parser(self):
        parser = build_parser()
        for name in registry.names():
            args = parser.parse_args([name])
            assert args.command == name

    def test_parser_to_registry(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if isinstance(a, type(parser._actions[-1]))
            and hasattr(a, "choices") and a.choices
        )
        commands = set(subparsers.choices) - {"all", "lint", "verify", "list"}
        assert commands == set(registry.names())


class TestResolveParams:
    def spec(self, **kwargs) -> ExperimentSpec:
        return ExperimentSpec(name="x", help="x", runner=lambda **kw: None, **kwargs)

    def test_defaults_layer(self):
        spec = self.spec(defaults={"quick": True})
        assert spec.resolve_params() == {"quick": True}

    def test_full_beats_defaults_and_options(self):
        spec = self.spec(
            defaults={"days": 0.5},
            full_params={"days": 7.0},
            options=(CliOption("--days", "days", float, 1.0, "d"),),
        )
        assert spec.resolve_params() == {"days": 1.0}
        assert spec.resolve_params(option_values={"days": 3.0}) == {"days": 3.0}
        assert spec.resolve_params(full=True, option_values={"days": 3.0}) == {"days": 7.0}

    def test_overrides_beat_everything(self):
        spec = self.spec(defaults={"a": 1}, full_params={"a": 2})
        assert spec.resolve_params(full=True, overrides={"a": 9}) == {"a": 9}

    def test_quick_layer(self):
        spec = self.spec(defaults={"n": 10}, quick_params={"n": 2})
        assert spec.resolve_params(quick=True) == {"n": 2}


class TestRegister:
    def test_conflicting_module_rejected(self):
        def other_run(**kwargs):
            return None

        other_run.__module__ = "somewhere.else"
        spec = ExperimentSpec(name="detect", help="dup", runner=other_run)
        with pytest.raises(ConfigurationError, match="registered by both"):
            register(spec)

    def test_same_module_reregistration_allowed(self):
        spec = registry.get("detect")
        assert register(spec) is spec
