"""Tests for the HTTP model."""

import pytest

from repro.streaming.http import (
    HttpClient,
    HttpRequest,
    HttpResponse,
    UrlSpace,
    parse_url,
)
from repro.util.errors import HttpError, NetworkError


class EchoServer:
    def __init__(self):
        self.requests = []

    def handle_request(self, request):
        self.requests.append(request)
        return HttpResponse(200, b"echo:" + request.path.encode())


class TestParseUrl:
    def test_basic(self):
        assert parse_url("https://cdn.test.com/vod/x/seg-1.ts") == (
            "https",
            "cdn.test.com",
            "/vod/x/seg-1.ts",
        )

    def test_bare_host(self):
        assert parse_url("https://example.com") == ("https", "example.com", "/")

    @pytest.mark.parametrize("bad", ["not-a-url", "https://", ""])
    def test_malformed(self, bad):
        with pytest.raises(NetworkError):
            parse_url(bad)


class TestUrlSpace:
    def test_dispatch_routes_by_host(self):
        urls = UrlSpace()
        server = EchoServer()
        urls.register("a.com", server)
        response = urls.dispatch(HttpRequest("GET", "https://a.com/x"))
        assert response.body == b"echo:/x"

    def test_unknown_host_is_502(self):
        urls = UrlSpace()
        response = urls.dispatch(HttpRequest("GET", "https://nowhere.com/"))
        assert response.status == 502

    def test_hostnames_case_insensitive(self):
        urls = UrlSpace()
        urls.register("A.COM", EchoServer())
        assert urls.dispatch(HttpRequest("GET", "https://a.com/")).ok

    def test_unregister(self):
        urls = UrlSpace()
        urls.register("a.com", EchoServer())
        urls.unregister("a.com")
        assert urls.dispatch(HttpRequest("GET", "https://a.com/")).status == 502


class TestHttpClient:
    def test_byte_accounting(self):
        urls = UrlSpace()
        urls.register("a.com", EchoServer())
        client = HttpClient(urls, client_ip="1.2.3.4")
        client.post("https://a.com/data", b"xxxx")
        assert client.bytes_uploaded == 4
        assert client.bytes_downloaded == len(b"echo:/data")
        assert client.requests_made == 1

    def test_client_ip_visible_to_server(self):
        urls = UrlSpace()
        server = EchoServer()
        urls.register("a.com", server)
        HttpClient(urls, client_ip="9.9.9.9").get("https://a.com/")
        assert server.requests[0].client_ip == "9.9.9.9"

    def test_proxy_intercepts(self):
        class UpperProxy:
            def handle(self, request, urlspace):
                request.headers["X-Proxied"] = "yes"
                return urlspace.dispatch(request)

        urls = UrlSpace()
        server = EchoServer()
        urls.register("a.com", server)
        HttpClient(urls, proxy=UpperProxy()).get("https://a.com/")
        assert server.requests[0].headers["X-Proxied"] == "yes"


class TestHttpTypes:
    def test_header_lookup_case_insensitive(self):
        request = HttpRequest("GET", "https://a.com/", {"Origin": "https://b.com"})
        assert request.header("origin") == "https://b.com"
        assert request.header("missing", "dflt") == "dflt"

    def test_raise_for_status(self):
        with pytest.raises(HttpError) as err:
            HttpResponse(404).raise_for_status()
        assert err.value.status == 404
        assert HttpResponse(204).raise_for_status().status == 204
