"""Tests for synthetic video sources."""

from repro.streaming.video import make_video, pollute_segment


class TestMakeVideo:
    def test_deterministic(self):
        a = make_video("clip", 4, segment_size=1000)
        b = make_video("clip", 4, segment_size=1000)
        assert [s.digest for s in a.segments] == [s.digest for s in b.segments]

    def test_distinct_ids_distinct_content(self):
        a = make_video("clip-a", 2, segment_size=1000)
        b = make_video("clip-b", 2, segment_size=1000)
        assert a.segments[0].digest != b.segments[0].digest

    def test_segments_distinct_within_video(self):
        video = make_video("clip", 5, segment_size=1000)
        assert len({s.digest for s in video.segments}) == 5

    def test_sizes_and_duration(self):
        video = make_video("clip", 3, segment_duration=6.0, segment_size=12345)
        assert all(s.size == 12345 for s in video.segments)
        assert video.duration == 18.0
        assert video.total_bytes == 3 * 12345

    def test_large_segment_fast_path(self):
        video = make_video("big", 1, segment_size=3_000_000)
        assert video.segments[0].size == 3_000_000

    def test_segment_lookup(self):
        video = make_video("clip", 3)
        assert video.segment(2) is not None
        assert video.segment(3) is None
        assert video.segment(-1) is None

    def test_filenames(self):
        video = make_video("clip", 2)
        assert video.segments[1].filename == "seg-1.ts"


class TestPollute:
    def test_same_size_different_content(self):
        video = make_video("clip", 1, segment_size=500)
        original = video.segments[0]
        polluted = pollute_segment(original)
        assert polluted.size == original.size
        assert polluted.digest != original.digest
        assert polluted.index == original.index
