"""Tests for the buffered HLS player."""

import pytest

from repro.net.clock import EventLoop
from repro.streaming.cdn import CdnEdge, OriginServer, live_playlist_url, vod_playlist_url
from repro.streaming.http import HttpClient, UrlSpace
from repro.streaming.player import CdnLoader, VideoPlayer
from repro.streaming.video import make_video
from repro.util.errors import ConfigurationError


def make_world():
    loop = EventLoop()
    urls = UrlSpace()
    origin = OriginServer(loop)
    cdn = CdnEdge(origin)
    urls.register(origin.hostname, origin)
    urls.register(cdn.hostname, cdn)
    return loop, urls, origin, cdn


class TestVodPlayback:
    def test_plays_all_segments_in_order(self):
        loop, urls, origin, cdn = make_world()
        video = make_video("clip", 5, segment_duration=2.0, segment_size=100)
        origin.add_vod(video)
        player = VideoPlayer(loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip"))
        player.start()
        loop.run(60.0)
        assert player.finished
        assert [p.index for p in player.stats.played] == [0, 1, 2, 3, 4]
        assert player.stats.played_digests() == [s.digest for s in video.segments]
        assert player.stats.stalls == 0

    def test_on_finished_callback(self):
        loop, urls, origin, cdn = make_world()
        origin.add_vod(make_video("clip", 2, segment_duration=1.0, segment_size=10))
        player = VideoPlayer(loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip"))
        done = []
        player.on_finished = lambda: done.append(loop.now)
        player.start()
        loop.run(30.0)
        assert done

    def test_max_segments_stops_early(self):
        loop, urls, origin, cdn = make_world()
        origin.add_vod(make_video("clip", 10, segment_duration=1.0, segment_size=10))
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip"),
            max_segments=4,
        )
        player.start()
        loop.run(60.0)
        assert player.finished
        assert len(player.stats.played) == 4

    def test_missing_playlist_never_starts(self):
        loop, urls, origin, cdn = make_world()
        player = VideoPlayer(loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "ghost"))
        player.start()
        loop.run(10.0)
        assert not player.finished
        assert player.stats.played == []

    def test_bad_config_rejected(self):
        loop, urls, origin, cdn = make_world()
        with pytest.raises(ConfigurationError):
            VideoPlayer(loop, CdnLoader(HttpClient(urls)), "no-slash", buffer_target=1)
        with pytest.raises(ConfigurationError):
            VideoPlayer(
                loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "x"),
                buffer_target=0,
            )

    def test_stop_halts_playback(self):
        loop, urls, origin, cdn = make_world()
        origin.add_vod(make_video("clip", 10, segment_duration=2.0, segment_size=10))
        player = VideoPlayer(loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip"))
        player.start()
        loop.run(3.0)
        player.stop()
        played = len(player.stats.played)
        loop.run(60.0)
        assert len(player.stats.played) == played


class TestSeeking:
    def test_seek_skips_segments_and_counts(self):
        loop, urls, origin, cdn = make_world()
        origin.add_vod(make_video("clip", 10, segment_duration=2.0, segment_size=100))
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip")
        )
        player.start()
        loop.run(1.0)  # a couple of segments played
        before = player._play_index
        player.seek(3)
        assert player._play_index == before + 3
        loop.run(60.0)
        assert player.finished
        played = [p.index for p in player.stats.played]
        assert player.stats.seeks == 1
        # the jumped-over indices never play, everything after does
        assert played == sorted(played)
        assert set(range(before + 3, 10)) <= set(played)
        assert not set(range(before, before + 3)) & set(played[played.index(before + 3):])

    def test_seek_drops_stale_buffer_entries(self):
        loop, urls, origin, cdn = make_world()
        origin.add_vod(make_video("clip", 12, segment_duration=2.0, segment_size=100))
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip"),
            buffer_target=5,
        )
        player.start()
        loop.run(2.0)
        player.seek(4)
        assert all(i >= player._play_index for i in player._buffer)
        loop.run(60.0)
        assert player.finished

    def test_seek_clamps_to_end(self):
        loop, urls, origin, cdn = make_world()
        origin.add_vod(make_video("clip", 5, segment_duration=1.0, segment_size=50))
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip")
        )
        player.start()
        loop.run(0.5)
        player.seek(100)
        # clamps to the exclusive end: playback finishes on the next tick
        assert player._play_index == 5
        loop.run(30.0)
        assert player.finished
        assert all(p.index < 5 for p in player.stats.played)

    def test_seek_noop_when_stopped_or_backward(self):
        loop, urls, origin, cdn = make_world()
        origin.add_vod(make_video("clip", 5, segment_duration=1.0, segment_size=50))
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip")
        )
        player.start()
        loop.run(0.5)
        player.seek(0)
        player.seek(-3)
        assert player.stats.seeks == 0
        player.stop()
        player.seek(2)
        assert player.stats.seeks == 0

    def test_stale_inflight_fetch_counted_but_not_buffered(self):
        loop, urls, origin, cdn = make_world()
        origin.add_vod(make_video("clip", 10, segment_duration=2.0, segment_size=100))
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip"),
            buffer_target=2,
        )
        player.start()
        loop.run(1.0)
        # A fetch completing for an index behind the (post-seek) playhead
        # must keep its byte accounting but never enter the buffer.
        stale = player._play_index
        player.seek(5)  # may synchronously fetch ahead; snapshot after it
        bytes_before = player.stats.bytes_from_cdn
        player._inflight.add(stale)
        player._on_segment(stale, b"x" * 77, "cdn")
        assert player.stats.bytes_from_cdn == bytes_before + 77
        assert stale not in player._buffer
        loop.run(60.0)
        assert player.finished


class TestLivePlayback:
    def test_follows_live_window(self):
        loop, urls, origin, cdn = make_world()
        video = make_video("live", 12, segment_duration=2.0, segment_size=50)
        origin.add_live("ch", video, window=3)
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)), live_playlist_url(cdn.hostname, "ch"),
            max_segments=6,
        )
        player.start()
        loop.run(120.0)
        assert player.finished
        assert len(player.stats.played) == 6
        assert player.live

    def test_joining_late_starts_at_window_edge(self):
        loop, urls, origin, cdn = make_world()
        video = make_video("live", 12, segment_duration=2.0, segment_size=50)
        origin.add_live("ch", video, window=3)
        loop.run(20.0)  # channel has been live a while
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)), live_playlist_url(cdn.hostname, "ch"),
            max_segments=3,
        )
        player.start()
        loop.run(60.0)
        assert player.stats.played
        assert player.stats.played[0].index >= 7  # not from the beginning


class TestLoaderAccounting:
    def test_source_attribution(self):
        loop, urls, origin, cdn = make_world()
        video = make_video("clip", 3, segment_duration=1.0, segment_size=100)
        origin.add_vod(video)
        player = VideoPlayer(loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip"))
        player.start()
        loop.run(30.0)
        assert player.stats.bytes_from_cdn == 300
        assert player.stats.bytes_from_p2p == 0
        assert player.stats.p2p_ratio == 0.0
        assert all(p.source == "cdn" for p in player.stats.played)


class TestFaultTolerance:
    def test_transient_cdn_failures_retried(self):
        """A brief edge outage delays but does not corrupt playback."""
        loop, urls, origin, cdn = make_world()
        video = make_video("clip", 5, segment_duration=2.0, segment_size=100)
        origin.add_vod(video)
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip")
        )
        player.start()
        loop.run(3.0)
        cdn.inject_failures(2)  # the next two requests 503
        loop.run(60.0)
        assert player.finished
        assert player.stats.played_digests() == [s.digest for s in video.segments]
        assert player.stats.segments_skipped == 0

    def test_permanent_failure_skips_segment(self):
        """A segment that never delivers is skipped, not stalled on
        forever — playback continues with the rest."""
        loop, urls, origin, cdn = make_world()
        video = make_video("clip", 6, segment_duration=2.0, segment_size=100)
        origin.add_vod(video)

        class FlakyCdn:
            def handle_request(self, request):
                if "seg-3.ts" in request.path:
                    from repro.streaming.http import HttpResponse

                    return HttpResponse(503, b"permanently broken")
                return cdn.handle_request(request)

        urls.register(cdn.hostname, FlakyCdn())
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)), vod_playlist_url(cdn.hostname, "clip")
        )
        player.start()
        loop.run(120.0)
        assert player.finished
        assert player.stats.segments_skipped == 1
        played_indices = [p.index for p in player.stats.played]
        assert 3 not in played_indices
        assert played_indices == [0, 1, 2, 4, 5]
