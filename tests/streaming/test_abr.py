"""Tests for multi-bitrate HLS and the adaptive player."""

import pytest

from repro.net.clock import EventLoop
from repro.streaming.cdn import CdnEdge, OriginServer
from repro.streaming.hls import (
    VariantEntry,
    generate_master_playlist,
    is_master_playlist,
    parse_master_playlist,
)
from repro.streaming.http import HttpClient, UrlSpace
from repro.streaming.player import CdnLoader, VideoPlayer
from repro.streaming.video import make_multi_bitrate_video
from repro.util.errors import ProtocolError


class TestMasterPlaylist:
    def test_round_trip(self):
        variants = [
            VariantEntry("360p/playlist.m3u8", 800_000, "360p"),
            VariantEntry("1080p/playlist.m3u8", 5_000_000, "1080p"),
        ]
        parsed = parse_master_playlist(generate_master_playlist(variants))
        assert parsed.variants == variants

    def test_detection(self):
        text = generate_master_playlist([VariantEntry("a.m3u8", 1000)])
        assert is_master_playlist(text)
        assert not is_master_playlist("#EXTM3U\n#EXTINF:4.0,\nseg-0.ts\n")

    def test_selection_helpers(self):
        master = parse_master_playlist(
            generate_master_playlist(
                [
                    VariantEntry("lo.m3u8", 800_000, "lo"),
                    VariantEntry("mid.m3u8", 2_500_000, "mid"),
                    VariantEntry("hi.m3u8", 5_000_000, "hi"),
                ]
            )
        )
        assert master.lowest().name == "lo"
        assert master.best_for(3_000_000).name == "mid"
        assert master.best_for(100).name == "lo"  # nothing affordable -> lowest

    def test_empty_master_rejected(self):
        with pytest.raises(ProtocolError):
            parse_master_playlist("#EXTM3U\n")

    def test_uri_without_streaminf_rejected(self):
        with pytest.raises(ProtocolError):
            parse_master_playlist("#EXTM3U\nvariant.m3u8\n")


class TestMultiBitrateVideo:
    def test_renditions_aligned_but_distinct(self):
        renditions = make_multi_bitrate_video("show", 6, 4.0)
        sizes = {name: video.segments[0].size for name, video in renditions.items()}
        assert sizes["1080p"] > sizes["720p"] > sizes["360p"]
        counts = {len(video.segments) for video in renditions.values()}
        assert counts == {6}
        digests = {video.segments[0].digest for video in renditions.values()}
        assert len(digests) == 3  # different content per rendition


def make_world():
    loop = EventLoop()
    urls = UrlSpace()
    origin = OriginServer(loop)
    cdn = CdnEdge(origin)
    urls.register(origin.hostname, origin)
    urls.register(cdn.hostname, cdn)
    renditions = make_multi_bitrate_video(
        "movie", 10, segment_duration=2.0,
        bitrates_kbps={"360p": 80, "720p": 250, "1080p": 500},
    )
    origin.add_vod_renditions("movie", renditions)
    return loop, urls, cdn, renditions


class TestOriginRouting:
    def test_master_and_renditions_served(self):
        loop, urls, cdn, renditions = make_world()
        client = HttpClient(urls)
        master = client.get(f"https://{cdn.hostname}/vod/movie/master.m3u8")
        assert master.ok and is_master_playlist(master.body.decode())
        media = client.get(f"https://{cdn.hostname}/vod/movie/360p/playlist.m3u8")
        assert media.ok
        segment = client.get(f"https://{cdn.hostname}/vod/movie/720p/seg-3.ts")
        assert segment.body == renditions["720p"].segments[3].data

    def test_unknown_rendition_404(self):
        loop, urls, cdn, _ = make_world()
        assert HttpClient(urls).get(f"https://{cdn.hostname}/vod/movie/4k/seg-0.ts").status == 404


class TestAdaptivePlayer:
    def test_starts_low_and_upgrades(self):
        loop, urls, cdn, renditions = make_world()
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)),
            f"https://{cdn.hostname}/vod/movie/master.m3u8",
        )
        player.start()
        loop.run(60.0)
        assert player.finished
        assert len(player.stats.played) == 10
        switches = [name for _, name in player.rendition_switches]
        assert switches[0] == "360p"  # conservative start
        assert "720p" in switches  # smooth playback earns an upgrade
        # played content comes from the renditions actually selected
        all_digests = {
            s.digest for video in renditions.values() for s in video.segments
        }
        assert set(player.stats.played_digests()) <= all_digests

    def test_rendition_content_matches_level(self):
        loop, urls, cdn, renditions = make_world()
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)),
            f"https://{cdn.hostname}/vod/movie/master.m3u8",
        )
        player.start()
        loop.run(60.0)
        first_digests = [p.digest for p in player.stats.played[:3]]
        low = [s.digest for s in renditions["360p"].segments[:3]]
        assert first_digests == low  # the startup segments are 360p

    def test_plain_media_playlist_unaffected(self):
        loop, urls, cdn, renditions = make_world()
        player = VideoPlayer(
            loop, CdnLoader(HttpClient(urls)),
            f"https://{cdn.hostname}/vod/movie/360p/playlist.m3u8",
        )
        player.start()
        loop.run(60.0)
        assert player.finished
        assert player.current_rendition is None
        assert player.rendition_switches == []
