"""Tests for HLS playlist generation and parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.streaming.hls import generate_media_playlist, parse_media_playlist
from repro.streaming.video import make_video
from repro.util.errors import ProtocolError


class TestGenerate:
    def test_vod_playlist_shape(self):
        video = make_video("clip", 3, segment_duration=4.0)
        text = generate_media_playlist(video)
        assert text.startswith("#EXTM3U")
        assert "#EXT-X-ENDLIST" in text
        assert text.count("#EXTINF") == 3
        assert "seg-0.ts" in text and "seg-2.ts" in text

    def test_live_window(self):
        video = make_video("live", 10, segment_duration=4.0)
        text = generate_media_playlist(video, first_index=4, window=3, endlist=False)
        assert "#EXT-X-MEDIA-SEQUENCE:4" in text
        assert "#EXT-X-ENDLIST" not in text
        assert "seg-4.ts" in text and "seg-6.ts" in text and "seg-7.ts" not in text


class TestParse:
    def test_round_trip_vod(self):
        video = make_video("clip", 5, segment_duration=4.0)
        playlist = parse_media_playlist(generate_media_playlist(video))
        assert playlist.endlist and not playlist.is_live
        assert playlist.media_sequence == 0
        assert [e.uri for e in playlist.entries] == [f"seg-{i}.ts" for i in range(5)]
        assert all(e.duration == 4.0 for e in playlist.entries)

    def test_round_trip_live(self):
        video = make_video("live", 8, segment_duration=2.0)
        playlist = parse_media_playlist(
            generate_media_playlist(video, first_index=3, window=4, endlist=False)
        )
        assert playlist.is_live
        assert playlist.segment_indices() == [3, 4, 5, 6]

    def test_missing_header_rejected(self):
        with pytest.raises(ProtocolError):
            parse_media_playlist("#EXT-X-VERSION:3\nseg-0.ts")

    def test_uri_without_extinf_rejected(self):
        with pytest.raises(ProtocolError):
            parse_media_playlist("#EXTM3U\nseg-0.ts")

    def test_unknown_tags_tolerated(self):
        text = "#EXTM3U\n#EXT-X-FUTURE-TAG:x\n#EXTINF:4.0,\nseg-0.ts\n#EXT-X-ENDLIST"
        playlist = parse_media_playlist(text)
        assert len(playlist.entries) == 1

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=50),
        st.floats(min_value=0.5, max_value=30.0),
    )
    def test_round_trip_property(self, count, first, duration):
        video = make_video("prop", first + count, segment_duration=round(duration, 3))
        playlist = parse_media_playlist(
            generate_media_playlist(video, first_index=first, endlist=True)
        )
        assert len(playlist.entries) == count
        assert playlist.media_sequence == first
