"""Tests for the origin and CDN edge."""

from repro.net.clock import EventLoop
from repro.streaming.cdn import CdnEdge, OriginServer, live_playlist_url, vod_playlist_url
from repro.streaming.hls import parse_media_playlist
from repro.streaming.http import HttpClient, HttpRequest, UrlSpace
from repro.streaming.video import make_video


def make_stack(loop=None):
    loop = loop or EventLoop()
    urls = UrlSpace()
    origin = OriginServer(loop)
    cdn = CdnEdge(origin)
    urls.register(origin.hostname, origin)
    urls.register(cdn.hostname, cdn)
    return loop, urls, origin, cdn


class TestOriginVod:
    def test_playlist_and_segments(self):
        loop, urls, origin, cdn = make_stack()
        video = make_video("clip", 3, segment_size=100)
        origin.add_vod(video)
        client = HttpClient(urls)
        playlist = client.get(vod_playlist_url(cdn.hostname, "clip"))
        assert playlist.ok
        parsed = parse_media_playlist(playlist.body.decode())
        assert len(parsed.entries) == 3
        segment = client.get(f"https://{cdn.hostname}/vod/clip/seg-1.ts")
        assert segment.body == video.segments[1].data

    def test_unknown_video_404(self):
        loop, urls, origin, cdn = make_stack()
        assert HttpClient(urls).get(vod_playlist_url(cdn.hostname, "nope")).status == 404

    def test_out_of_range_segment_404(self):
        loop, urls, origin, cdn = make_stack()
        origin.add_vod(make_video("clip", 2))
        assert HttpClient(urls).get(f"https://{cdn.hostname}/vod/clip/seg-9.ts").status == 404

    def test_malformed_paths_404(self):
        loop, urls, origin, cdn = make_stack()
        client = HttpClient(urls)
        for path in ["/vod/clip", "/x/y/z/w", "/vod/clip/seg-abc.ts", "/"]:
            assert client.get(f"https://{cdn.hostname}{path}").status == 404


class TestCdnCache:
    def test_segments_cached_playlists_not(self):
        loop, urls, origin, cdn = make_stack()
        origin.add_vod(make_video("clip", 2, segment_size=100))
        client = HttpClient(urls)
        url = f"https://{cdn.hostname}/vod/clip/seg-0.ts"
        first = client.get(url)
        second = client.get(url)
        assert first.headers["x-cache"] == "miss"
        assert second.headers["x-cache"] == "hit"
        assert cdn.hits == 1 and cdn.misses == 1
        # playlists are not cached (live windows change)
        client.get(vod_playlist_url(cdn.hostname, "clip"))
        client.get(vod_playlist_url(cdn.hostname, "clip"))
        assert cdn.hits == 1

    def test_cache_hit_does_not_touch_origin(self):
        loop, urls, origin, cdn = make_stack()
        origin.add_vod(make_video("clip", 1, segment_size=100))
        client = HttpClient(urls)
        url = f"https://{cdn.hostname}/vod/clip/seg-0.ts"
        client.get(url)
        served_before = origin.requests_served
        client.get(url)
        assert origin.requests_served == served_before

    def test_billing(self):
        loop, urls, origin, cdn = make_stack()
        origin.add_vod(make_video("clip", 1, segment_size=1_000_000))
        HttpClient(urls).get(f"https://{cdn.hostname}/vod/clip/seg-0.ts")
        assert cdn.bytes_served == 1_000_000
        assert cdn.traffic_cost > 0

    def test_purge(self):
        loop, urls, origin, cdn = make_stack()
        origin.add_vod(make_video("clip", 1, segment_size=10))
        client = HttpClient(urls)
        url = f"https://{cdn.hostname}/vod/clip/seg-0.ts"
        client.get(url)
        cdn.purge()
        assert client.get(url).headers["x-cache"] == "miss"


class TestLiveChannel:
    def test_window_slides_with_time(self):
        loop, urls, origin, cdn = make_stack()
        video = make_video("live", 6, segment_duration=4.0, segment_size=50)
        origin.add_live("news", video, window=2)
        client = HttpClient(urls)
        early = parse_media_playlist(
            client.get(live_playlist_url(cdn.hostname, "news")).body.decode()
        )
        loop.run_until(20.0)
        late = parse_media_playlist(
            client.get(live_playlist_url(cdn.hostname, "news")).body.decode()
        )
        assert late.media_sequence > early.media_sequence
        assert not late.endlist

    def test_loops_forever_by_default(self):
        loop, urls, origin, cdn = make_stack()
        video = make_video("live", 3, segment_duration=4.0, segment_size=50)
        origin.add_live("news", video, window=2)
        loop.run_until(100.0)  # far beyond 3 segments of content
        client = HttpClient(urls)
        playlist = parse_media_playlist(
            client.get(live_playlist_url(cdn.hostname, "news")).body.decode()
        )
        assert playlist.entries
        index = playlist.media_sequence
        segment = client.get(f"https://{cdn.hostname}/live/news/seg-{index}.ts")
        assert segment.ok
        assert segment.body == video.segments[index % 3].data
