"""Smoke tests for the experiment drivers (scaled-down parameters).

The benchmarks run the full-scale versions; these assert the *shape*
invariants on small, fast configurations.
"""

import pytest

from repro.experiments import (
    bandwidth_fig5,
    detection_tables,
    free_riding_wild,
    im_checking,
    ip_leak_wild,
    resource_fig4,
    token_defense,
)
from repro.web.corpus import CorpusConfig

SMALL_CORPUS = CorpusConfig(noise_video_sites=8, noise_nonvideo_sites=4, noise_apps=4)


class TestDetectionTables:
    @pytest.fixture(scope="class")
    def result(self):
        return detection_tables.run(config=SMALL_CORPUS, watch_seconds=25.0)

    def test_table1_totals(self, result):
        rows = result.table1_rows()
        total = rows[-1]
        assert total[1] == "17/134"
        assert total[2] == "18/38"
        assert total[3] == "252/627"

    def test_table2_all_confirmed(self, result):
        assert all(row[3] == "confirmed" for row in result.table2_rows())

    def test_table3_all_confirmed(self, result):
        assert all(row[3] == "confirmed" for row in result.table3_rows())

    def test_table4_all_confirmed(self, result):
        assert all(row[3] == "confirmed" for row in result.table4_rows())

    def test_renders(self, result):
        text = result.render_all()
        assert "Table I" in text and "Table IV" in text and "rt.com" in text


class TestFreeRidingWild:
    @pytest.fixture(scope="class")
    def result(self):
        return free_riding_wild.run(config=SMALL_CORPUS)

    def test_paper_counts(self, result):
        assert result.extracted == 44
        assert result.valid == 40
        assert result.expired == 4

    def test_cross_domain_split(self, result):
        assert result.cross_domain_vulnerable("peer5") == (11, 36)
        assert result.cross_domain_vulnerable("streamroot") == (0, 1)
        assert result.cross_domain_vulnerable("viblast") == (0, 3)

    def test_spoofing_hits_everything(self, result):
        assert result.spoofing_vulnerable() == (40, 40)


class TestFig4:
    def test_overheads_in_paper_range(self):
        result = resource_fig4.run(segments=8)
        assert 0.08 < result.cpu_overhead < 0.25
        assert 0.05 < result.memory_overhead < 0.18
        assert result.viewers["no-peer"].uploaded_bytes == 0
        assert result.viewers["peer-a"].uploaded_bytes > 0


class TestFig5:
    def test_upload_grows_to_double_download(self):
        result = bandwidth_fig5.run(segments=8)
        assert result.upload_monotone()
        # Full-scale (12 segments, bench) reaches ~200%; the shortened
        # video here still has to show strong super-download upload.
        assert result.points[-1].upload_over_download > 1.2
        downloads = [p.download_bytes for p in result.points]
        assert max(downloads) - min(downloads) < max(downloads) * 0.5  # roughly flat


class TestTable6:
    def test_ordering_and_deltas(self):
        result = im_checking.run(duration=60.0, segment_bytes=500_000)
        base, pdn, pdn_im = result.groups
        assert base.cpu < pdn.cpu < pdn_im.cpu
        assert base.memory < pdn.memory < pdn_im.memory
        assert pdn.latency_ms is not None and pdn_im.latency_ms is not None
        assert pdn_im.latency_ms > pdn.latency_ms
        assert result.latency_delta_ms() < 200.0


class TestIpLeakWild:
    @pytest.fixture(scope="class")
    def result(self):
        return ip_leak_wild.run(days=1.0, huya_rate_per_min=6.0, rt_rate_per_min=1.0,
                                include_okru=False)

    def test_harvest_collects_many_ips(self, result):
        assert result.total_unique > 400

    def test_huya_is_chinese(self, result):
        huya = result.platforms["huya.com"]
        dist = huya.country_distribution(result.geo)
        assert dist.get("CN", 0) > 0.9

    def test_rt_top_countries(self, result):
        rt = result.platforms["rt-news-app"]
        dist = rt.country_distribution(result.geo)
        # One simulated day is a small sample; the big three must still
        # dominate, and the audience must be geographically wide.
        assert set(list(dist)[:3]) <= {"US", "GB", "CA", "AE"}
        assert dist.get("US", 0) > 0.12
        assert len(dist) > 20

    def test_bogons_present_and_mostly_private(self, result):
        split = {"private": 0, "shared_nat": 0, "reserved": 0}
        for platform in result.platforms.values():
            for key, value in platform.bogon_breakdown().items():
                split[key] += value
        assert split["private"] > split["shared_nat"] >= split["reserved"]

    def test_geo_filter_mitigation_shares(self, result):
        huya = result.platforms["huya.com"]
        rt = result.platforms["rt-news-app"]
        assert huya.same_country_share(result.geo) < 0.05  # US observer sees ~none
        assert 0.1 < rt.same_country_share(result.geo) < 0.55  # ~35% in the paper


class TestIpLeakScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return ip_leak_wild.run(scenario="flash-crowd", include_okru=False)

    def test_scenario_provenance_recorded(self, result):
        assert result.scenario_name == "flash-crowd"
        assert len(result.scenario_digest) == 64
        assert set(result.timeline_digests) == {"huya.com", "rt-news-app"}
        payload = result.to_dict()
        assert payload["scenario_digest"] == result.scenario_digest
        assert result.manifest_extra()["scenario_name"] == "flash-crowd"

    def test_scenario_audience_harvested(self, result):
        # The flash-crowd preset's population (US/BR/IN) replaces the
        # platform country mixes, and its CGNAT share must surface as
        # shared-NAT bogons in the harvest.
        huya = result.platforms["huya.com"]
        dist = huya.country_distribution(result.geo)
        assert set(dist) <= {"US", "BR", "IN"}
        assert result.total_unique > 0

    def test_classic_run_untouched_by_scenario_fields(self):
        result = ip_leak_wild.run(days=0.05, window_hours=0.25, include_okru=False)
        assert result.scenario_name == ""
        payload = result.to_dict()
        assert "scenario_name" not in payload
        assert "timeline_digests" not in payload
        assert result.manifest_extra() == {}


class TestTokenDefense:
    def test_defense_effective_and_283_bytes(self):
        result = token_defense.run()
        assert result.defense_effective
        assert result.listing1_bytes == 283


class TestPollutionPropagation:
    def test_small_swarm_infection(self):
        from repro.experiments import pollution_propagation

        result = pollution_propagation.run(seed=808, viewers=6, segments=8)
        assert result.infection_rate >= 0.5
        assert result.polluted_segments_played > 0
        assert result.attacker_direct_serves > 0


class TestDetectionQuality:
    def test_perfect_on_small_corpus(self):
        from repro.experiments import detection_quality

        result = detection_quality.run(seed=1101, config=SMALL_CORPUS)
        for row in result.rows:
            assert row.precision == 1.0
            assert row.recall == 1.0


class TestConsentAndConfig:
    def test_audit_counts(self):
        from repro.experiments import consent_and_config

        result = consent_and_config.run(config=SMALL_CORPUS)
        assert result.customers_checked == 182
        assert result.informing_viewers == 0
        assert len(result.cellular_full) == 3


class TestEcdn:
    def test_discussion_findings(self):
        from repro.experiments import ecdn_discussion

        result = ecdn_discussion.run(seed=607)
        assert result.free_riding_prevented
        assert result.segment_pollution_triggered
