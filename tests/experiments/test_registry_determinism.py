"""Every registered experiment replays to a stable result digest.

``tests/harness/test_digest_pins.py`` freezes exact digests for a few
sentinels; this backfill covers the whole registry with the weaker but
universal property — two quick runs at the same seed must agree —
so a new experiment cannot land without a deterministic result path.
"""

from __future__ import annotations

import pytest

import repro.experiments  # noqa: F401  - triggers @experiment registration
from repro.harness import registry
from repro.harness.runner import execute_spec

SEED = 2024


def _registry_names() -> list[str]:
    """All experiment names, loaded once at collection time."""
    registry.load_all()
    return sorted(registry.names())


class TestRegistryDeterminism:
    @pytest.mark.parametrize("name", _registry_names())
    def test_quick_run_digest_is_reproducible(self, name: str) -> None:
        params = registry.get(name).resolve_params(quick=True)
        first = execute_spec(name, SEED, params)
        assert first.record.ok, first.record.error
        second = execute_spec(name, SEED, params)
        assert second.record.ok, second.record.error
        assert first.record.result_digest == second.record.result_digest, (
            f"{name} produced different result digests for identical "
            f"(seed, params) runs in the same process"
        )

    @pytest.mark.parametrize("name", _registry_names())
    def test_quick_run_records_params_and_seed(self, name: str) -> None:
        params = registry.get(name).resolve_params(quick=True)
        outcome = execute_spec(name, SEED, params)
        assert outcome.record.experiment == name
        assert outcome.record.seed == SEED
        assert outcome.record.result_digest
