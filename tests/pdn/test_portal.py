"""Tests for the customer portal."""

import json

from repro.attacks.free_riding import CrossDomainAttackTest
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.portal import CustomerPortal
from repro.pdn.provider import PEER5
from repro.streaming.http import HttpClient


def usage(env, portal, key):
    response = HttpClient(env.urlspace).get(f"https://{portal.hostname}/api/usage?key={key}")
    payload = json.loads(response.body.decode()) if response.ok else {}
    return response, payload


class TestPortal:
    def test_usage_reflects_billing(self):
        env = Environment(seed=211)
        bed = build_test_bed(env, PEER5)
        portal = CustomerPortal(bed.provider).install(env.urlspace)
        account = bed.provider.billing.account(bed.customer_id)
        account.record_p2p_bytes(5_000_000)
        account.record_viewer_time(7200)
        response, payload = usage(env, portal, bed.api_key)
        assert response.ok
        assert payload["customer_id"] == bed.customer_id
        assert payload["p2p_bytes"] == 5_000_000
        assert payload["viewer_hours"] == 2.0
        assert payload["cost_usd"] > 0

    def test_invalid_key_rejected(self):
        env = Environment(seed=212)
        bed = build_test_bed(env, PEER5)
        portal = CustomerPortal(bed.provider).install(env.urlspace)
        response, _ = usage(env, portal, "not-a-key")
        assert response.status == 403

    def test_unknown_path_404(self):
        env = Environment(seed=213)
        bed = build_test_bed(env, PEER5)
        portal = CustomerPortal(bed.provider).install(env.urlspace)
        response = HttpClient(env.urlspace).get(f"https://{portal.hostname}/other")
        assert response.status == 404

    def test_attacker_watches_the_victims_meter(self):
        """Free riding end to end, observed through the portal with the
        very key the attacker scraped."""
        env = Environment(seed=214)
        bed = build_test_bed(env, PEER5)
        portal = CustomerPortal(bed.provider).install(env.urlspace)
        _, before = usage(env, portal, bed.api_key)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(CrossDomainAttackTest(bed, watch=60.0))
        assert report.verdicts[0].triggered
        _, after = usage(env, portal, bed.api_key)
        assert after["p2p_bytes"] > before["p2p_bytes"]
        assert after["sessions"] > before["sessions"]
        analyzer.teardown()
