"""Tests for the §VI Microsoft eCDN model."""

from repro.attacks.free_riding import ApiKeyProbe
from repro.detection.signatures import extract_api_keys
from repro.environment import Environment
from repro.pdn.ecdn import MSECDN, build_ecdn_test_bed, tenant_id_exposed
from repro.streaming.http import HttpClient
from repro.web.browser import Browser


class TestTenantIdNotExposed:
    def test_page_source_carries_no_credential(self):
        env = Environment(seed=601)
        bed = build_ecdn_test_bed(env)
        html = HttpClient(env.urlspace).get(f"https://{bed.site.domain}/").body.decode()
        assert not tenant_id_exposed(bed, html)
        assert extract_api_keys(html) == set()

    def test_guessed_tenant_rejected(self):
        env = Environment(seed=602)
        bed = build_ecdn_test_bed(env)
        ok, _ = ApiKeyProbe(env, bed.provider).probe("not-the-tenant-id")
        assert not ok


class TestEnterpriseViewersStillWork:
    def test_viewer_with_enterprise_config_joins(self):
        """The credential arrives via enterprise configuration, which
        issue_viewer_credential models (the page backend knows it)."""
        env = Environment(seed=603)
        bed = build_ecdn_test_bed(env, video_segments=6, segment_seconds=2.0)
        session = Browser(env, "employee").open(f"https://{bed.site.domain}/")
        assert session.pdn_loaded
        env.run(30.0)
        assert session.player.finished


class TestProfile:
    def test_profile_shape(self):
        assert MSECDN.name == "msecdn"
        assert MSECDN.billing_model.value == "none"
        assert MSECDN.slow_start_segments >= 1


class TestEcdnExperiment:
    def test_paper_findings(self):
        from repro.experiments import ecdn_discussion

        result = ecdn_discussion.run(seed=604)
        assert result.free_riding_prevented
        assert not result.direct_pollution_triggered
        assert result.segment_pollution_triggered  # the surviving gap
