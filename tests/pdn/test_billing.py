"""Tests for usage billing (the free-riding economics)."""

import pytest

from repro.pdn.billing import (
    PEER5_PRICE_PER_BYTE,
    BillingAccount,
    BillingLedger,
    BillingModel,
)


class TestAccounts:
    def test_p2p_traffic_pricing_matches_peer5(self):
        """Peer5: $500 for 50 TB."""
        account = BillingAccount("c", BillingModel.P2P_TRAFFIC)
        account.record_p2p_bytes(50 * 10**12)
        assert account.cost == pytest.approx(500.0)

    def test_viewer_hour_pricing_matches_viblast(self):
        account = BillingAccount("c", BillingModel.VIEWER_HOURS)
        account.record_viewer_time(3600 * 100)
        assert account.cost == pytest.approx(1.0)  # $0.01 x 100 hours

    def test_private_services_bill_nothing(self):
        account = BillingAccount("c", BillingModel.NONE)
        account.record_p2p_bytes(10**12)
        account.record_viewer_time(10**6)
        assert account.cost == 0.0

    def test_negative_rejected(self):
        account = BillingAccount("c", BillingModel.P2P_TRAFFIC)
        with pytest.raises(ValueError):
            account.record_p2p_bytes(-1)
        with pytest.raises(ValueError):
            account.record_viewer_time(-0.1)

    def test_price_constant(self):
        assert PEER5_PRICE_PER_BYTE == pytest.approx(500.0 / 50e12)


class TestLedger:
    def test_account_identity(self):
        ledger = BillingLedger(BillingModel.P2P_TRAFFIC)
        assert ledger.account("a") is ledger.account("a")
        assert ledger.account("a") is not ledger.account("b")

    def test_total_cost(self):
        ledger = BillingLedger(BillingModel.P2P_TRAFFIC)
        ledger.account("a").record_p2p_bytes(10**12)
        ledger.account("b").record_p2p_bytes(10**12)
        assert ledger.total_cost() == pytest.approx(20.0)
        assert len(ledger.accounts()) == 2
