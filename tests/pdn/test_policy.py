"""Tests for the client policy (resource-squatting configuration)."""

from repro.pdn.policy import CellularPolicy, ClientPolicy


class TestCellularPolicies:
    def test_leech_mode_downloads_only(self):
        policy = ClientPolicy(cellular=CellularPolicy.LEECH)
        assert policy.download_allowed("cellular")
        assert not policy.upload_allowed("cellular")

    def test_full_mode_uses_cellular_both_ways(self):
        """The com.bongo.bioscope configuration the paper flags."""
        policy = ClientPolicy(cellular=CellularPolicy.FULL)
        assert policy.download_allowed("cellular")
        assert policy.upload_allowed("cellular")

    def test_none_mode_disables_p2p_on_cellular(self):
        policy = ClientPolicy(cellular=CellularPolicy.NONE)
        assert not policy.download_allowed("cellular")
        assert not policy.upload_allowed("cellular")

    def test_wifi_unrestricted_in_all_modes(self):
        for mode in CellularPolicy:
            policy = ClientPolicy(cellular=mode)
            assert policy.upload_allowed("wifi")
            assert policy.download_allowed("wifi")


class TestDefaults:
    def test_no_consent_by_default(self):
        """The §IV-D finding: nobody asks, nobody can opt out."""
        policy = ClientPolicy()
        assert not policy.show_consent_dialog
        assert not policy.allow_user_disable

    def test_unlimited_upload_by_default(self):
        assert ClientPolicy().max_upload_bytes_per_sec is None

    def test_js_config_exposes_cellular_mode(self):
        """The unprotected config variable the paper read from Peer5 JS."""
        config = ClientPolicy(cellular=CellularPolicy.FULL).to_js_config()
        assert config["cellularMode"] == "full"
        assert config["consentDialog"] is False
