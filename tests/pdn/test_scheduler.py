"""Tests for swarm neighbor selection, including the geo-filter defense."""

from hypothesis import given, strategies as st

from repro.pdn.scheduler import GeoFilterMode, PeerRecord, SwarmScheduler
from repro.util.rand import DeterministicRandom


def peers(*specs):
    return [
        PeerRecord(peer_id=f"p{i}", ip=f"9.9.9.{i}", country=c, isp=isp)
        for i, (c, isp) in enumerate(specs)
    ]


def make(mode=GeoFilterMode.NONE, limit=8):
    return SwarmScheduler(DeterministicRandom(5), max_candidates=limit, geo_filter=mode)


class TestSelection:
    def test_never_returns_requester(self):
        swarm = peers(("US", "a"), ("US", "a"), ("US", "a"))
        scheduler = make()
        chosen = scheduler.candidates_for(swarm, swarm[0])
        assert swarm[0] not in chosen

    def test_respects_limit(self):
        swarm = peers(*[("US", "a")] * 20)
        requester = PeerRecord("req", "1.1.1.1", "US", "a")
        assert len(make(limit=5).candidates_for(swarm, requester)) == 5

    def test_returns_all_when_under_limit(self):
        swarm = peers(("US", "a"), ("US", "b"))
        requester = PeerRecord("req", "1.1.1.1", "US", "a")
        assert len(make(limit=8).candidates_for(swarm, requester)) == 2

    def test_custom_limit_overrides_default(self):
        swarm = peers(*[("US", "a")] * 10)
        requester = PeerRecord("req", "1.1.1.1", "US", "a")
        assert len(make(limit=8).candidates_for(swarm, requester, limit=2)) == 2

    @given(st.integers(min_value=0, max_value=30))
    def test_disclosure_counter(self, n):
        swarm = peers(*[("US", "a")] * n)
        requester = PeerRecord("req", "1.1.1.1", "US", "a")
        scheduler = make(limit=8)
        chosen = scheduler.candidates_for(swarm, requester)
        assert scheduler.candidates_disclosed == len(chosen) == min(n, 8)


class TestGeoFilter:
    def test_same_country_filter(self):
        swarm = peers(("US", "a"), ("CN", "b"), ("US", "c"), ("GB", "d"))
        requester = PeerRecord("req", "1.1.1.1", "US", "x")
        chosen = make(GeoFilterMode.SAME_COUNTRY).candidates_for(swarm, requester)
        assert {p.country for p in chosen} == {"US"}

    def test_same_isp_filter(self):
        swarm = peers(("US", "comcast"), ("US", "verizon"), ("CN", "comcast"))
        requester = PeerRecord("req", "1.1.1.1", "US", "comcast")
        chosen = make(GeoFilterMode.SAME_ISP).candidates_for(swarm, requester)
        assert len(chosen) == 1
        assert chosen[0].isp == "comcast" and chosen[0].country == "US"

    def test_no_filter_discloses_everyone(self):
        swarm = peers(("US", "a"), ("CN", "b"), ("RU", "c"))
        requester = PeerRecord("req", "1.1.1.1", "US", "a")
        assert len(make(GeoFilterMode.NONE).candidates_for(swarm, requester)) == 3

    def test_filter_can_isolate_peer(self):
        """A viewer in a country with no other viewers gets nobody —
        the QoS cost of the defense the paper mentions."""
        swarm = peers(("CN", "a"), ("CN", "b"))
        requester = PeerRecord("req", "1.1.1.1", "BR", "x")
        assert make(GeoFilterMode.SAME_COUNTRY).candidates_for(swarm, requester) == []
