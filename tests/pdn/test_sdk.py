"""Integration tests for the PDN client SDK (hybrid loader)."""

import pytest

from repro.environment import Environment
from repro.pdn.policy import CellularPolicy, ClientPolicy
from repro.pdn.provider import PEER5, PdnProvider
from repro.pdn.sdk import PdnClient
from repro.streaming.cdn import CdnEdge, OriginServer, vod_playlist_url
from repro.streaming.player import VideoPlayer
from repro.streaming.video import make_video


class World:
    def __init__(self, seed=13, segments=10, segment_seconds=4.0, segment_bytes=50_000):
        self.env = Environment(seed=seed)
        self.origin = OriginServer(self.env.loop)
        self.cdn = CdnEdge(self.origin)
        self.env.urlspace.register(self.origin.hostname, self.origin)
        self.env.urlspace.register(self.cdn.hostname, self.cdn)
        self.video = make_video("movie", segments, segment_seconds, segment_bytes)
        self.origin.add_vod(self.video)
        self.video_url = vod_playlist_url(self.cdn.hostname, "movie")
        self.provider = PdnProvider(self.env.loop, self.env.rand, PEER5)
        self.provider.install(self.env.urlspace)
        self.key = self.provider.signup_customer("site.com", None)

    def viewer(self, name, policy=None, connection="wifi", credential=None, start=True):
        host = self.env.add_viewer_host(name, "US")
        sdk = PdnClient(
            loop=self.env.loop,
            rand=self.env.rand,
            host=host,
            http=self.env.http_client(host),
            provider=self.provider,
            credential=credential or self.key.key,
            page_origin="https://site.com",
            video_url=self.video_url,
            rtc_config=self.env.rtc_config(),
            policy=policy,
            connection_type=connection,
            name=name,
        )
        player = None
        if start:
            assert sdk.start()
            player = VideoPlayer(self.env.loop, sdk, self.video_url, name=name)
            player.start()
        return sdk, player

    def run(self, seconds):
        self.env.run(seconds)


class TestHybridDelivery:
    def test_second_viewer_offloads_to_p2p(self):
        world = World()
        sdk_a, player_a = world.viewer("alice")
        world.run(6.0)
        sdk_b, player_b = world.viewer("bob")
        world.run(120.0)
        assert player_a.finished and player_b.finished
        assert player_b.stats.bytes_from_p2p > 0
        assert sdk_a.stats.bytes_p2p_up == player_b.stats.bytes_from_p2p
        assert player_b.stats.played_digests() == [s.digest for s in world.video.segments]

    def test_slow_start_always_cdn(self):
        world = World()
        world.viewer("alice")
        world.run(6.0)
        sdk_b, player_b = world.viewer("bob")
        world.run(120.0)
        first_sources = [p.source for p in player_b.stats.played[: sdk_b.slow_start]]
        assert all(source == "cdn" for source in first_sources)

    def test_join_failure_reported(self):
        world = World()
        sdk, _ = world.viewer("rejected", credential="bad-key", start=False)
        assert not sdk.start()
        assert sdk.join_error

    def test_cache_purges(self):
        world = World(segments=4)
        sdk, player = world.viewer("alice")
        world.run(60.0)
        assert sdk.cache_bytes() > 0
        world.run(200.0)  # past the cache TTL
        assert sdk.cache_bytes() == 0

    def test_p2p_timeout_falls_back_to_cdn(self):
        world = World()
        sdk_a, player_a = world.viewer("alice")
        world.run(6.0)
        sdk_b, player_b = world.viewer("bob")
        world.run(10.0)  # bob connected, alice has segments

        # Kill alice silently: bob's requests to her will time out.
        for link in sdk_a.neighbors.values():
            link.pc.close()
        sdk_a.stop()
        world.run(120.0)
        assert player_b.finished
        assert player_b.stats.played_digests() == [s.digest for s in world.video.segments]
        assert sdk_b.stats.p2p_fallbacks >= 0  # fallback path exercised or all-CDN

    def test_stats_reported_for_billing(self):
        world = World()
        world.viewer("alice")
        world.run(6.0)
        world.viewer("bob")
        world.run(120.0)
        assert world.provider.billing.account("site.com").p2p_bytes > 0


class TestUploadPolicies:
    def test_cellular_leech_never_uploads(self):
        world = World()
        sdk_a, _ = world.viewer(
            "cell", policy=ClientPolicy(cellular=CellularPolicy.LEECH), connection="cellular"
        )
        world.run(6.0)
        sdk_b, player_b = world.viewer("wifi-bob")
        world.run(120.0)
        assert sdk_a.stats.bytes_p2p_up == 0
        assert sdk_a.stats.p2p_requests_failed >= 0
        assert player_b.finished  # bob still fine via CDN fallback

    def test_cellular_full_uploads(self):
        world = World()
        sdk_a, _ = world.viewer(
            "cell-full", policy=ClientPolicy(cellular=CellularPolicy.FULL), connection="cellular"
        )
        world.run(6.0)
        world.viewer("bob")
        world.run(120.0)
        assert sdk_a.stats.bytes_p2p_up > 0

    def test_upload_cap_limits_serving(self):
        world = World(segment_bytes=100_000)
        capped = ClientPolicy(max_upload_bytes_per_sec=50_000)  # below one segment
        sdk_a, _ = world.viewer("capped", policy=capped)
        world.run(6.0)
        sdk_b, player_b = world.viewer("bob")
        world.run(160.0)
        assert sdk_a.stats.bytes_p2p_up <= 100_000  # at most one uncapped miss-window
        assert player_b.finished


class TestTopology:
    def test_mesh_respects_max_neighbors(self):
        world = World(segments=4)
        policy = ClientPolicy(max_neighbors=2)
        sdks = []
        for i in range(5):
            sdk, _ = world.viewer(f"peer{i}", policy=policy)
            world.run(2.0)
            sdks.append(sdk)
        world.run(30.0)
        for sdk in sdks:
            active = [l for l in sdk.neighbors.values() if l.connected]
            # initiated links obey the cap; inbound offers may add a few
            assert len(active) <= 4

    def test_harvested_ips_includes_candidates(self):
        world = World()
        sdk_a, _ = world.viewer("alice")
        world.run(6.0)
        sdk_b, _ = world.viewer("bob")
        world.run(30.0)
        harvested_by_b = {ip for _, ip in sdk_b.harvested_ips()}
        assert sdk_a.host.public_ip in harvested_by_b
