"""Tests for PDN authentication policies (§IV-B root cause)."""

import pytest

from repro.pdn.auth import AuthPolicyKind, Authenticator, _registrable_domain
from repro.util.rand import DeterministicRandom


def make(policy):
    return Authenticator(policy, DeterministicRandom(1))


class TestDomainNormalization:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("https://www.example.com", "example.com"),
            ("http://example.com/page", "example.com"),
            ("https://example.com:8443/x", "example.com"),
            ("app://com.example.app", "com.example.app"),
            ("EXAMPLE.COM", "example.com"),
        ],
    )
    def test_normalizes(self, raw, expected):
        assert _registrable_domain(raw) == expected


class TestApiKeyPolicy:
    def test_key_only_accepts_any_origin(self):
        auth = make(AuthPolicyKind.API_KEY_ONLY)
        key = auth.issue_key("victim.com")
        assert auth.authenticate(key.key, origin="https://attacker.com").accepted

    def test_unknown_key_rejected(self):
        auth = make(AuthPolicyKind.API_KEY_ONLY)
        decision = auth.authenticate("no-such-key", origin="https://x.com")
        assert not decision.accepted
        assert "unknown" in decision.reason

    def test_revoked_key_rejected(self):
        auth = make(AuthPolicyKind.API_KEY_ONLY)
        key = auth.issue_key("victim.com")
        auth.revoke_key(key.key)
        decision = auth.authenticate(key.key, origin="https://victim.com")
        assert not decision.accepted
        assert "expired" in decision.reason

    def test_allowlist_blocks_cross_domain(self):
        auth = make(AuthPolicyKind.ALLOWLIST_OPTIONAL)
        key = auth.issue_key("victim.com", allowed_domains={"victim.com"})
        assert not auth.authenticate(key.key, origin="https://attacker.com").accepted
        assert auth.authenticate(key.key, origin="https://victim.com").accepted

    def test_allowlist_trusts_spoofed_origin(self):
        """The fundamental flaw: the Origin header is client-supplied."""
        auth = make(AuthPolicyKind.ALLOWLIST_OPTIONAL)
        key = auth.issue_key("victim.com", allowed_domains={"victim.com"})
        # attacker's proxy rewrote the header
        assert auth.authenticate(key.key, origin="https://victim.com").accepted

    def test_allowlist_optional_default_open(self):
        """Peer5/Streamroot default: no allowlist unless configured."""
        auth = make(AuthPolicyKind.ALLOWLIST_OPTIONAL)
        key = auth.issue_key("victim.com")
        assert not key.has_allowlist
        assert auth.authenticate(key.key, origin="https://attacker.com").accepted

    def test_allowlist_required_forces_one(self):
        """Viblast: a key cannot exist without an allowlist."""
        auth = make(AuthPolicyKind.ALLOWLIST_REQUIRED)
        key = auth.issue_key("victim.com")
        assert key.has_allowlist
        assert not auth.authenticate(key.key, origin="https://attacker.com").accepted

    def test_configure_allowlist_later(self):
        auth = make(AuthPolicyKind.ALLOWLIST_OPTIONAL)
        key = auth.issue_key("victim.com")
        auth.configure_allowlist(key.key, {"victim.com"})
        assert not auth.authenticate(key.key, origin="https://attacker.com").accepted

    def test_www_prefix_equivalent(self):
        auth = make(AuthPolicyKind.ALLOWLIST_OPTIONAL)
        key = auth.issue_key("victim.com", allowed_domains={"www.victim.com"})
        assert auth.authenticate(key.key, origin="https://victim.com").accepted


class TestSessionTokens:
    def test_video_bound_token(self):
        auth = make(AuthPolicyKind.SESSION_TOKEN)
        token = auth.issue_session_token("bilibili.com", "https://cdn/v1.m3u8")
        assert auth.authenticate(token, video_url="https://cdn/v1.m3u8").accepted
        assert not auth.authenticate(token, video_url="https://cdn/other.m3u8").accepted

    def test_unbound_token_accepts_any_video(self):
        """Tencent Video's weakness: token not bound to the source URL."""
        auth = make(AuthPolicyKind.SESSION_TOKEN)
        token = auth.issue_session_token("v.qq.com", video_url=None)
        assert auth.authenticate(token, video_url="https://attacker/own.m3u8").accepted

    def test_unknown_token_rejected(self):
        auth = make(AuthPolicyKind.SESSION_TOKEN)
        assert not auth.authenticate("bogus", video_url="x").accepted

    def test_rejection_counters(self):
        auth = make(AuthPolicyKind.SESSION_TOKEN)
        auth.authenticate("bogus", video_url="x")
        token = auth.issue_session_token("c", None)
        auth.authenticate(token, video_url="x")
        assert auth.attempts == 2
        assert auth.rejections == 1
