"""Tests for the signaling server's HTTP interface and swarm logic."""

import json

import pytest

from repro.environment import Environment
from repro.pdn.provider import PEER5, PdnProvider, private_profile
from repro.streaming.http import HttpClient


@pytest.fixture
def world():
    env = Environment(seed=21)
    provider = PdnProvider(env.loop, env.rand, PEER5)
    provider.install(env.urlspace)
    key = provider.signup_customer("site.com", None)
    return env, provider, key


def join(env, provider, credential, video="https://cdn/x.m3u8", ip="9.1.1.1", origin="https://site.com"):
    http = HttpClient(env.urlspace, client_ip=ip)
    response = http.post(
        f"https://{provider.profile.signaling_host}/v2/join",
        json.dumps({"credential": credential, "video_url": video}).encode(),
        headers={"Origin": origin},
    )
    body = json.loads(response.body.decode())
    return http, response, body


def post(env, provider, http, path, payload):
    response = http.post(
        f"https://{provider.profile.signaling_host}{path}", json.dumps(payload).encode()
    )
    return response, json.loads(response.body.decode() or "{}")


class TestJoin:
    def test_valid_join(self, world):
        env, provider, key = world
        _, response, body = join(env, provider, key.key)
        assert response.ok
        assert body["peer_id"].startswith("peer-")
        assert provider.signaling.joins_accepted == 1

    def test_invalid_key_403(self, world):
        env, provider, key = world
        _, response, body = join(env, provider, "bogus")
        assert response.status == 403
        assert provider.signaling.joins_rejected == 1

    def test_session_recorded_with_client_ip(self, world):
        env, provider, key = world
        http, _, body = join(env, provider, key.key, ip="7.7.7.7")
        session = provider.signaling._sessions[body["session_id"]]
        assert session.record.ip == "7.7.7.7"

    def test_bad_json_400(self, world):
        env, provider, key = world
        http = HttpClient(env.urlspace)
        response = http.post(
            f"https://{provider.profile.signaling_host}/v2/join", b"{not json"
        )
        assert response.status == 400

    def test_unknown_endpoint_404(self, world):
        env, provider, key = world
        http, _, body = join(env, provider, key.key)
        response, _ = post(env, provider, http, "/v2/nothing", {"session_id": body["session_id"]})
        assert response.status == 404

    def test_unknown_session_403(self, world):
        env, provider, key = world
        http = HttpClient(env.urlspace)
        response, _ = post(env, provider, http, "/v2/candidates", {"session_id": "nope"})
        assert response.status == 403


class TestSwarms:
    def test_same_video_same_swarm(self, world):
        env, provider, key = world
        join(env, provider, key.key, video="https://cdn/a.m3u8")
        join(env, provider, key.key, video="https://cdn/a.m3u8", ip="9.1.1.2")
        join(env, provider, key.key, video="https://cdn/b.m3u8", ip="9.1.1.3")
        swarms = provider.signaling.swarm_ids()
        assert len(swarms) == 2
        assert provider.signaling.swarm_size("site.com|https://cdn/a.m3u8") == 2

    def test_candidates_exclude_self(self, world):
        env, provider, key = world
        http_a, _, body_a = join(env, provider, key.key, ip="9.1.1.1")
        join(env, provider, key.key, ip="9.1.1.2")
        _, payload = post(env, provider, http_a, "/v2/candidates", {"session_id": body_a["session_id"]})
        ips = [p["ip"] for p in payload["peers"]]
        assert ips == ["9.1.1.2"]

    def test_candidate_disclosure_logged(self, world):
        env, provider, key = world
        http_a, _, body_a = join(env, provider, key.key, ip="9.1.1.1")
        join(env, provider, key.key, ip="9.1.1.2")
        post(env, provider, http_a, "/v2/candidates", {"session_id": body_a["session_id"]})
        assert len(provider.signaling.disclosures) == 1
        assert provider.signaling.disclosures[0].ip == "9.1.1.2"

    def test_relay_reaches_target(self, world):
        env, provider, key = world
        http_a, _, body_a = join(env, provider, key.key, ip="9.1.1.1")
        http_b, _, body_b = join(env, provider, key.key, ip="9.1.1.2")
        inbox = []
        provider.signaling.attach(body_b["session_id"], inbox.append)
        response, payload = post(
            env, provider, http_a, "/v2/relay",
            {"session_id": body_a["session_id"], "to": body_b["peer_id"],
             "kind": "offer", "payload": {"sdp": 1}},
        )
        assert payload["ok"]
        assert inbox == [{"type": "offer", "from": body_a["peer_id"], "payload": {"sdp": 1}}]

    def test_relay_to_missing_peer_fails_soft(self, world):
        env, provider, key = world
        http_a, _, body_a = join(env, provider, key.key)
        _, payload = post(
            env, provider, http_a, "/v2/relay",
            {"session_id": body_a["session_id"], "to": "peer-999", "kind": "offer", "payload": {}},
        )
        assert payload["ok"] is False

    def test_leave_removes_from_swarm(self, world):
        env, provider, key = world
        http_a, _, body_a = join(env, provider, key.key, video="https://cdn/a.m3u8")
        post(env, provider, http_a, "/v2/leave", {"session_id": body_a["session_id"]})
        assert provider.signaling.swarm_size("site.com|https://cdn/a.m3u8") == 0


class TestBillingIntegration:
    def test_stats_reports_bill_p2p_bytes(self, world):
        env, provider, key = world
        http, _, body = join(env, provider, key.key)
        post(env, provider, http, "/v2/stats", {"session_id": body["session_id"], "p2p_up": 5000, "p2p_down": 100})
        assert provider.billing.account("site.com").p2p_bytes == 5000

    def test_viewer_time_billed_on_leave(self, world):
        env, provider, key = world
        http, _, body = join(env, provider, key.key)
        for _ in range(6):  # keepalives, as the SDK's stats timer sends
            env.run(20.0)
            post(env, provider, http, "/v2/stats",
                 {"session_id": body["session_id"], "p2p_up": 0, "p2p_down": 0})
        post(env, provider, http, "/v2/leave", {"session_id": body["session_id"]})
        assert provider.billing.account("site.com").viewer_seconds == pytest.approx(120.0)

    def test_settle_all_flushes_open_sessions(self, world):
        env, provider, key = world
        join(env, provider, key.key)
        env.run(60.0)
        provider.signaling.settle_all()
        assert provider.billing.account("site.com").viewer_seconds == pytest.approx(60.0)


class TestBlacklist:
    def test_banned_peer_rejected_everywhere(self, world):
        env, provider, key = world
        http, _, body = join(env, provider, key.key, ip="9.1.1.1")
        peer_id = body["peer_id"]
        provider.signaling.ban_peer(peer_id)
        response, _ = post(env, provider, http, "/v2/candidates", {"session_id": body["session_id"]})
        assert response.status == 403

    def test_banned_peer_not_disclosed(self, world):
        env, provider, key = world
        join(env, provider, key.key, ip="9.1.1.1")
        http_b, _, body_b = join(env, provider, key.key, ip="9.1.1.2")
        provider.signaling.ban_peer("peer-1")
        _, payload = post(env, provider, http_b, "/v2/candidates", {"session_id": body_b["session_id"]})
        assert payload["peers"] == []


class TestGeoResolver:
    def test_geo_resolver_attributes_country(self, world):
        env, provider, key = world
        provider.signaling.geo_resolver = env.geo.resolver()
        cn_ip = env.geo.random_ip(env.rand.fork("x"), "CN")
        http, _, body = join(env, provider, key.key, ip=cn_ip)
        session = provider.signaling._sessions[body["session_id"]]
        assert session.record.country == "CN"


class TestPrivateProviderJoin:
    def test_session_token_join(self):
        env = Environment(seed=22)
        provider = PdnProvider(env.loop, env.rand, private_profile("p.com", "signal.p.com"))
        provider.install(env.urlspace)
        provider.signup_customer("p.com", {"p.com"})
        token = provider.issue_session_token("p.com", "https://cdn/v.m3u8")
        _, response, _ = join(env, provider, token, video="https://cdn/v.m3u8")
        assert response.ok
        _, response2, _ = join(env, provider, token, video="https://cdn/OTHER.m3u8")
        assert response2.status == 403


class TestSessionReaper:
    def test_silent_peer_expired_and_undisclosed(self, world):
        env, provider, key = world
        http_a, _, body_a = join(env, provider, key.key, ip="9.1.1.1")
        http_b, _, body_b = join(env, provider, key.key, ip="9.1.1.2")
        # peer B goes silent (crashed tab); peer A keeps pinging
        for _ in range(10):
            env.run(15.0)
            post(env, provider, http_a, "/v2/stats",
                 {"session_id": body_a["session_id"], "p2p_up": 0, "p2p_down": 0})
        assert provider.signaling.sessions_reaped >= 1
        _, payload = post(env, provider, http_a, "/v2/candidates",
                          {"session_id": body_a["session_id"]})
        assert all(p["ip"] != "9.1.1.2" for p in payload["peers"])

    def test_active_peer_not_reaped(self, world):
        env, provider, key = world
        http_a, _, body_a = join(env, provider, key.key, ip="9.1.1.1")
        for _ in range(10):
            env.run(15.0)
            post(env, provider, http_a, "/v2/stats",
                 {"session_id": body_a["session_id"], "p2p_up": 0, "p2p_down": 0})
        response, _ = post(env, provider, http_a, "/v2/candidates",
                           {"session_id": body_a["session_id"]})
        assert response.ok

    def test_reaped_session_settles_billing(self, world):
        env, provider, key = world
        join(env, provider, key.key, ip="9.1.1.3")
        env.run(200.0)  # silent: gets reaped
        account = provider.billing.account("site.com")
        assert account.viewer_seconds > 0
