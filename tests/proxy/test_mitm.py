"""Tests for the intercepting proxy and fake CDN."""

from repro.proxy.fake_cdn import FakeCdn, pollute_after_slow_start, pollute_all, pollute_bytes
from repro.proxy.mitm import MitmProxy
from repro.streaming.cdn import CdnEdge, OriginServer
from repro.streaming.http import HttpClient, HttpRequest, HttpResponse, UrlSpace
from repro.streaming.video import make_video
from repro.net.clock import EventLoop


class RecordingServer:
    def __init__(self):
        self.requests = []

    def handle_request(self, request):
        self.requests.append(request)
        return HttpResponse(200, b"ok")


class TestMitmProxy:
    def test_spoof_domain_rewrites_headers(self):
        urls = UrlSpace()
        server = RecordingServer()
        urls.register("signal.com", server)
        proxy = MitmProxy()
        proxy.spoof_domain("victim.com")
        client = HttpClient(urls, proxy=proxy)
        client.get("https://signal.com/join", headers={"Origin": "https://attacker.com"})
        observed = server.requests[0]
        assert observed.header("Origin") == "https://victim.com"
        assert observed.header("Referer") == "https://victim.com/"

    def test_redirect_host(self):
        urls = UrlSpace()
        real = RecordingServer()
        fake = RecordingServer()
        urls.register("cdn.real.com", real)
        urls.register("cdn.fake.com", fake)
        proxy = MitmProxy()
        proxy.redirect_host("cdn.real.com", "cdn.fake.com")
        HttpClient(urls, proxy=proxy).get("https://cdn.real.com/seg-1.ts")
        assert not real.requests
        assert fake.requests and fake.requests[0].path == "/seg-1.ts"

    def test_log_records_exchanges(self):
        urls = UrlSpace()
        urls.register("a.com", RecordingServer())
        proxy = MitmProxy()
        HttpClient(urls, proxy=proxy).get("https://a.com/x")
        assert len(proxy.log) == 1
        assert proxy.log[0].url == "https://a.com/x"
        assert proxy.log[0].status == 200

    def test_response_hook(self):
        urls = UrlSpace()
        urls.register("a.com", RecordingServer())
        proxy = MitmProxy()
        proxy.add_response_hook(lambda req, resp: HttpResponse(500, b"injected"))
        response = HttpClient(urls, proxy=proxy).get("https://a.com/")
        assert response.status == 500


class TestFakeCdn:
    def make_world(self):
        urls = UrlSpace()
        origin = OriginServer(EventLoop())
        cdn = CdnEdge(origin)
        urls.register(origin.hostname, origin)
        urls.register(cdn.hostname, cdn)
        video = make_video("clip", 5, segment_size=300)
        origin.add_vod(video)
        return urls, cdn, video

    def test_pollutes_selected_segments_only(self):
        urls, cdn, video = self.make_world()
        fake = FakeCdn(urls, cdn.hostname, pollute_after_slow_start(2))
        fake.install()
        client = HttpClient(urls)
        clean = client.get(f"https://{fake.hostname}/vod/clip/seg-1.ts")
        dirty = client.get(f"https://{fake.hostname}/vod/clip/seg-3.ts")
        assert clean.body == video.segments[1].data
        assert dirty.body != video.segments[3].data
        assert len(dirty.body) == len(video.segments[3].data)
        assert fake.segments_polluted == 1 and fake.segments_passed_through == 1

    def test_playlist_passes_through(self):
        urls, cdn, video = self.make_world()
        fake = FakeCdn(urls, cdn.hostname, pollute_all)
        fake.install()
        response = HttpClient(urls).get(f"https://{fake.hostname}/vod/clip/playlist.m3u8")
        assert response.ok and b"#EXTM3U" in response.body

    def test_upstream_errors_propagate(self):
        urls, cdn, video = self.make_world()
        fake = FakeCdn(urls, cdn.hostname, pollute_all)
        fake.install()
        assert HttpClient(urls).get(f"https://{fake.hostname}/vod/ghost/seg-0.ts").status == 404

    def test_pollute_bytes_preserves_length(self):
        for n in (0, 1, 7, 1000):
            data = bytes(range(256))[:n] if n <= 256 else b"x" * n
            assert len(pollute_bytes(data)) == len(data)
