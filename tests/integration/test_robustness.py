"""Failure injection and robustness across the whole stack."""

import pytest

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.provider import PEER5
from repro.web.browser import Browser


class TestPacketLoss:
    def test_full_pdn_flow_survives_loss(self):
        """5% datagram loss: handshakes retransmit, chunks retransmit,
        playback completes with authentic content."""
        env = Environment(seed=141, loss_rate=0.05)
        bed = build_test_bed(env, PEER5, video_segments=8, segment_seconds=3.0)
        viewer_a = Browser(env, "a")
        session_a = viewer_a.open(f"https://{bed.site.domain}/")
        env.run(8.0)
        viewer_b = Browser(env, "b")
        session_b = viewer_b.open(f"https://{bed.site.domain}/")
        env.run(90.0)
        assert session_a.player.finished and session_b.player.finished
        authentic = [s.digest for s in bed.video.segments]
        assert session_b.player.stats.played_digests() == authentic

    def test_heavy_loss_degrades_to_cdn_not_failure(self):
        """At 30% loss P2P may be useless, but the hybrid design must
        still deliver via CDN fallback (HTTP is reliable transport)."""
        env = Environment(seed=142, loss_rate=0.30)
        bed = build_test_bed(env, PEER5, video_segments=6, segment_seconds=3.0)
        viewer_a = Browser(env, "a")
        viewer_a.open(f"https://{bed.site.domain}/")
        env.run(6.0)
        viewer_b = Browser(env, "b")
        session_b = viewer_b.open(f"https://{bed.site.domain}/")
        env.run(120.0)
        assert session_b.player.finished
        assert session_b.player.stats.played_digests() == [
            s.digest for s in bed.video.segments
        ]


class TestPeerChurn:
    def test_seeder_departure_mid_playback(self):
        """The seeding peer vanishes mid-stream; the leecher's pending
        P2P requests time out and CDN fallback finishes the video."""
        env = Environment(seed=143)
        bed = build_test_bed(env, PEER5, video_segments=10, segment_seconds=3.0)
        seeder = Browser(env, "seeder")
        seeder_session = seeder.open(f"https://{bed.site.domain}/")
        env.run(8.0)
        leecher = Browser(env, "leecher")
        leecher_session = leecher.open(f"https://{bed.site.domain}/")
        env.run(8.0)
        seeder_session.close()  # gone, mid-playback
        env.run(90.0)
        assert leecher_session.player.finished
        assert leecher_session.player.stats.played_digests() == [
            s.digest for s in bed.video.segments
        ]

    def test_many_short_sessions_no_swarm_corruption(self):
        env = Environment(seed=144)
        bed = build_test_bed(env, PEER5, video_segments=10, segment_seconds=3.0)
        anchor = Browser(env, "anchor")
        anchor_session = anchor.open(f"https://{bed.site.domain}/")
        for i in range(4):
            transient = Browser(env, f"transient-{i}")
            session = transient.open(f"https://{bed.site.domain}/")
            env.run(4.0)
            session.close()
        env.run(40.0)
        assert anchor_session.player.finished
        assert anchor_session.player.stats.played_digests() == [
            s.digest for s in bed.video.segments
        ]


class TestLiveStreamingOverPdn:
    def test_live_swarm_shares_segments(self):
        """Live channels: the window slides, late joiners enter at the
        edge, and P2P sharing still happens between live viewers."""
        env = Environment(seed=145)
        bed = build_test_bed(
            env, PEER5, live=True, video_segments=10, segment_seconds=4.0,
            segment_bytes=100_000,
        )
        viewer_a = Browser(env, "a")
        session_a = viewer_a.open(f"https://{bed.site.domain}/", max_segments=8)
        env.run(10.0)
        viewer_b = Browser(env, "b")
        session_b = viewer_b.open(f"https://{bed.site.domain}/", max_segments=6)
        env.run(120.0)
        assert session_a.player.live and session_b.player.live
        assert session_a.player.finished and session_b.player.finished
        total_p2p = (
            session_a.player.stats.bytes_from_p2p + session_b.player.stats.bytes_from_p2p
        )
        assert total_p2p > 0  # the swarm shared at least some live segments


class TestAnalyzerIsolation:
    def test_two_beds_do_not_cross_pollinate(self):
        """Swarms are keyed by (customer, video): viewers of different
        test beds at the same provider never exchange segments."""
        env = Environment(seed=146)
        bed_a = build_test_bed(env, PEER5, domain="a.test.com", video_segments=6)
        bed_b = build_test_bed(
            env, PEER5, domain="b.test.com", video_segments=6, provider=bed_a.provider
        )
        analyzer = PdnAnalyzer(env)
        peer_a = analyzer.create_peer(name="pa")
        peer_a.watch_test_stream(bed_a)
        peer_b = analyzer.create_peer(name="pb")
        peer_b.watch_test_stream(bed_b)
        analyzer.run(50.0)
        assert peer_a.session.sdk.stats.bytes_p2p_down == 0
        assert peer_b.session.sdk.stats.bytes_p2p_down == 0
        assert peer_a.session.player.finished and peer_b.session.player.finished
        analyzer.teardown()


class TestImFloodEconomics:
    def test_blacklist_bounds_server_cdn_cost(self):
        """§V-B 'the peer blacklist': an attacker spamming fake IMs
        forces at most one CDN resolution per segment before being
        banned; further floods from that peer are free."""
        from repro.defenses.integrity import IntegrityCoordinator, compute_im, content_id

        env = Environment(seed=147)
        bed = build_test_bed(env, PEER5, video_segments=10)
        coord = IntegrityCoordinator(
            env.loop, env.rand.fork("im"), bed.provider, env.urlspace, quorum=2
        ).install()
        # An honest reporter covers every segment...
        for segment in bed.video.segments:
            coord.receive_report(
                "honest", bed.video_url, segment.index,
                compute_im(segment.data, content_id(bed.video_url, ''), segment.index),
            )
        # ...and the attacker floods 100 fake reports across them.
        for round_number in range(10):
            for segment in bed.video.segments:
                coord.receive_report(
                    "flooder", bed.video_url, segment.index, f"{round_number:064d}"
                )
        assert coord.cdn_fetches <= len(bed.video.segments)  # bounded, not 100
        assert "flooder" in coord.peers_blacklisted
        assert "flooder" in bed.provider.signaling.blacklist
