"""Failure injection: the signaling server restarts mid-session."""

from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.provider import PEER5
from repro.web.browser import Browser


class TestSignalingRestart:
    def test_viewers_rejoin_and_swarm_reforms(self):
        env = Environment(seed=161)
        bed = build_test_bed(env, PEER5, video_segments=14, segment_seconds=3.0)
        viewer_a = Browser(env, "a")
        session_a = viewer_a.open(f"https://{bed.site.domain}/")
        env.run(8.0)

        bed.provider.signaling.restart()  # tracker crash: all sessions gone
        env.run(25.0)  # next stats/topology ticks hit "unknown session"

        assert session_a.sdk.rejoins >= 1
        # A newcomer after the restart still finds the rejoined peer.
        viewer_b = Browser(env, "b")
        session_b = viewer_b.open(f"https://{bed.site.domain}/")
        env.run(60.0)
        assert session_a.player.finished and session_b.player.finished
        assert session_b.player.stats.bytes_from_p2p > 0

    def test_established_links_survive_restart(self):
        """The data plane is peer-to-peer: a tracker restart must not
        break transfers already in flight."""
        env = Environment(seed=162)
        bed = build_test_bed(env, PEER5, video_segments=12, segment_seconds=3.0)
        viewer_a = Browser(env, "a")
        viewer_a.open(f"https://{bed.site.domain}/")
        env.run(8.0)
        viewer_b = Browser(env, "b")
        session_b = viewer_b.open(f"https://{bed.site.domain}/")
        env.run(8.0)  # link established, transfers running
        p2p_before = session_b.player.stats.bytes_from_p2p

        bed.provider.signaling.restart()
        env.run(60.0)
        assert session_b.player.finished
        assert session_b.player.stats.bytes_from_p2p > p2p_before
        assert session_b.player.stats.played_digests() == [
            s.digest for s in bed.video.segments
        ]

    def test_restart_preserves_billing(self):
        env = Environment(seed=163)
        bed = build_test_bed(env, PEER5, video_segments=8, segment_seconds=3.0)
        viewer_a = Browser(env, "a")
        viewer_a.open(f"https://{bed.site.domain}/")
        env.run(6.0)
        viewer_b = Browser(env, "b")
        viewer_b.open(f"https://{bed.site.domain}/")
        env.run(20.0)
        account = bed.provider.billing.account(bed.customer_id)
        billed_before = account.p2p_bytes
        bed.provider.signaling.restart()
        env.run(30.0)
        assert account.p2p_bytes >= billed_before  # durable, not in-memory
