"""The determinism promise: same seed, same world, same numbers."""

from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.provider import PEER5
from repro.web.browser import Browser


def run_scenario(seed):
    env = Environment(seed=seed)
    bed = build_test_bed(env, PEER5, video_segments=8, segment_seconds=3.0)
    alice = Browser(env, "alice")
    session_a = alice.open(f"https://{bed.site.domain}/")
    env.run(8.0)
    bob = Browser(env, "bob")
    session_b = bob.open(f"https://{bed.site.domain}/")
    env.run(60.0)
    account = bed.provider.billing.account(bed.customer_id)
    return {
        "a_digests": session_a.player.stats.played_digests(),
        "b_digests": session_b.player.stats.played_digests(),
        "b_p2p": session_b.player.stats.bytes_from_p2p,
        "billed": account.p2p_bytes,
        "alice_ip": alice.host.public_ip,
        "api_key": bed.api_key,
        "events": env.loop.events_fired,
    }


class TestDeterminism:
    def test_identical_runs_for_identical_seeds(self):
        assert run_scenario(4242) == run_scenario(4242)

    def test_different_seeds_differ(self):
        a = run_scenario(1)
        b = run_scenario(2)
        assert a["api_key"] != b["api_key"]
        assert a["alice_ip"] != b["alice_ip"]
