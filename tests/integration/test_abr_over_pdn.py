"""Multi-bitrate streams over the PDN: swarms share per rendition."""

from repro.environment import Environment
from repro.pdn.policy import ClientPolicy
from repro.pdn.provider import PEER5, PdnProvider
from repro.streaming.cdn import CdnEdge, OriginServer
from repro.streaming.video import make_multi_bitrate_video
from repro.web.browser import Browser
from repro.web.page import PdnEmbed, WebPage, Website

BITRATES = {"360p": 80, "720p": 250, "1080p": 500}


def make_world(seed=191):
    env = Environment(seed=seed)
    origin = OriginServer(env.loop)
    cdn = CdnEdge(origin)
    env.urlspace.register(origin.hostname, origin)
    env.urlspace.register(cdn.hostname, cdn)
    renditions = make_multi_bitrate_video("movie", 12, 3.0, BITRATES)
    origin.add_vod_renditions("movie", renditions)
    master_url = f"https://{cdn.hostname}/vod/movie/master.m3u8"
    provider = PdnProvider(env.loop, env.rand, PEER5)
    provider.install(env.urlspace)
    key = provider.signup_customer("abr.example.com", None, ClientPolicy())
    site = Website("abr.example.com", category="video")
    site.add_page(WebPage("/", has_video=True, embed=PdnEmbed(provider, key.key, master_url)))
    env.urlspace.register(site.domain, site)
    return env, renditions, site


class TestAbrOverPdn:
    def test_viewers_share_within_renditions(self):
        env, renditions, site = make_world()
        viewer_a = Browser(env, "a")
        session_a = viewer_a.open(f"https://{site.domain}/")
        env.run(8.0)
        viewer_b = Browser(env, "b")
        session_b = viewer_b.open(f"https://{site.domain}/")
        env.run(90.0)
        assert session_a.player.finished and session_b.player.finished
        # B leeched something from A (both climb the same ladder)
        assert session_b.player.stats.bytes_from_p2p > 0
        # every played digest is authentic content of SOME rendition
        all_digests = {
            s.digest for video in renditions.values() for s in video.segments
        }
        for session in (session_a, session_b):
            assert set(session.player.stats.played_digests()) <= all_digests
        # ABR actually moved both players up the ladder
        assert len(session_a.player.rendition_switches) >= 2

    def test_no_cross_rendition_content(self):
        """A segment served P2P must match the rendition the requester
        asked for — (rendition, index) keys prevent cross-serving."""
        env, renditions, site = make_world(seed=192)
        viewer_a = Browser(env, "a")
        session_a = viewer_a.open(f"https://{site.domain}/")
        env.run(8.0)
        viewer_b = Browser(env, "b")
        session_b = viewer_b.open(f"https://{site.domain}/")
        env.run(90.0)
        # Every played segment must be SOME rendition's content *at that
        # exact index* — never another index's bytes (no cross-serving,
        # no replay through the rendition seam).
        for session in (session_a, session_b):
            for played in session.player.stats.played:
                at_index = {
                    video.segments[played.index].digest for video in renditions.values()
                }
                assert played.digest in at_index
