"""Tests for the reliable data-channel layer."""

from hypothesis import given, settings, strategies as st

from repro.net.clock import EventLoop
from repro.webrtc.datachannel import DataChannelLayer


class LossyWire:
    """Connects two DataChannelLayers with scriptable loss/duplication."""

    def __init__(self, loop: EventLoop):
        self.loop = loop
        self.a = None
        self.b = None
        self.drop_first_n = 0
        self.duplicate = False
        self.sent = 0

    def a_transmit(self, record: bytes) -> None:
        self._forward(record, self.b)

    def b_transmit(self, record: bytes) -> None:
        self._forward(record, self.a)

    def _forward(self, record: bytes, dest) -> None:
        self.sent += 1
        if self.drop_first_n > 0:
            self.drop_first_n -= 1
            return
        self.loop.schedule(0.01, dest.handle_record, record)
        if self.duplicate:
            self.loop.schedule(0.02, dest.handle_record, record)


def make_pair(loop, chunk_size=100):
    wire = LossyWire(loop)
    got_a, got_b = [], []
    a = DataChannelLayer(loop, wire.a_transmit, lambda ch, p: got_a.append((ch, p)), chunk_size)
    b = DataChannelLayer(loop, wire.b_transmit, lambda ch, p: got_b.append((ch, p)), chunk_size)
    wire.a, wire.b = a, b
    return a, b, wire, got_a, got_b


class TestDelivery:
    def test_small_message(self):
        loop = EventLoop()
        a, b, _, _, got_b = make_pair(loop)
        a.send(1, b"hello")
        loop.run(1.0)
        assert got_b == [(1, b"hello")]

    def test_multi_chunk_reassembly(self):
        loop = EventLoop()
        a, b, _, _, got_b = make_pair(loop, chunk_size=10)
        payload = bytes(range(256)) * 4
        a.send(2, payload)
        loop.run(2.0)
        assert got_b == [(2, payload)]

    def test_empty_message(self):
        loop = EventLoop()
        a, b, _, _, got_b = make_pair(loop)
        a.send(3, b"")
        loop.run(1.0)
        assert got_b == [(3, b"")]

    def test_channel_ids_preserved(self):
        loop = EventLoop()
        a, b, _, _, got_b = make_pair(loop)
        a.send(7, b"seven")
        a.send(9, b"nine")
        loop.run(1.0)
        assert sorted(got_b) == [(7, b"seven"), (9, b"nine")]

    def test_bidirectional(self):
        loop = EventLoop()
        a, b, _, got_a, got_b = make_pair(loop)
        a.send(1, b"ping")
        b.send(1, b"pong")
        loop.run(1.0)
        assert got_b == [(1, b"ping")] and got_a == [(1, b"pong")]


class TestReliability:
    def test_retransmission_recovers_lost_chunks(self):
        loop = EventLoop()
        a, b, wire, _, got_b = make_pair(loop, chunk_size=10)
        wire.drop_first_n = 3
        a.send(1, b"0123456789" * 5)
        loop.run(10.0)
        assert got_b == [(1, b"0123456789" * 5)]
        assert a.chunks_retransmitted > 0

    def test_duplicates_delivered_once(self):
        loop = EventLoop()
        a, b, wire, _, got_b = make_pair(loop, chunk_size=10)
        wire.duplicate = True
        a.send(1, b"abcdefghij" * 3)
        loop.run(10.0)
        assert got_b == [(1, b"abcdefghij" * 3)]

    def test_sender_gives_up_on_dead_peer(self):
        loop = EventLoop()
        a, b, wire, _, _ = make_pair(loop)
        wire.drop_first_n = 10**9
        a.send(1, b"into the void")
        loop.run(30.0)
        assert a.inflight_messages == 0  # abandoned, not leaked

    def test_acks_clear_inflight(self):
        loop = EventLoop()
        a, b, _, _, _ = make_pair(loop)
        a.send(1, b"payload")
        loop.run(1.0)
        assert a.inflight_messages == 0

    @settings(max_examples=15, deadline=None)
    @given(st.binary(max_size=5000), st.integers(min_value=1, max_value=500))
    def test_arbitrary_payload_and_chunk_size(self, payload, chunk_size):
        loop = EventLoop()
        a, b, _, _, got_b = make_pair(loop, chunk_size=chunk_size)
        a.send(1, payload)
        loop.run(5.0)
        assert got_b == [(1, payload)]
