"""Tests for self-signed certificates and fingerprints."""

from repro.util.rand import DeterministicRandom
from repro.webrtc.certificates import Certificate


class TestCertificates:
    def test_deterministic_generation(self):
        a = Certificate.generate(DeterministicRandom(5), "peer")
        b = Certificate.generate(DeterministicRandom(5), "peer")
        assert a.fingerprint == b.fingerprint

    def test_distinct_secrets_distinct_fingerprints(self):
        rand = DeterministicRandom(5)
        a = Certificate.generate(rand.fork("a"), "peer")
        b = Certificate.generate(rand.fork("b"), "peer")
        assert a.fingerprint != b.fingerprint

    def test_fingerprint_format_matches_sdp(self):
        cert = Certificate.generate(DeterministicRandom(1), "x")
        assert cert.fingerprint.startswith("sha-256 ")
        hex_part = cert.fingerprint.split(" ", 1)[1]
        pairs = hex_part.split(":")
        assert len(pairs) == 32
        assert all(len(p) == 2 for p in pairs)

    def test_fingerprint_of_public_key_matches(self):
        cert = Certificate.generate(DeterministicRandom(2), "x")
        assert Certificate.fingerprint_of(cert.public_key) == cert.fingerprint

    def test_secret_not_in_repr(self):
        cert = Certificate.generate(DeterministicRandom(3), "x")
        assert cert.secret.hex() not in repr(cert)
