"""Unit tests for the ICE agent (gathering, checks, observation log)."""

from repro.net import Endpoint, EventLoop, NatType, Network
from repro.util.rand import DeterministicRandom
from repro.webrtc.ice import CandidateType, IceAgent, IceCandidate
from repro.webrtc.stun import StunServer


def make_agent(net, host, stun_servers=None, relay_only=False, relay_endpoint=None):
    sock = host.bind_udp(0)
    agent = IceAgent(
        net.loop,
        DeterministicRandom(5).fork(host.name),
        local_ip=host.ip,
        local_port=sock.port,
        transport_send=lambda dst, payload: sock.send(dst, payload),
        stun_servers=stun_servers or [],
        relay_only=relay_only,
        relay_endpoint=relay_endpoint,
    )
    sock.handler = lambda data, src, s: _feed(agent, data, src)
    return agent


def _feed(agent, data, src):
    from repro.webrtc.stun import decode_stun, is_stun_datagram

    if is_stun_datagram(data):
        agent.handle_stun(decode_stun(data), src)


class TestGathering:
    def test_host_candidate_always_present(self):
        net = Network(EventLoop(), rand=DeterministicRandom(1))
        host = net.add_host("h")
        agent = make_agent(net, host)
        done = []
        agent.gather(done.append)
        net.loop.run(2.0)
        assert done
        types = {c.cand_type for c in done[0]}
        assert CandidateType.HOST in types

    def test_srflx_candidate_via_stun(self):
        net = Network(EventLoop(), rand=DeterministicRandom(1))
        stun = StunServer(net.add_host("stun"))
        nat = net.add_nat(NatType.FULL_CONE)
        host = net.add_host("h", nat=nat)
        agent = make_agent(net, host, stun_servers=[stun.endpoint])
        done = []
        agent.gather(done.append)
        net.loop.run(3.0)
        srflx = [c for c in done[0] if c.cand_type is CandidateType.SRFLX]
        assert srflx and srflx[0].endpoint.ip == nat.external_ip

    def test_public_host_no_duplicate_srflx(self):
        """A public host's reflexive address equals its host address —
        the agent must not list it twice."""
        net = Network(EventLoop(), rand=DeterministicRandom(1))
        stun = StunServer(net.add_host("stun"))
        host = net.add_host("h")
        agent = make_agent(net, host, stun_servers=[stun.endpoint])
        done = []
        agent.gather(done.append)
        net.loop.run(3.0)
        endpoints = [c.endpoint for c in done[0]]
        assert len(endpoints) == len(set(endpoints))

    def test_gather_times_out_without_stun_response(self):
        net = Network(EventLoop(), rand=DeterministicRandom(1))
        host = net.add_host("h")
        agent = make_agent(net, host, stun_servers=[Endpoint("203.0.113.1", 3478)])
        done = []
        agent.gather(done.append)
        net.loop.run(5.0)
        assert done  # completed despite the dead server
        assert all(c.cand_type is CandidateType.HOST for c in done[0])

    def test_relay_only_suppresses_real_addresses(self):
        net = Network(EventLoop(), rand=DeterministicRandom(1))
        host = net.add_host("h")
        relay = Endpoint("9.9.9.9", 55555)
        agent = make_agent(net, host, relay_only=True, relay_endpoint=relay)
        done = []
        agent.gather(done.append)
        net.loop.run(2.0)
        assert [c.endpoint for c in done[0]] == [relay]


class TestPriorities:
    def test_type_preference_ordering(self):
        host = IceCandidate.make(CandidateType.HOST, Endpoint("1.1.1.1", 1))
        srflx = IceCandidate.make(CandidateType.SRFLX, Endpoint("2.2.2.2", 2))
        relay = IceCandidate.make(CandidateType.RELAY, Endpoint("3.3.3.3", 3))
        assert host.priority > srflx.priority > relay.priority

    def test_dict_round_trip(self):
        candidate = IceCandidate.make(CandidateType.SRFLX, Endpoint("2.2.2.2", 443))
        assert IceCandidate.from_dict(candidate.to_dict()) == candidate


class TestChecks:
    def _paired_agents(self):
        net = Network(EventLoop(), rand=DeterministicRandom(2))
        host_a = net.add_host("a")
        host_b = net.add_host("b")
        agent_a = make_agent(net, host_a)
        agent_b = make_agent(net, host_b)
        for agent in (agent_a, agent_b):
            done = []
            agent.gather(done.append)
        net.loop.run(2.0)
        agent_a.set_remote(agent_b.local_candidates, agent_b.ufrag, agent_b.pwd)
        agent_b.set_remote(agent_a.local_candidates, agent_a.ufrag, agent_a.pwd)
        return net, agent_a, agent_b

    def test_nomination_both_sides(self):
        net, agent_a, agent_b = self._paired_agents()
        nominated = []
        agent_b.wait_nominated(lambda ep: nominated.append(("b", ep)))
        agent_a.start_checks(lambda ep: nominated.append(("a", ep)))
        net.loop.run(3.0)
        assert {side for side, _ in nominated} == {"a", "b"}

    def test_wrong_username_ignored(self):
        net, agent_a, agent_b = self._paired_agents()
        agent_b.remote_ufrag = "somebody-else"
        agent_a.start_checks(lambda ep: None)
        net.loop.run(3.0)
        assert agent_b.checks_received == 0
        assert agent_b.nominated_remote is None

    def test_observed_remotes_logged(self):
        net, agent_a, agent_b = self._paired_agents()
        agent_b.wait_nominated(lambda ep: None)
        agent_a.start_checks(lambda ep: None)
        net.loop.run(3.0)
        observed = {ep.ip for _, ep in agent_b.observed_remotes}
        assert observed  # the §IV-D leak: checks expose the remote address
