"""Stateful property test: the data-channel layer under adversarial
loss/duplication/reordering schedules.

hypothesis drives arbitrary interleavings of sends, packet drops,
duplications, and time advancement; the invariant is SCTP's contract —
every message either arrives exactly once and intact, or (after a dead
peer) is abandoned without leaking in-flight state.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.net.clock import EventLoop
from repro.webrtc.datachannel import DataChannelLayer


class DataChannelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.loop = EventLoop()
        self.pending_wire: list[tuple[object, bytes]] = []  # (dest layer, record)
        self.received: list[tuple[int, bytes]] = []
        self.sent: list[tuple[int, bytes]] = []
        self.sender = DataChannelLayer(
            self.loop,
            transmit=lambda record: self.pending_wire.append((self.receiver_ref, record)),
            chunk_size=50,
        )
        self.receiver = DataChannelLayer(
            self.loop,
            transmit=lambda record: self.pending_wire.append((self.sender_ref, record)),
            on_message=lambda ch, payload: self.received.append((ch, payload)),
            chunk_size=50,
        )
        self.sender_ref = self.sender
        self.receiver_ref = self.receiver

    @rule(channel=st.integers(min_value=0, max_value=3), payload=st.binary(max_size=300))
    def send(self, channel, payload):
        self.sent.append((channel, payload))
        self.sender.send(channel, payload)

    @rule(data=st.data())
    def deliver_some(self, data):
        if not self.pending_wire:
            return
        count = data.draw(st.integers(min_value=1, max_value=len(self.pending_wire)))
        batch, self.pending_wire = self.pending_wire[:count], self.pending_wire[count:]
        order = data.draw(st.permutations(range(len(batch))))
        for index in order:
            dest, record = batch[index]
            dest.handle_record(record)

    @rule(data=st.data())
    def drop_some(self, data):
        if not self.pending_wire:
            return
        count = data.draw(st.integers(min_value=1, max_value=len(self.pending_wire)))
        self.pending_wire = self.pending_wire[count:]

    @rule()
    def duplicate_head(self):
        if self.pending_wire:
            self.pending_wire.append(self.pending_wire[0])

    @rule()
    def advance_time(self):
        # fire retransmission timers; their records land on the wire list
        self.loop.run(0.5)

    @invariant()
    def no_corruption_no_duplication(self):
        # every delivered message was sent, intact, and at most once
        sent_multiset = list(self.sent)
        for message in self.received:
            assert message in sent_multiset, "corrupted or phantom message delivered"
            sent_multiset.remove(message)

    def teardown(self):
        # drain everything reliably: deliver all remaining + retransmissions
        for _ in range(60):
            wire, self.pending_wire = self.pending_wire, []
            for dest, record in wire:
                dest.handle_record(record)
            self.loop.run(0.5)
            if not self.pending_wire and self.sender.inflight_messages == 0:
                break
        # After a fully-drained wire every sent message must have arrived,
        # except ones the sender legitimately gave up on (retry budget
        # burned by drop/advance cycles). Duplicates are never allowed.
        assert len(self.received) >= len(self.sent) - self.sender.messages_abandoned
        assert len(self.received) <= len(self.sent)


TestDataChannelStateful = DataChannelMachine.TestCase
TestDataChannelStateful.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)
