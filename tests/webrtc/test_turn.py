"""Unit tests for the TURN server and client."""

from repro.net import Endpoint, EventLoop, Network
from repro.util.rand import DeterministicRandom
from repro.webrtc.stun import decode_stun, is_stun_datagram
from repro.webrtc.turn import TurnClient, TurnServer


def make_world():
    net = Network(EventLoop(), rand=DeterministicRandom(9))
    server = TurnServer(net.add_host("turn"))
    return net, server


def make_client(net, server, name):
    host = net.add_host(name)
    sock = host.bind_udp(0)
    received = []
    client = TurnClient(
        DeterministicRandom(3).fork(name),
        server.endpoint,
        raw_send=sock.send,
        on_relayed_data=lambda payload, peer: received.append((payload, peer)),
    )

    def on_datagram(data, src, s):
        if is_stun_datagram(data):
            client.handle_stun(decode_stun(data), src)

    sock.handler = on_datagram
    return host, sock, client, received


class TestAllocation:
    def test_allocate_returns_relayed_endpoint(self):
        net, server = make_world()
        _, _, client, _ = make_client(net, server, "c")
        allocated = []
        client.allocate(allocated.append)
        net.loop.run(1.0)
        assert allocated
        assert allocated[0].ip == server.host.public_ip
        assert server.allocations_made == 1

    def test_repeat_allocate_reuses(self):
        net, server = make_world()
        _, _, client, _ = make_client(net, server, "c")
        results = []
        client.allocate(results.append)
        net.loop.run(1.0)
        client.allocate(results.append)
        net.loop.run(1.0)
        assert server.allocations_made == 1
        assert results[0] == results[1]


class TestRelaying:
    def test_send_indication_forwards_to_peer(self):
        net, server = make_world()
        _, _, client, _ = make_client(net, server, "c")
        client.allocate(lambda ep: None)
        peer_host = net.add_host("peer")
        inbox = []
        peer_sock = peer_host.bind_udp(7000, lambda data, src, s: inbox.append((data, src)))
        net.loop.run(1.0)
        client.send_via_relay(Endpoint(peer_host.ip, 7000), b"relayed-payload")
        net.loop.run(1.0)
        assert inbox
        data, src = inbox[0]
        assert data == b"relayed-payload"
        assert src.ip == server.host.public_ip  # the peer sees the relay, not the client

    def test_inbound_becomes_data_indication(self):
        net, server = make_world()
        _, _, client, received = make_client(net, server, "c")
        allocated = []
        client.allocate(allocated.append)
        net.loop.run(1.0)
        sender = net.add_host("sender")
        sender.bind_udp(0).send(allocated[0], b"hello-through-relay")
        net.loop.run(1.0)
        assert received
        payload, peer = received[0]
        assert payload == b"hello-through-relay"
        assert peer.ip == sender.ip

    def test_relayed_bytes_accounted(self):
        net, server = make_world()
        _, _, client, _ = make_client(net, server, "c")
        client.allocate(lambda ep: None)
        peer_host = net.add_host("peer")
        peer_host.bind_udp(7000, lambda *a: None)
        net.loop.run(1.0)
        client.send_via_relay(Endpoint(peer_host.ip, 7000), b"x" * 1000)
        net.loop.run(1.0)
        assert server.relayed_bytes == 1000
        assert client.bytes_via_relay == 1000

    def test_send_without_allocation_dropped(self):
        net, server = make_world()
        _, _, client, _ = make_client(net, server, "c")
        peer_host = net.add_host("peer")
        inbox = []
        peer_host.bind_udp(7000, lambda data, src, s: inbox.append(data))
        client.send_via_relay(Endpoint(peer_host.ip, 7000), b"never arrives")
        net.loop.run(1.0)
        assert inbox == []
