"""Tests for the STUN codec and binding server."""

import pytest
from hypothesis import given, strategies as st

from repro.net import Endpoint, EventLoop, NatType, Network
from repro.util.errors import StunDecodeError
from repro.util.rand import DeterministicRandom
from repro.webrtc.stun import (
    MAGIC_COOKIE,
    AttributeType,
    StunClass,
    StunMessage,
    StunMethod,
    StunServer,
    decode_stun,
    decode_xor_address,
    encode_stun,
    encode_xor_address,
    is_stun_datagram,
)

TXN = bytes(range(12))


class TestCodec:
    def test_round_trip_basic(self):
        msg = StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN)
        msg.add(AttributeType.SOFTWARE, b"test")
        decoded = decode_stun(encode_stun(msg))
        assert decoded.method is StunMethod.BINDING
        assert decoded.msg_class is StunClass.REQUEST
        assert decoded.transaction_id == TXN
        assert decoded.attr(AttributeType.SOFTWARE) == b"test"

    def test_magic_cookie_on_wire(self):
        wire = encode_stun(StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN))
        assert int.from_bytes(wire[4:8], "big") == MAGIC_COOKIE

    def test_attribute_padding(self):
        msg = StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN)
        msg.add(AttributeType.SOFTWARE, b"abc")  # 3 bytes -> padded to 4
        wire = encode_stun(msg)
        assert len(wire) == 20 + 4 + 4
        assert decode_stun(wire).attr(AttributeType.SOFTWARE) == b"abc"

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([int(a) for a in AttributeType]),
                st.binary(max_size=64),
            ),
            max_size=8,
        ),
        st.binary(min_size=12, max_size=12),
        st.sampled_from(list(StunMethod)),
        st.sampled_from(list(StunClass)),
    )
    def test_round_trip_property(self, attrs, txn, method, msg_class):
        msg = StunMessage(method, msg_class, txn)
        for attr_type, value in attrs:
            msg.add(attr_type, value)
        decoded = decode_stun(encode_stun(msg))
        assert decoded.method is method
        assert decoded.msg_class is msg_class
        assert decoded.transaction_id == txn
        assert [(a.attr_type, a.value) for a in decoded.attributes] == [
            (t, v) for t, v in attrs
        ]

    def test_bad_cookie_rejected(self):
        wire = bytearray(encode_stun(StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN)))
        wire[4] ^= 0xFF
        with pytest.raises(StunDecodeError):
            decode_stun(bytes(wire))

    def test_truncated_rejected(self):
        wire = encode_stun(StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN))
        with pytest.raises(StunDecodeError):
            decode_stun(wire[:10])

    def test_length_mismatch_rejected(self):
        wire = encode_stun(StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN))
        with pytest.raises(StunDecodeError):
            decode_stun(wire + b"extra")


class TestXorAddress:
    @given(
        st.tuples(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=255),
        ),
        st.integers(min_value=0, max_value=65535),
    )
    def test_round_trip(self, octets, port):
        ip = ".".join(str(o) for o in octets)
        endpoint = Endpoint(ip, port)
        assert decode_xor_address(encode_xor_address(endpoint, TXN), TXN) == endpoint

    def test_address_is_obfuscated_on_wire(self):
        raw = encode_xor_address(Endpoint("1.2.3.4", 80), TXN)
        assert b"\x01\x02\x03\x04" not in raw


class TestDemux:
    def test_stun_datagram_detected(self):
        wire = encode_stun(StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN))
        assert is_stun_datagram(wire)

    def test_dtls_like_bytes_not_stun(self):
        assert not is_stun_datagram(b"\x16\xfe\xfd" + b"\x00" * 30)

    def test_short_datagram_not_stun(self):
        assert not is_stun_datagram(b"\x00\x01")


class TestStunServer:
    def test_binding_response_reflects_nat_address(self):
        loop = EventLoop()
        net = Network(loop, rand=DeterministicRandom(3))
        server = StunServer(net.add_host("stun"))
        nat = net.add_nat(NatType.PORT_RESTRICTED_CONE)
        client = net.add_host("client", nat=nat)
        responses = []

        def on_dgram(data, src, sock):
            responses.append(decode_stun(data).xor_mapped_address())

        sock = client.bind_udp(5000, on_dgram)
        request = StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN)
        sock.send(server.endpoint, encode_stun(request))
        loop.run(1.0)
        assert len(responses) == 1
        assert responses[0].ip == nat.external_ip
        assert server.requests_served == 1

    def test_non_stun_traffic_ignored(self):
        loop = EventLoop()
        net = Network(loop, rand=DeterministicRandom(3))
        server = StunServer(net.add_host("stun"))
        client = net.add_host("client")
        client.bind_udp(5000).send(server.endpoint, b"garbage that is not stun")
        loop.run(1.0)
        assert server.requests_served == 0


class TestMessageIntegrity:
    def test_round_trip(self):
        from repro.webrtc.stun import add_message_integrity, verify_message_integrity

        msg = StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN)
        msg.add(AttributeType.USERNAME, b"remote:local")
        add_message_integrity(msg, b"ice-password")
        decoded = decode_stun(encode_stun(msg))
        assert verify_message_integrity(decoded, b"ice-password")

    def test_wrong_key_rejected(self):
        from repro.webrtc.stun import add_message_integrity, verify_message_integrity

        msg = StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN)
        add_message_integrity(msg, b"right-key")
        assert not verify_message_integrity(msg, b"wrong-key")

    def test_missing_attribute_rejected(self):
        from repro.webrtc.stun import verify_message_integrity

        msg = StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN)
        assert not verify_message_integrity(msg, b"any")

    def test_tampered_attribute_rejected(self):
        from repro.webrtc.stun import add_message_integrity, verify_message_integrity

        msg = StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN)
        msg.add(AttributeType.USERNAME, b"remote:local")
        add_message_integrity(msg, b"key")
        # tamper with the username after signing
        decoded = decode_stun(encode_stun(msg))
        tampered = StunMessage(decoded.method, decoded.msg_class, decoded.transaction_id)
        for attribute in decoded.attributes:
            if attribute.attr_type == AttributeType.USERNAME:
                tampered.add(AttributeType.USERNAME, b"evil:someone")
            else:
                tampered.add(attribute.attr_type, attribute.value)
        assert not verify_message_integrity(tampered, b"key")

    def test_forged_check_dropped_by_agent(self):
        """An attacker who learned the victim's ufrag (it travels in
        signaled SDP) still cannot forge a connectivity check without
        the ICE password."""
        from repro.net import EventLoop, Network
        from repro.util.rand import DeterministicRandom
        from repro.webrtc.ice import IceAgent

        net = Network(EventLoop(), rand=DeterministicRandom(4))
        host = net.add_host("victim")
        sock = host.bind_udp(0)
        agent = IceAgent(
            net.loop, DeterministicRandom(5), host.ip, sock.port,
            transport_send=lambda dst, payload: sock.send(dst, payload),
        )
        agent.remote_ufrag = "attacker-ufrag"
        agent.remote_pwd = "unknown-to-attacker"
        forged = StunMessage(StunMethod.BINDING, StunClass.REQUEST, TXN)
        forged.add(AttributeType.USERNAME, f"{agent.ufrag}:attacker-ufrag".encode())
        forged.add(AttributeType.USE_CANDIDATE, b"")
        # no MESSAGE-INTEGRITY (attacker lacks the pwd)
        agent.handle_stun(forged, Endpoint("6.6.6.6", 666))
        assert agent.checks_received == 0
        assert agent.nominated_remote is None
