"""Tests for the SDP codec."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import Endpoint
from repro.util.errors import SdpError
from repro.webrtc.ice import CandidateType, IceCandidate
from repro.webrtc.peer_connection import SessionDescription
from repro.webrtc.sdp import candidate_ips, parse_sdp, render_sdp


def make_description(kind="offer", candidates=None):
    return SessionDescription(
        kind=kind,
        ufrag="abcd1234",
        pwd="deadbeefdeadbeefdeadbeef",
        fingerprint="sha-256 AA:BB:CC:DD",
        candidates=candidates
        if candidates is not None
        else [
            IceCandidate.make(CandidateType.HOST, Endpoint("192.168.1.5", 10000)),
            IceCandidate.make(CandidateType.SRFLX, Endpoint("5.6.7.8", 40001)),
        ],
    )


class TestRoundTrip:
    def test_offer_round_trip(self):
        desc = make_description("offer")
        parsed = parse_sdp(render_sdp(desc))
        assert parsed.kind == "offer"
        assert parsed.ufrag == desc.ufrag
        assert parsed.pwd == desc.pwd
        assert parsed.fingerprint == desc.fingerprint
        assert parsed.candidates == desc.candidates

    def test_answer_round_trip(self):
        parsed = parse_sdp(render_sdp(make_description("answer")))
        assert parsed.kind == "answer"

    def test_no_candidates(self):
        parsed = parse_sdp(render_sdp(make_description(candidates=[])))
        assert parsed.candidates == []

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(CandidateType)),
                st.integers(min_value=0, max_value=255),
                st.integers(min_value=1, max_value=65535),
            ),
            max_size=6,
        )
    )
    def test_candidates_round_trip_property(self, specs):
        candidates = [
            IceCandidate.make(kind, Endpoint(f"10.0.0.{octet}", port))
            for kind, octet, port in specs
        ]
        parsed = parse_sdp(render_sdp(make_description(candidates=candidates)))
        assert parsed.candidates == candidates


class TestSdpText:
    def test_looks_like_sdp(self):
        text = render_sdp(make_description())
        assert text.startswith("v=0\r\n")
        assert "m=application 9 UDP/DTLS/SCTP webrtc-datachannel" in text
        assert "a=ice-ufrag:abcd1234" in text
        assert "typ srflx" in text

    def test_candidate_ips_view(self):
        text = render_sdp(make_description())
        assert candidate_ips(text) == ["192.168.1.5", "5.6.7.8"]


class TestParseErrors:
    def test_missing_credentials_rejected(self):
        with pytest.raises(SdpError):
            parse_sdp("v=0\r\na=fingerprint:sha-256 AA\r\n")

    def test_malformed_candidate_rejected(self):
        text = render_sdp(make_description(candidates=[]))
        with pytest.raises(SdpError):
            parse_sdp(text + "a=candidate:garbage\r\n")

    def test_unknown_attributes_tolerated(self):
        text = render_sdp(make_description()) + "a=rtcp-mux\r\na=extmap:1 something\r\n"
        assert parse_sdp(text).ufrag == "abcd1234"
