"""Integration tests: full PeerConnection lifecycle over the simulated net."""

import pytest

from repro.net import EventLoop, NatType, Network, TrafficCapture
from repro.util.rand import DeterministicRandom
from repro.webrtc import PeerConnection, RtcConfig, StunServer, TurnServer
from repro.webrtc.ice import CandidateType


class Scenario:
    def __init__(self, nat_a=NatType.PORT_RESTRICTED_CONE, nat_b=NatType.FULL_CONE,
                 loss=0.0, relay_only=False, with_turn=False):
        self.loop = EventLoop()
        self.net = Network(self.loop, rand=DeterministicRandom(42), loss_rate=loss)
        self.capture = self.net.add_capture(TrafficCapture("all"))
        self.stun = StunServer(self.net.add_host("stun", region="us"))
        self.turn = TurnServer(self.net.add_host("turn", region="us")) if (with_turn or relay_only) else None
        host_a = self.net.add_host("alice", nat=self.net.add_nat(nat_a), region="us")
        host_b = self.net.add_host("bob", nat=self.net.add_nat(nat_b), region="us")
        self.host_a, self.host_b = host_a, host_b
        config = RtcConfig(
            stun_servers=[self.stun.endpoint],
            turn_server=self.turn.endpoint if self.turn else None,
            relay_only=relay_only,
        )
        rand = DeterministicRandom(7)
        self.pa = PeerConnection(host_a, self.loop, rand, config, name="alice")
        self.pb = PeerConnection(host_b, self.loop, rand, config, name="bob")
        self.got_a, self.got_b = [], []
        self.pa.on_message = lambda ch, d: self.got_a.append((ch, d))
        self.pb.on_message = lambda ch, d: self.got_b.append((ch, d))

    def connect(self, timeout=10.0):
        self.pa.create_offer(
            lambda offer: self.pb.accept_offer(offer, lambda ans: self.pa.set_answer(ans))
        )
        self.loop.run(timeout)
        return self.pa.connected and self.pb.connected


class TestConnection:
    def test_basic_connect(self):
        s = Scenario()
        assert s.connect()

    def test_message_exchange(self):
        s = Scenario()
        assert s.connect()
        s.pa.send(1, b"from-a")
        s.pb.send(2, b"from-b")
        s.loop.run(5.0)
        assert s.got_b == [(1, b"from-a")]
        assert s.got_a == [(2, b"from-b")]

    def test_large_segment_transfer(self):
        s = Scenario()
        assert s.connect()
        segment = bytes(range(256)) * 4096  # 1 MiB
        s.pa.send(1, segment)
        s.loop.run(30.0)
        assert s.got_b == [(1, segment)]

    def test_connect_under_loss(self):
        s = Scenario(loss=0.05)
        assert s.connect(timeout=20.0)
        s.pa.send(1, b"x" * 100_000)
        s.loop.run(60.0)
        assert s.got_b and s.got_b[0][1] == b"x" * 100_000

    def test_queued_send_before_connected(self):
        s = Scenario()
        s.pa.create_offer(
            lambda offer: s.pb.accept_offer(offer, lambda ans: s.pa.set_answer(ans))
        )
        s.pa.send(1, b"early")  # queued during establishment
        s.loop.run(10.0)
        assert s.got_b == [(1, b"early")]

    def test_symmetric_pair_fails_direct(self):
        s = Scenario(nat_a=NatType.SYMMETRIC, nat_b=NatType.SYMMETRIC)
        assert not s.connect()

    def test_symmetric_pair_connects_via_relay(self):
        s = Scenario(nat_a=NatType.SYMMETRIC, nat_b=NatType.SYMMETRIC, relay_only=True)
        assert s.connect()

    def test_srflx_candidate_carries_nat_ip(self):
        s = Scenario()
        assert s.connect()
        srflx = [c for c in s.pa.ice.local_candidates if c.cand_type is CandidateType.SRFLX]
        assert srflx and srflx[0].endpoint.ip == s.host_a.nat.external_ip


class TestIpExposure:
    """The §IV-D leak semantics: direct mode exposes IPs, relay mode hides them."""

    def test_direct_mode_leaks_peer_ip(self):
        s = Scenario()
        assert s.connect()
        observed = {e.ip for _, e in s.pb.ice.observed_remotes}
        assert s.host_a.nat.external_ip in observed

    def test_relay_mode_hides_peer_ip(self):
        s = Scenario(relay_only=True)
        assert s.connect()
        s.pa.send(1, b"data through relay")
        s.loop.run(5.0)
        observed = {e.ip for _, e in s.pb.ice.observed_remotes}
        assert s.host_a.nat.external_ip not in observed
        assert observed <= {s.turn.host.public_ip}

    def test_relay_mode_candidates_contain_no_real_ips(self):
        s = Scenario(relay_only=True)
        assert s.connect()
        for candidate in s.pa.ice.local_candidates:
            assert candidate.endpoint.ip == s.turn.host.public_ip

    def test_relay_carries_data(self):
        s = Scenario(relay_only=True)
        assert s.connect()
        s.pa.send(1, b"z" * 50_000)
        s.loop.run(10.0)
        assert s.got_b == [(1, b"z" * 50_000)]
        assert s.turn.relayed_bytes > 50_000


class TestFailureModes:
    def test_closed_connection_rejects_send(self):
        s = Scenario()
        assert s.connect()
        s.pa.close()
        with pytest.raises(Exception):
            s.pa.send(1, b"nope")

    def test_tampered_signaling_fingerprint_blocks_connection(self):
        """A MITM swapping the DTLS fingerprint must be detected."""
        s = Scenario()
        errors = []
        s.pa.on_error = errors.append

        def on_offer(offer):
            def on_answer(answer):
                answer.fingerprint = answer.fingerprint.replace(
                    answer.fingerprint[8:10], "00"
                )
                s.pa.set_answer(answer)

            s.pb.accept_offer(offer, on_answer)

        s.pa.create_offer(on_offer)
        s.loop.run(15.0)
        assert not s.pa.connected
        assert errors
