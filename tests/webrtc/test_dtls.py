"""Tests for the DTLS-shaped handshake and record layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.clock import EventLoop
from repro.util.errors import DtlsHandshakeError, DtlsRecordError
from repro.util.rand import DeterministicRandom
from repro.webrtc.certificates import Certificate
from repro.webrtc.dtls import DtlsSession, is_dtls_datagram


class Pipe:
    """A bidirectional in-order datagram pipe with optional tampering."""

    def __init__(self, loop: EventLoop, latency: float = 0.01):
        self.loop = loop
        self.latency = latency
        self.a_to_b_hook = None
        self.b_to_a_hook = None
        self.a = None
        self.b = None

    def send_from_a(self, data: bytes) -> None:
        if self.a_to_b_hook:
            data = self.a_to_b_hook(data)
            if data is None:
                return
        self.loop.schedule(self.latency, lambda: self.b.handle_datagram(data))

    def send_from_b(self, data: bytes) -> None:
        if self.b_to_a_hook:
            data = self.b_to_a_hook(data)
            if data is None:
                return
        self.loop.schedule(self.latency, lambda: self.a.handle_datagram(data))


def make_pair(loop, expected_ok=True, pipe=None):
    rand = DeterministicRandom(11)
    cert_a = Certificate.generate(rand.fork("a"), "alice")
    cert_b = Certificate.generate(rand.fork("b"), "bob")
    pipe = pipe or Pipe(loop)
    expected_b_fp = cert_b.fingerprint if expected_ok else Certificate.generate(
        rand.fork("evil"), "evil"
    ).fingerprint
    a = DtlsSession(
        loop, rand.fork("sa"), "client", cert_a, expected_b_fp, send=pipe.send_from_a
    )
    b = DtlsSession(
        loop, rand.fork("sb"), "server", cert_b, cert_a.fingerprint, send=pipe.send_from_b
    )
    pipe.a, pipe.b = a, b
    return a, b, pipe


class TestHandshake:
    def test_both_sides_establish(self):
        loop = EventLoop()
        a, b, _ = make_pair(loop)
        a.start()
        loop.run(5.0)
        assert a.established and b.established

    def test_established_callbacks_fire(self):
        loop = EventLoop()
        a, b, _ = make_pair(loop)
        events = []
        a.on_established = lambda: events.append("a")
        b.on_established = lambda: events.append("b")
        a.start()
        loop.run(5.0)
        assert sorted(events) == ["a", "b"]

    def test_fingerprint_mismatch_aborts(self):
        loop = EventLoop()
        a, b, _ = make_pair(loop, expected_ok=False)
        errors = []
        a.on_error = errors.append
        a.start()
        loop.run(5.0)
        assert not a.established
        assert any(isinstance(e, DtlsHandshakeError) for e in errors)
        assert a.auth_failures == 1

    def test_handshake_survives_packet_loss(self):
        loop = EventLoop()
        pipe = Pipe(loop)
        drops = {"n": 0}

        def lossy(data):
            # drop the first two flights in each direction
            if drops["n"] < 2:
                drops["n"] += 1
                return None
            return data

        pipe.a_to_b_hook = lossy
        a, b, _ = make_pair(loop, pipe=pipe)
        a.start()
        loop.run(10.0)
        assert a.established and b.established

    def test_handshake_times_out_on_dead_peer(self):
        loop = EventLoop()
        pipe = Pipe(loop)
        pipe.a_to_b_hook = lambda data: None  # black hole
        a, b, _ = make_pair(loop, pipe=pipe)
        errors = []
        a.on_error = errors.append
        a.start()
        loop.run(30.0)
        assert not a.established
        assert a.failed
        assert any("timed out" in str(e) for e in errors)


class TestRecords:
    def _established_pair(self, loop):
        a, b, pipe = make_pair(loop)
        a.start()
        loop.run(5.0)
        assert a.established and b.established
        return a, b, pipe

    def test_application_data_round_trip(self):
        loop = EventLoop()
        a, b, _ = self._established_pair(loop)
        got = []
        b.on_data = got.append
        a.send_application(b"segment-bytes" * 100)
        loop.run(1.0)
        assert got == [b"segment-bytes" * 100]

    def test_data_both_directions(self):
        loop = EventLoop()
        a, b, _ = self._established_pair(loop)
        got_a, got_b = [], []
        a.on_data = got_a.append
        b.on_data = got_b.append
        a.send_application(b"to-b")
        b.send_application(b"to-a")
        loop.run(1.0)
        assert got_b == [b"to-b"] and got_a == [b"to-a"]

    def test_ciphertext_differs_from_plaintext(self):
        loop = EventLoop()
        pipe = Pipe(loop)
        wires = []
        a, b, _ = make_pair(loop, pipe=pipe)
        a.start()
        loop.run(5.0)
        pipe.a_to_b_hook = lambda data: (wires.append(data), data)[1]
        a.send_application(b"SECRET-VIDEO-SEGMENT")
        loop.run(1.0)
        assert wires and all(b"SECRET-VIDEO-SEGMENT" not in w for w in wires)

    def test_tampered_record_rejected(self):
        loop = EventLoop()
        a, b, pipe = self._established_pair(loop)
        got, errors = [], []
        b.on_data = got.append
        b.on_error = errors.append

        def tamper(data):
            raw = bytearray(data)
            raw[-1] ^= 0xFF
            return bytes(raw)

        pipe.a_to_b_hook = tamper
        a.send_application(b"payload")
        loop.run(1.0)
        assert got == []
        assert any(isinstance(e, DtlsRecordError) for e in errors)
        assert b.auth_failures == 1

    def test_send_before_established_raises(self):
        loop = EventLoop()
        a, _, _ = make_pair(loop)
        with pytest.raises(DtlsRecordError):
            a.send_application(b"too soon")

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=0, max_size=2000))
    def test_arbitrary_payload_round_trip(self, payload: bytes):
        loop = EventLoop()
        a, b, _ = make_pair(loop)
        a.start()
        loop.run(5.0)
        got = []
        b.on_data = got.append
        a.send_application(payload)
        loop.run(1.0)
        assert got == [payload]


class TestDemux:
    def test_records_detected_as_dtls(self):
        loop = EventLoop()
        pipe = Pipe(loop)
        wires = []
        pipe.a_to_b_hook = lambda data: (wires.append(data), data)[1]
        a, b, _ = make_pair(loop, pipe=pipe)
        a.start()
        loop.run(5.0)
        assert wires and all(is_dtls_datagram(w) for w in wires)

    def test_stun_not_dtls(self):
        assert not is_dtls_datagram(b"\x00\x01\x00\x00\x21\x12\xa4\x42" + b"\x00" * 12)
