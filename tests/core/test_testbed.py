"""Tests for the analyzer test bed."""

from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.provider import PEER5, VIBLAST
from repro.streaming.http import HttpClient
from repro.web.browser import Browser


class TestBuildTestBed:
    def test_full_chain_works(self):
        env = Environment(seed=71)
        bed = build_test_bed(env, PEER5, video_segments=4, segment_seconds=2.0, segment_bytes=10_000)
        session = Browser(env, "v").open(f"https://{bed.site.domain}/")
        assert session.pdn_loaded
        env.run(30.0)
        assert session.player.finished
        assert session.player.stats.played_digests() == [s.digest for s in bed.video.segments]

    def test_cdn_serves_video(self):
        env = Environment(seed=72)
        bed = build_test_bed(env, PEER5)
        response = HttpClient(env.urlspace).get(bed.video_url)
        assert response.ok and b"#EXTM3U" in response.body

    def test_allowlist_passthrough(self):
        env = Environment(seed=73)
        bed = build_test_bed(env, PEER5, allowed_domains={"www.test.com"})
        key = bed.provider.authenticator.lookup(bed.api_key)
        assert key.has_allowlist

    def test_viblast_always_allowlisted(self):
        env = Environment(seed=74)
        bed = build_test_bed(env, VIBLAST)
        assert bed.provider.authenticator.lookup(bed.api_key).has_allowlist

    def test_live_mode(self):
        env = Environment(seed=75)
        bed = build_test_bed(env, PEER5, live=True)
        assert bed.live_channel is not None
        assert "/live/" in bed.video_url

    def test_two_beds_can_share_provider(self):
        env = Environment(seed=76)
        bed_a = build_test_bed(env, PEER5, domain="a.test.com")
        bed_b = build_test_bed(env, PEER5, domain="b.test.com", provider=bed_a.provider)
        assert bed_a.provider is bed_b.provider
        assert bed_a.api_key != bed_b.api_key


class TestAnalyzer:
    def test_peer_container_lifecycle(self):
        from repro.core.analyzer import PdnAnalyzer

        env = Environment(seed=77)
        bed = build_test_bed(env, PEER5, video_segments=4, segment_seconds=2.0, segment_bytes=10_000)
        analyzer = PdnAnalyzer(env)
        peer = analyzer.create_peer(name="probe")
        session = peer.watch_test_stream(bed)
        analyzer.run(20.0)
        assert session.pdn_loaded
        assert peer.monitor.samples  # monitoring ran
        assert peer.played_digests()
        analyzer.teardown()
        assert analyzer.peers == []

    def test_capture_scoped_to_peer(self):
        from repro.core.analyzer import PdnAnalyzer

        env = Environment(seed=78)
        bed = build_test_bed(env, PEER5, video_segments=4)
        analyzer = PdnAnalyzer(env)
        peer_a = analyzer.create_peer(name="a")
        peer_b = analyzer.create_peer(name="b")
        peer_a.watch_test_stream(bed)
        analyzer.run(5.0)
        peer_b.watch_test_stream(bed)
        analyzer.run(20.0)
        a_ip = peer_a.browser.host.public_ip
        for packet in peer_a.capture.packets:
            assert a_ip in (packet.src.ip, packet.dst.ip)

    def test_reports_archived(self):
        from repro.core.analyzer import PdnAnalyzer
        from repro.attacks.harvesting import IpLeakTest

        env = Environment(seed=79)
        bed = build_test_bed(env, PEER5, video_segments=4)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(IpLeakTest(bed, watch=20.0))
        assert analyzer.reports == [report]
        assert report.finished_at >= report.started_at
