"""Tests for test reports, id factories, and the environment."""

import pytest

from repro.core.report import TestReport as AnalyzerReport
from repro.environment import Environment
from repro.util.ids import CountingIdFactory


class TestAnalyzerReport:
    def test_verdict_accumulation(self):
        report = AnalyzerReport("t", "peer5")
        report.add_verdict("risk_a", True, detail=1)
        report.add_verdict("risk_b", False)
        assert report.any_triggered
        assert report.verdict("risk_a").details == {"detail": 1}
        assert report.verdict("risk_b").triggered is False
        assert report.verdict("missing") is None

    def test_logs(self):
        report = AnalyzerReport("t", "p")
        report.log("step one")
        assert report.logs == ["step one"]

    def test_no_verdicts_not_triggered(self):
        assert not AnalyzerReport("t", "p").any_triggered


class TestCountingIdFactory:
    def test_sequential_per_prefix(self):
        ids = CountingIdFactory()
        assert ids.next("peer") == "peer-1"
        assert ids.next("peer") == "peer-2"
        assert ids.next("session") == "session-1"
        assert ids.peek_count("peer") == 2
        assert ids.peek_count("session") == 1

    def test_unused_prefix_count_zero(self):
        assert CountingIdFactory().peek_count("nothing") == 0


class TestEnvironment:
    def test_deterministic_given_seed(self):
        env_a = Environment(seed=5)
        env_b = Environment(seed=5)
        host_a = env_a.add_viewer_host("v", "CN")
        host_b = env_b.add_viewer_host("v", "CN")
        assert host_a.public_ip == host_b.public_ip

    def test_viewer_host_geolocates(self):
        env = Environment(seed=6)
        host = env.add_viewer_host("v", "GB")
        assert env.geo.country_of(host.public_ip) == "GB"

    def test_turn_created_lazily(self):
        env = Environment(seed=7)
        assert env._turn is None
        _ = env.turn
        assert env._turn is not None
        config = env.rtc_config(relay_only=True)
        assert config.turn_server == env.turn.endpoint

    def test_rtc_config_default_no_turn(self):
        env = Environment(seed=8)
        config = env.rtc_config()
        assert config.turn_server is None
        assert config.stun_servers == [env.stun.endpoint]

    def test_distinct_viewer_ips(self):
        env = Environment(seed=9)
        ips = {env.add_viewer_host(country="US").public_ip for _ in range(25)}
        assert len(ips) == 25

    def test_uplink_cap_passthrough(self):
        env = Environment(seed=10)
        host = env.add_viewer_host("capped", uplink_bytes_per_sec=1000.0)
        assert host.uplink_bytes_per_sec == 1000.0
