"""Tests for the resource model and monitor."""

from repro.net.clock import EventLoop
from repro.privacy.resources import ActivitySnapshot, ResourceModel, ResourceMonitor


class FakeTarget:
    def __init__(self):
        self.snapshot = ActivitySnapshot()

    def resource_activity(self):
        return self.snapshot


class TestModel:
    def test_idle_baseline(self):
        model = ResourceModel()
        snap = ActivitySnapshot()
        assert model.cpu_percent(snap, snap, 1.0) == model.cpu_idle
        assert model.memory_mb(snap) == model.mem_base_mb

    def test_playback_adds_cpu_and_memory(self):
        model = ResourceModel()
        snap = ActivitySnapshot(playing=True)
        assert model.cpu_percent(snap, snap, 1.0) == model.cpu_idle + model.cpu_playback
        assert model.memory_mb(snap) == model.mem_base_mb + model.mem_playback_mb

    def test_p2p_rate_costs_more_than_cdn_rate(self):
        """DTLS crypto makes a P2P byte dearer than a CDN byte."""
        model = ResourceModel()
        prev = ActivitySnapshot(playing=True)
        cdn = ActivitySnapshot(playing=True, bytes_cdn=1_000_000)
        p2p = ActivitySnapshot(playing=True, bytes_p2p_down=1_000_000)
        assert model.cpu_percent(prev, p2p, 1.0) > model.cpu_percent(prev, cdn, 1.0)

    def test_hashing_adds_cpu(self):
        model = ResourceModel()
        prev = ActivitySnapshot(pdn_active=True)
        hashed = ActivitySnapshot(pdn_active=True, hash_bytes=2_000_000)
        assert model.cpu_percent(prev, hashed, 1.0) > model.cpu_percent(prev, prev, 1.0)

    def test_cache_grows_memory(self):
        model = ResourceModel()
        small = ActivitySnapshot(pdn_active=True, cache_bytes=0)
        big = ActivitySnapshot(pdn_active=True, cache_bytes=10_000_000)
        assert model.memory_mb(big) > model.memory_mb(small)

    def test_integrity_runtime_memory(self):
        model = ResourceModel()
        without = ActivitySnapshot(pdn_active=True)
        with_im = ActivitySnapshot(pdn_active=True, integrity_active=True)
        assert model.memory_mb(with_im) - model.memory_mb(without) == model.mem_integrity_runtime_mb


class TestMonitor:
    def test_samples_once_per_interval(self):
        loop = EventLoop()
        monitor = ResourceMonitor(loop, FakeTarget(), interval=1.0)
        monitor.start()
        loop.run(10.5)
        assert len(monitor.samples) == 10

    def test_stop_halts_sampling(self):
        loop = EventLoop()
        monitor = ResourceMonitor(loop, FakeTarget(), interval=1.0)
        monitor.start()
        loop.run(3.5)
        monitor.stop()
        loop.run(10.0)
        assert len(monitor.samples) == 3

    def test_rate_computed_from_deltas(self):
        loop = EventLoop()
        target = FakeTarget()
        model = ResourceModel()
        monitor = ResourceMonitor(loop, target, model=model, interval=1.0)
        monitor.start()
        loop.run(1.5)
        target.snapshot = ActivitySnapshot(bytes_p2p_up=1_000_000, net_out=1_000_000)
        loop.run(1.0)
        peak = max(monitor.cpu.values())
        assert peak >= model.cpu_idle + model.cpu_per_p2p_mb * 0.99
        assert monitor.total_net_out() == 1_000_000

    def test_net_io_deltas(self):
        loop = EventLoop()
        target = FakeTarget()
        monitor = ResourceMonitor(loop, target, interval=1.0)
        monitor.start()
        loop.run(1.5)
        target.snapshot = ActivitySnapshot(net_in=500)
        loop.run(1.0)
        target.snapshot = ActivitySnapshot(net_in=700)
        loop.run(1.0)
        assert monitor.total_net_in() == 700
