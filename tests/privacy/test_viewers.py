"""Tests for audience models and viewer churn."""

import pytest

from repro.net.addresses import IpClass, classify_ip
from repro.net.clock import EventLoop
from repro.privacy.geo import GeoDatabase
from repro.privacy.viewers import (
    ViewerChurn,
    huya_audience,
    rt_news_audience,
    single_country_audience,
)
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRandom


@pytest.fixture(scope="module")
def geo():
    return GeoDatabase()


def make_churn(geo, audience, rate=60.0, session=5.0, seed=3):
    return ViewerChurn(
        EventLoop(), DeterministicRandom(seed), geo, audience,
        arrival_rate_per_min=rate, mean_session_min=session,
    )


class TestAudiences:
    def test_huya_overwhelmingly_chinese(self, geo):
        churn = make_churn(geo, huya_audience())
        countries = [churn.next_viewer().country for _ in range(500)]
        assert countries.count("CN") / len(countries) > 0.95

    def test_rt_top_countries(self, geo):
        churn = make_churn(geo, rt_news_audience(geo))
        countries = [churn.next_viewer().country for _ in range(2000)]
        share = lambda c: countries.count(c) / len(countries)
        assert 0.28 < share("US") < 0.42
        assert 0.12 < share("GB") < 0.23
        assert len(set(countries)) > 30  # long tail exists

    def test_single_country(self, geo):
        churn = make_churn(geo, single_country_audience("okru", "RU"))
        assert all(churn.next_viewer().country == "RU" for _ in range(50))


class TestArtifacts:
    def test_bogon_rate_approximated(self, geo):
        churn = make_churn(geo, huya_audience())
        viewers = [churn.next_viewer() for _ in range(2000)]
        bogons = [v for v in viewers if v.is_bogon_artifact]
        assert 0.04 < len(bogons) / len(viewers) < 0.12  # target 7.5%
        # private addresses dominate the artifact mix, as in the paper
        private = sum(1 for v in bogons if classify_ip(v.observed_ip) is IpClass.PRIVATE)
        assert private / len(bogons) > 0.8

    def test_non_artifact_ips_match_country(self, geo):
        churn = make_churn(geo, huya_audience())
        for _ in range(100):
            viewer = churn.next_viewer()
            if not viewer.is_bogon_artifact and viewer.country == "CN":
                assert geo.country_of(viewer.observed_ip) == "CN"


class TestChurnProcess:
    def test_poisson_arrivals_approximate_rate(self, geo):
        loop = EventLoop()
        churn = ViewerChurn(
            loop, DeterministicRandom(8), geo, huya_audience(),
            arrival_rate_per_min=60.0, mean_session_min=1.0,
        )
        arrivals = []
        churn.start(arrivals.append)
        loop.run(600.0)  # 10 minutes at 60/min -> ~600
        assert 450 < len(arrivals) < 750

    def test_until_stops_arrivals(self, geo):
        loop = EventLoop()
        churn = ViewerChurn(
            loop, DeterministicRandom(8), geo, huya_audience(),
            arrival_rate_per_min=60.0, mean_session_min=1.0,
        )
        arrivals = []
        churn.start(arrivals.append, until=60.0)
        loop.run(600.0)
        in_window = [1 for _ in arrivals]
        assert len(in_window) < 100

    def test_stop(self, geo):
        loop = EventLoop()
        churn = make_churn(geo, huya_audience())
        churn.loop = loop
        arrivals = []
        churn.start(arrivals.append)
        loop.run(10.0)
        churn.stop()
        count = len(arrivals)
        loop.run(120.0)
        assert len(arrivals) == count

    def test_until_zero_schedules_nothing(self, geo):
        # Regression: the first arrival used to be scheduled before the
        # window check, so an already-closed window still delivered one
        # viewer past the horizon edge.
        loop = EventLoop()
        churn = ViewerChurn(
            loop, DeterministicRandom(8), geo, huya_audience(),
            arrival_rate_per_min=60.0, mean_session_min=1.0,
        )
        arrivals = []
        churn.start(arrivals.append, until=0.0)
        loop.run(120.0)
        assert arrivals == []
        assert churn.arrivals == 0

    def test_until_in_past_schedules_nothing(self, geo):
        loop = EventLoop()
        loop.run(50.0)  # advance the clock beyond the window first
        churn = ViewerChurn(
            loop, DeterministicRandom(8), geo, huya_audience(),
            arrival_rate_per_min=60.0, mean_session_min=1.0,
        )
        arrivals = []
        churn.start(arrivals.append, until=10.0)
        loop.run(120.0)
        assert arrivals == []
        assert churn.arrivals == 0

    def test_arrivals_counter_matches_deliveries(self, geo):
        loop = EventLoop()
        churn = ViewerChurn(
            loop, DeterministicRandom(8), geo, huya_audience(),
            arrival_rate_per_min=60.0, mean_session_min=1.0,
        )
        deliveries = []
        churn.start(lambda viewer: deliveries.append(loop.now), until=30.0)
        loop.run(120.0)
        assert deliveries, "open window at 60/min should deliver viewers"
        assert churn.arrivals == len(deliveries)
        assert all(t < 30.0 for t in deliveries)  # window closed at `until`
        churn.stop()  # stop after the window closed is a safe no-op
        loop.run(60.0)
        assert churn.arrivals == len(deliveries)

    def test_invalid_rates_rejected(self, geo):
        with pytest.raises(ConfigurationError):
            ViewerChurn(EventLoop(), DeterministicRandom(1), geo, huya_audience(),
                        arrival_rate_per_min=0, mean_session_min=5)

    def test_session_lengths_bounded_below(self, geo):
        churn = make_churn(geo, huya_audience())
        assert all(churn.next_viewer().session_length >= 30.0 for _ in range(100))
