"""Tests for the synthetic geolocation database."""

from hypothesis import given, strategies as st

from repro.net.addresses import IpClass
from repro.privacy.geo import GeoDatabase
from repro.util.rand import DeterministicRandom


class TestLookup:
    def test_random_ip_geolocates_to_country(self):
        db = GeoDatabase()
        rand = DeterministicRandom(9)
        for country in ("CN", "US", "GB", "RU", "BR"):
            for _ in range(20):
                ip = db.random_ip(rand, country)
                assert db.country_of(ip) == country

    def test_generated_ips_are_public(self):
        db = GeoDatabase()
        rand = DeterministicRandom(9)
        for country in db.countries():
            info = db.lookup(db.random_ip(rand, country))
            assert info.is_public

    def test_bogons_have_no_country(self):
        db = GeoDatabase()
        info = db.lookup("192.168.1.5")
        assert not info.is_public
        assert info.country == ""

    def test_enough_countries_for_rt_news(self):
        """The RT audience spans 56 countries; the DB must offer more."""
        assert len(GeoDatabase().countries()) >= 56

    def test_city_and_isp_deterministic(self):
        db = GeoDatabase()
        a = db.lookup("13.20.30.40")
        b = db.lookup("13.20.30.40")
        assert (a.city, a.isp) == (b.city, b.isp)
        assert a.city.startswith(a.country)

    def test_resolver_interface(self):
        db = GeoDatabase()
        resolve = db.resolver()
        rand = DeterministicRandom(4)
        ip = db.random_ip(rand, "CN")
        country, isp = resolve(ip)
        assert country == "CN" and isp


class TestBogons:
    @given(st.sampled_from([IpClass.PRIVATE, IpClass.SHARED_NAT, IpClass.RESERVED]),
           st.integers(min_value=0, max_value=1000))
    def test_random_bogon_classifies_correctly(self, kind, seed):
        db = GeoDatabase()
        ip = db.random_bogon(DeterministicRandom(seed), kind)
        from repro.net.addresses import classify_ip

        assert classify_ip(ip) is kind
