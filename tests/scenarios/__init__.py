"""Seed-driven property-based invariant suite for the scenario layer."""
