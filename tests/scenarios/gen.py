"""Generators for the scenario property suite.

Mirrors ``tests/chaos/gen.py``: no hypothesis — every random spec comes
from a :class:`DeterministicRandom` keyed by ``SCENARIO_SEED`` (an
environment variable CI varies across jobs), so a failing example is
reproduced exactly by re-running with the same seed.
"""

from __future__ import annotations

import os

from repro.scenarios.planner import RandomScenarioPlanner
from repro.scenarios.spec import ScenarioSpec
from repro.util.rand import DeterministicRandom

#: The base seed for this whole test session. CI runs the suite at
#: several values; locally it defaults to 0 (always the same examples).
BASE_SEED = int(os.environ.get("SCENARIO_SEED", "0"))


def scenario_rand(salt: str) -> DeterministicRandom:
    """The generator stream for one test, independent per ``salt``."""
    return DeterministicRandom(f"scenario:{BASE_SEED}:{salt}")


def scenario_seeds(n: int, salt: str) -> list[int]:
    """``n`` example seeds for a parametrized property test."""
    rand = scenario_rand(salt)
    return [rand.randint(0, 2**31 - 1) for _ in range(n)]


def random_specs(n: int, salt: str) -> list[ScenarioSpec]:
    """``n`` random-but-valid specs from the seeded planner."""
    planner = RandomScenarioPlanner(scenario_rand(salt))
    return [planner.plan(name=f"random-{i}") for i in range(n)]
