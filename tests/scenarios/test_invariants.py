"""Scenario invariants over seed-driven random specs.

Every spec the :class:`RandomScenarioPlanner` can emit must: keep
arrivals inside the horizon, materialise balanced session lifecycles,
realise its population mix within statistical bounds, and stay within
its declared caps. ``SCENARIO_SEED`` varies the examples in CI.
"""

from __future__ import annotations

import math

import pytest

from repro.net.clock import EventLoop
from repro.scenarios.arrivals import DiurnalArrivals, FlashCrowdArrivals, PoissonArrivals
from repro.scenarios.engine import ScenarioEngine
from repro.scenarios.spec import (
    NAT_KINDS,
    CatalogShape,
    PopulationMix,
    ScenarioSpec,
    SessionModel,
)
from repro.scenarios.timeline import materialize

from tests.scenarios.gen import random_specs, scenario_rand, scenario_seeds

LEAVE_REASONS = {"leave", "abandon", "horizon", "zap"}


class TestArrivalInvariants:
    """Sampled arrival times respect the horizon contract."""

    @pytest.mark.parametrize("spec", random_specs(20, "arrivals"), ids=lambda s: s.name)
    def test_times_sorted_rounded_within_horizon(self, spec: ScenarioSpec) -> None:
        times = spec.arrivals.times(scenario_rand(f"times:{spec.name}"), spec.horizon)
        assert times == sorted(times)
        assert all(0.0 <= t < spec.horizon for t in times)
        assert all(round(t, 3) == t for t in times)

    def test_zero_horizon_yields_no_arrivals(self) -> None:
        for process in (PoissonArrivals(), DiurnalArrivals(), FlashCrowdArrivals()):
            assert process.times(scenario_rand("zero"), 1e-9) == []

    def test_flash_crowd_spike_concentrates_after_spike_instant(self) -> None:
        process = FlashCrowdArrivals(
            base_rate_per_min=0.001, spike_at_sec=30.0, spike_arrivals=300, spike_width_sec=5.0
        )
        times = process.times(scenario_rand("spike"), 120.0)
        in_window = sum(1 for t in times if 30.0 <= t <= 35.0)
        # offsets are Exp(mean width/3): P(within width) ~ 95%
        assert in_window >= 0.75 * len(times) > 0

    def test_diurnal_rate_ramps_base_to_peak(self) -> None:
        process = DiurnalArrivals(base_rate_per_min=2.0, peak_rate_per_min=10.0, period_sec=100.0)
        assert process.rate_per_min_at(0.0) == pytest.approx(2.0)
        assert process.rate_per_min_at(50.0) == pytest.approx(10.0)
        assert process.rate_per_min_at(100.0) == pytest.approx(2.0)
        assert 2.0 < process.rate_per_min_at(25.0) < 10.0


class TestTimelineInvariants:
    """Materialised sessions are well-formed and capped."""

    @pytest.mark.parametrize("spec", random_specs(20, "timeline"), ids=lambda s: s.name)
    def test_sessions_well_formed(self, spec: ScenarioSpec) -> None:
        timeline = materialize(spec, scenario_rand(f"mat:{spec.name}"))
        assert timeline.spec_digest == spec.digest()
        if spec.max_viewers is not None:
            assert len(timeline.sessions) <= spec.max_viewers
        assert [s.viewer_id for s in timeline.sessions] == list(range(len(timeline.sessions)))
        for session in timeline.sessions:
            assert 0.0 <= session.join_at < session.leave_at <= spec.horizon
            assert session.leave_reason in LEAVE_REASONS
            assert session.nat in NAT_KINDS
            assert session.country in spec.population.region_mix
            assert 0 <= session.title < spec.catalog.titles
            for action in session.actions:
                assert session.join_at <= action.at <= session.leave_at
                assert action.kind in ("zap", "seek")
                if action.kind == "zap":
                    assert action.arg != session.title
                    assert action.at == session.leave_at
                    assert session.leave_reason == "zap"

    @pytest.mark.parametrize("spec", random_specs(6, "balance"), ids=lambda s: s.name)
    def test_lifecycle_balance_through_stub_engine(self, spec: ScenarioSpec) -> None:
        timeline = materialize(spec, scenario_rand(f"bal:{spec.name}"))
        loop = EventLoop()
        engine = ScenarioEngine(
            loop,
            timeline,
            create=lambda planned: object() if planned.title == 0 else None,
            close=lambda handle, planned, reason: None,
        ).start()
        loop.run(spec.horizon + 1.0)
        engine.close_all()
        assert engine.joins == engine.leaves
        assert not engine.active
        assert engine.joins + engine.background + engine.overflow == len(timeline.sessions)

    def test_max_peers_overflow_counted(self) -> None:
        spec = ScenarioSpec(
            name="crowded",
            horizon=30.0,
            arrivals=PoissonArrivals(rate_per_min=60.0),
            session=SessionModel(mean_watch_sec=60.0, min_watch_sec=20.0, abandon_prob=0.0),
        )
        timeline = materialize(spec, scenario_rand("overflow"))
        assert len(timeline.sessions) > 3
        loop = EventLoop()
        engine = ScenarioEngine(
            loop,
            timeline,
            create=lambda planned: object(),
            close=lambda handle, planned, reason: None,
            max_peers=2,
        ).start()
        loop.run(spec.horizon + 1.0)
        engine.close_all()
        assert engine.overflow > 0
        assert len([e for e in engine.events if e[1] == "join"]) == engine.joins
        assert engine.joins + engine.overflow == len(timeline.sessions)


class TestMixRealization:
    """Realised population fractions converge on the declared mix."""

    #: A high-volume spec so pooled counts give tight binomial bounds.
    MIX_SPEC = ScenarioSpec(
        name="mix-check",
        horizon=120.0,
        arrivals=PoissonArrivals(rate_per_min=15.0),
        session=SessionModel(mean_watch_sec=40.0, min_watch_sec=5.0),
        population=PopulationMix(
            nat_mix={"full_cone": 0.5, "cgnat": 0.3, "symmetric": 0.2},
            region_mix={"US": 0.6, "DE": 0.25, "JP": 0.15},
            cellular_share=0.35,
            leech_share=0.2,
        ),
        catalog=CatalogShape(kind="vod", titles=4, zipf_s=1.0),
    )

    def _pooled_sessions(self):
        sessions = []
        for seed in scenario_seeds(30, "mix"):
            from repro.util.rand import DeterministicRandom

            sessions.extend(materialize(self.MIX_SPEC, DeterministicRandom(seed)).sessions)
        return sessions

    @staticmethod
    def _assert_fraction(observed: int, total: int, expected: float, label: str) -> None:
        """Binomial check at five sigma (CI reruns at several seeds)."""
        tolerance = 5.0 * math.sqrt(expected * (1.0 - expected) / total) + 1.0 / total
        assert abs(observed / total - expected) <= tolerance, (
            f"{label}: {observed}/{total} vs expected {expected} (tol {tolerance:.4f})"
        )

    def test_mixes_sum_to_one_and_realize(self) -> None:
        mix = self.MIX_SPEC.population
        assert sum(mix.nat_mix.values()) == pytest.approx(1.0)
        assert sum(mix.region_mix.values()) == pytest.approx(1.0)
        sessions = self._pooled_sessions()
        total = len(sessions)
        assert total > 500
        for kind, weight in mix.nat_mix.items():
            self._assert_fraction(
                sum(1 for s in sessions if s.nat == kind), total, weight, f"nat {kind}"
            )
        for country, weight in mix.region_mix.items():
            self._assert_fraction(
                sum(1 for s in sessions if s.country == country), total, weight, country
            )
        self._assert_fraction(
            sum(1 for s in sessions if s.cellular), total, mix.cellular_share, "cellular"
        )
        self._assert_fraction(
            sum(1 for s in sessions if s.leech), total, mix.leech_share, "leech"
        )

    def test_zipf_head_title_dominates(self) -> None:
        sessions = self._pooled_sessions()
        titles = [s.title for s in sessions]
        counts = [titles.count(i) for i in range(self.MIX_SPEC.catalog.titles)]
        assert counts[0] == max(counts)
        assert counts[0] < len(sessions)  # but the tail is populated
