"""Spec-layer properties: serialisation, digests, validation, loading."""

from __future__ import annotations

import json

import pytest

from repro.scenarios.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    arrival_types,
)
from repro.scenarios.planner import SCENARIO_PRESETS, load_scenario
from repro.scenarios.spec import (
    CatalogShape,
    PopulationMix,
    ScenarioSpec,
    SessionModel,
)
from repro.util.errors import ConfigurationError

from tests.scenarios.gen import random_specs


class TestRoundTrip:
    """spec → JSON → spec must be a digest fixed point."""

    @pytest.mark.parametrize("spec", random_specs(25, "roundtrip"), ids=lambda s: s.name)
    def test_random_specs_round_trip(self, spec: ScenarioSpec) -> None:
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.to_dict() == spec.to_dict()
        assert rebuilt.digest() == spec.digest()
        # and the round trip of the round trip is still fixed
        assert ScenarioSpec.from_json(rebuilt.to_json()).digest() == spec.digest()

    @pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
    def test_presets_round_trip(self, name: str) -> None:
        spec = SCENARIO_PRESETS[name]()
        assert spec.name == name
        assert ScenarioSpec.from_json(spec.to_json()).digest() == spec.digest()

    def test_canonical_json_is_sorted_and_compact(self) -> None:
        text = SCENARIO_PRESETS["steady"]().to_json()
        parsed = json.loads(text)
        assert text == json.dumps(parsed, sort_keys=True, separators=(",", ":"))

    def test_arrival_kinds_all_dispatch(self) -> None:
        for kind, cls in arrival_types().items():
            process = cls()
            assert process.kind == kind
            assert ArrivalProcess.from_dict(process.to_dict()) == process


class TestLoading:
    """load_scenario resolves presets and JSON files."""

    def test_preset_by_name(self) -> None:
        assert load_scenario("flash-crowd").arrivals.kind == "flash_crowd"

    def test_unknown_preset_raises(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown scenario preset"):
            load_scenario("no-such-preset")

    def test_json_file_round_trip(self, tmp_path) -> None:
        spec = SCENARIO_PRESETS["cgnat-heavy"]()
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert load_scenario(str(path)).digest() == spec.digest()

    def test_unknown_arrival_kind_raises(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown arrival kind"):
            ArrivalProcess.from_dict({"kind": "lunar"})


class TestValidation:
    """Invalid specs fail loudly at construction time."""

    def test_mix_normalises_to_one(self) -> None:
        mix = PopulationMix(nat_mix={"full_cone": 2.0, "symmetric": 6.0})
        assert sum(mix.nat_mix.values()) == pytest.approx(1.0)
        assert mix.nat_mix["symmetric"] == pytest.approx(0.75)

    def test_unknown_nat_kind_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown NAT kind"):
            PopulationMix(nat_mix={"carrier_pigeon": 1.0})

    def test_empty_mix_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="must not be empty"):
            PopulationMix(region_mix={})

    def test_negative_weight_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match=">= 0"):
            PopulationMix(nat_mix={"full_cone": -1.0, "symmetric": 2.0})

    def test_bad_session_lengths_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="min_watch_sec"):
            SessionModel(mean_watch_sec=5.0, min_watch_sec=10.0)

    def test_probabilities_bounded(self) -> None:
        with pytest.raises(ConfigurationError, match="abandon_prob"):
            SessionModel(abandon_prob=1.5)

    def test_live_catalog_has_one_channel(self) -> None:
        with pytest.raises(ConfigurationError, match="exactly one channel"):
            CatalogShape(kind="live", titles=3)

    def test_bad_catalog_kind(self) -> None:
        with pytest.raises(ConfigurationError, match="live.*vod"):
            CatalogShape(kind="broadcast")

    def test_nonpositive_horizon_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="horizon"):
            ScenarioSpec(horizon=0.0)

    def test_bad_arrival_rates_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate_per_min=0.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(base_rate_per_min=5.0, peak_rate_per_min=1.0)
        with pytest.raises(ConfigurationError):
            FlashCrowdArrivals(spike_width_sec=0.0)
