"""Replay properties: same seed, same timeline — in any process layout.

The scenario layer's whole value is that "the flash crowd at seed S"
means the same audience everywhere. These tests pin that: timeline
digests are a pure function of (spec, seed), survive spec JSON round
trips and dict-ordering perturbations, and the scenario-matrix
experiment produces identical result digests at ``--jobs 1`` vs
``--jobs 4`` (separate worker processes, separate hash seeds).
"""

from __future__ import annotations

import pytest

import repro.experiments  # noqa: F401  - triggers @experiment registration
from repro.harness import registry
from repro.harness.runner import RunRequest, Runner
from repro.scenarios.planner import SCENARIO_PRESETS
from repro.scenarios.spec import PopulationMix, ScenarioSpec
from repro.scenarios.timeline import materialize
from repro.util.rand import DeterministicRandom

from tests.scenarios.gen import BASE_SEED, random_specs


class TestTimelineReplay:
    """materialize() is a pure function of (spec, seed)."""

    @pytest.mark.parametrize("spec", random_specs(10, "replay"), ids=lambda s: s.name)
    def test_same_seed_identical_digest(self, spec: ScenarioSpec) -> None:
        first = materialize(spec, DeterministicRandom(BASE_SEED))
        second = materialize(spec, DeterministicRandom(BASE_SEED))
        assert first.digest() == second.digest()
        assert first.to_dict() == second.to_dict()

    @pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
    def test_presets_replay_after_json_round_trip(self, name: str) -> None:
        spec = SCENARIO_PRESETS[name]()
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert materialize(spec, DeterministicRandom(2024)).digest() == materialize(
            rebuilt, DeterministicRandom(2024)
        ).digest()

    def test_digest_independent_of_mix_insertion_order(self) -> None:
        forward = ScenarioSpec(
            name="order",
            population=PopulationMix(
                nat_mix={"full_cone": 0.6, "symmetric": 0.4},
                region_mix={"US": 0.7, "DE": 0.3},
            ),
        )
        backward = ScenarioSpec(
            name="order",
            population=PopulationMix(
                nat_mix={"symmetric": 0.4, "full_cone": 0.6},
                region_mix={"DE": 0.3, "US": 0.7},
            ),
        )
        assert forward.digest() == backward.digest()
        assert materialize(forward, DeterministicRandom(7)).digest() == materialize(
            backward, DeterministicRandom(7)
        ).digest()

    def test_different_seeds_differ(self) -> None:
        spec = SCENARIO_PRESETS["steady"]()
        assert materialize(spec, DeterministicRandom(1)).digest() != materialize(
            spec, DeterministicRandom(2)
        ).digest()


class TestMatrixJobsReplay:
    """scenario-matrix digests match across process parallelism."""

    def _request(self) -> RunRequest:
        params = dict(registry.get("scenario-matrix").resolve_params(quick=True))
        params.update({"scenarios": "steady,cgnat-heavy", "faults": "churn"})
        return RunRequest("scenario-matrix", 2024, params)

    def test_jobs_1_vs_4_identical_digests(self) -> None:
        request = self._request()
        serial = Runner(jobs=1).run([request] * 2)
        parallel = Runner(jobs=4).run([request] * 4)
        digests = {o.record.result_digest for o in serial + parallel}
        assert all(o.record.ok for o in serial + parallel)
        assert len(digests) == 1, digests

    def test_single_preset_cells_match_full_matrix_cells(self) -> None:
        # Cells are independently seeded, so running one preset alone
        # must reproduce exactly the cells the full matrix computes.
        base = dict(registry.get("scenario-matrix").resolve_params(quick=True))
        solo = Runner(jobs=1).run(
            [RunRequest("scenario-matrix", 2024, {**base, "scenarios": "steady", "faults": "churn"})]
        )[0]
        both = Runner(jobs=1).run(
            [
                RunRequest(
                    "scenario-matrix",
                    2024,
                    {**base, "scenarios": "steady,flash-crowd", "faults": "churn"},
                )
            ]
        )[0]
        solo_cells = solo.result_dict["cells"]
        both_cells = [c for c in both.result_dict["cells"] if c["scenario"] == "steady"]
        assert solo_cells == both_cells
