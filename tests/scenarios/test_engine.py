"""Engine + factory integration: scenarios drive real analyzer peers."""

from __future__ import annotations

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.net.addresses import IpClass, classify_ip
from repro.pdn.provider import PEER5
from repro.scenarios.arrivals import PoissonArrivals
from repro.scenarios.engine import ScenarioEngine, SwarmViewerFactory
from repro.scenarios.spec import (
    CatalogShape,
    PopulationMix,
    ScenarioSpec,
    SessionModel,
)
from repro.scenarios.timeline import materialize


def _run_scenario(spec: ScenarioSpec, seed: str, max_peers: int | None = None):
    """Materialise ``spec`` and replay it against a live test bed."""
    env = Environment(seed=seed)
    bed = build_test_bed(
        env, PEER5, video_segments=6, segment_seconds=2.0, segment_bytes=20_000,
        live=spec.catalog.kind == "live",
    )
    analyzer = PdnAnalyzer(env)
    timeline = materialize(spec, env.rand)
    factory = SwarmViewerFactory(analyzer, bed, spec)
    engine = ScenarioEngine(
        env.loop, timeline, factory.create, factory.close,
        on_action=factory.on_action, max_peers=max_peers,
    ).start()
    env.run(spec.horizon + 5.0)
    engine.close_all()
    return env, analyzer, timeline, factory, engine


class TestSwarmViewerFactory:
    def test_cgnat_viewers_get_shared_space_external_ips(self) -> None:
        spec = ScenarioSpec(
            name="all-cgnat",
            horizon=20.0,
            arrivals=PoissonArrivals(rate_per_min=20.0),
            session=SessionModel(mean_watch_sec=30.0, min_watch_sec=5.0),
            population=PopulationMix(nat_mix={"cgnat": 1.0}, region_mix={"US": 1.0}),
            max_viewers=5,
        )
        env, analyzer, timeline, factory, engine = _run_scenario(spec, "cgnat-test")
        assert factory.created, "expected at least one swarm viewer"
        for planned, peer, _session in factory.created:
            assert planned.nat == "cgnat"
            assert classify_ip(peer.browser.host.public_ip) is IpClass.SHARED_NAT
        # shared-space addresses are unique and routable inside the sim
        ips = [peer.browser.host.public_ip for _, peer, _ in factory.created]
        assert len(set(ips)) == len(ips)

    def test_leech_viewers_cannot_upload(self) -> None:
        spec = ScenarioSpec(
            name="all-leech",
            horizon=20.0,
            arrivals=PoissonArrivals(rate_per_min=20.0),
            session=SessionModel(mean_watch_sec=30.0, min_watch_sec=5.0),
            population=PopulationMix(
                nat_mix={"full_cone": 1.0}, region_mix={"US": 1.0}, leech_share=1.0
            ),
            max_viewers=4,
        )
        _env, _analyzer, _timeline, factory, _engine = _run_scenario(spec, "leech-test")
        assert factory.created
        for planned, _peer, session in factory.created:
            assert planned.leech
            if session.sdk is not None:
                assert session.sdk.policy.max_upload_bytes_per_sec == 0.0
                assert session.sdk.stats.p2p_requests_served == 0

    def test_cellular_viewers_marked(self) -> None:
        spec = ScenarioSpec(
            name="all-cellular",
            horizon=15.0,
            arrivals=PoissonArrivals(rate_per_min=20.0),
            session=SessionModel(mean_watch_sec=30.0, min_watch_sec=5.0),
            population=PopulationMix(
                nat_mix={"full_cone": 1.0}, region_mix={"US": 1.0}, cellular_share=1.0
            ),
            max_viewers=3,
        )
        _env, _analyzer, _timeline, factory, _engine = _run_scenario(spec, "cell-test")
        assert factory.created
        for _planned, peer, _session in factory.created:
            assert peer.browser.connection_type == "cellular"

    def test_vod_tail_titles_become_background(self) -> None:
        spec = ScenarioSpec(
            name="tail",
            horizon=25.0,
            arrivals=PoissonArrivals(rate_per_min=30.0),
            session=SessionModel(mean_watch_sec=30.0, min_watch_sec=5.0),
            catalog=CatalogShape(kind="vod", titles=6, zipf_s=0.2),
            max_viewers=12,
        )
        _env, _analyzer, timeline, factory, engine = _run_scenario(spec, "tail-test")
        off_title = sum(1 for s in timeline.sessions if s.title != 0)
        assert off_title > 0, "zipf_s=0.2 over 6 titles should spread the audience"
        # no max_peers: every off-title session is background, the rest join
        assert engine.background == off_title
        assert engine.joins == len(timeline.sessions) - off_title == len(factory.created)

    def test_engine_lifecycle_balances_and_releases_containers(self) -> None:
        spec = ScenarioSpec(
            name="balance",
            horizon=20.0,
            arrivals=PoissonArrivals(rate_per_min=25.0),
            session=SessionModel(mean_watch_sec=10.0, min_watch_sec=2.0, abandon_prob=0.3),
            max_viewers=8,
        )
        _env, analyzer, _timeline, factory, engine = _run_scenario(
            spec, "balance-test", max_peers=4
        )
        assert engine.joins == engine.leaves == len(factory.created)
        assert not engine.active
        assert analyzer.peers == []  # every container was closed and deregistered

    def test_seek_actions_reach_players(self) -> None:
        spec = ScenarioSpec(
            name="seeky",
            horizon=25.0,
            arrivals=PoissonArrivals(rate_per_min=25.0),
            session=SessionModel(
                mean_watch_sec=30.0, min_watch_sec=10.0, seek_rate_per_min=20.0
            ),
            catalog=CatalogShape(kind="vod", titles=1),
            max_viewers=5,
        )
        _env, _analyzer, timeline, factory, _engine = _run_scenario(spec, "seek-test")
        planned_seeks = sum(
            len([a for a in s.actions if a.kind == "seek"]) for s in timeline.sessions
        )
        assert planned_seeks > 0
        executed = sum(
            session.player.stats.seeks
            for _p, _peer, session in factory.created
            if session.player is not None
        )
        assert executed > 0

    def test_max_peers_zero_creates_nothing(self) -> None:
        spec = ScenarioSpec(
            name="closed-door",
            horizon=10.0,
            arrivals=PoissonArrivals(rate_per_min=30.0),
            session=SessionModel(mean_watch_sec=30.0, min_watch_sec=5.0),
            max_viewers=5,
        )
        _env, analyzer, timeline, factory, engine = _run_scenario(
            spec, "door-test", max_peers=0
        )
        assert factory.created == []
        assert engine.joins == 0
        assert engine.overflow == len(timeline.sessions)
