"""Tests for the content pollution attacks (§IV-C)."""

import pytest

from repro.attacks.pollution import DirectContentPollutionTest, VideoSegmentPollutionTest
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.provider import PEER5, STREAMROOT, VIBLAST, private_profile


class TestDirectPollution:
    def test_blocked_by_slow_start(self):
        env = Environment(seed=91)
        bed = build_test_bed(env, PEER5)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(DirectContentPollutionTest(bed))
        verdict = report.verdicts[0]
        assert not verdict.triggered
        # Either the consistency check banned the attacker outright, or
        # no polluted byte ever reached the victim — both are "blocked".
        assert (
            verdict.details["attacker_detected_and_banned"]
            or verdict.details["victim_p2p_bytes"] == 0
        )
        assert verdict.details["polluted_played"] == 0
        assert verdict.details["authentic_played"] == len(bed.video.segments)
        analyzer.teardown()


class TestSegmentPollution:
    @pytest.mark.parametrize("profile", [PEER5, STREAMROOT, VIBLAST])
    def test_succeeds_on_all_public_providers(self, profile):
        env = Environment(seed=92)
        bed = build_test_bed(env, profile)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(VideoSegmentPollutionTest(bed))
        verdict = report.verdicts[0]
        assert verdict.triggered, verdict.details
        assert verdict.details["polluted_played"] > 0
        assert not verdict.details["attacker_detected_and_banned"]
        analyzer.teardown()

    def test_slow_start_segments_stay_authentic(self):
        env = Environment(seed=93)
        bed = build_test_bed(env, PEER5)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(VideoSegmentPollutionTest(bed))
        played = report.artifacts["played_digests"]
        authentic = [s.digest for s in bed.video.segments]
        slow_start = bed.provider.profile.slow_start_segments
        assert played[:slow_start] == authentic[:slow_start]
        analyzer.teardown()

    def test_victim_received_polluted_bytes_via_p2p(self):
        env = Environment(seed=94)
        bed = build_test_bed(env, PEER5)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(VideoSegmentPollutionTest(bed))
        assert report.verdicts[0].details["victim_p2p_bytes"] > 0
        analyzer.teardown()

    def test_private_drm_blocks_playback_but_not_transfer(self):
        """The Mango TV finding: DTLS transfer happens, playback stays clean."""
        env = Environment(seed=95)
        profile = private_profile("mgtv.example", "signal.mgtv.example", video_bound_tokens=False)
        bed = build_test_bed(env, profile)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(VideoSegmentPollutionTest(bed))
        verdict = report.verdicts[0]
        assert not verdict.triggered
        assert verdict.details["victim_p2p_bytes"] > 0  # transfer observed
        assert verdict.details["authentic_played"] == len(bed.video.segments)
        analyzer.teardown()
