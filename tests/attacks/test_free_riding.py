"""Tests for the free-riding attacks (§IV-B)."""

import pytest

from repro.attacks.free_riding import (
    ApiKeyProbe,
    CrossDomainAttackTest,
    DomainSpoofingAttackTest,
    build_attacker_site,
)
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.provider import PEER5, STREAMROOT, VIBLAST


class TestApiKeyProbe:
    def test_default_open_key_accepts_attacker(self):
        env = Environment(seed=81)
        bed = build_test_bed(env, PEER5)
        ok, reason = ApiKeyProbe(env, bed.provider).probe(bed.api_key)
        assert ok

    def test_allowlisted_key_rejects_attacker(self):
        env = Environment(seed=82)
        bed = build_test_bed(env, PEER5, allowed_domains={"www.test.com"})
        ok, reason = ApiKeyProbe(env, bed.provider).probe(bed.api_key)
        assert not ok
        assert "allowlist" in reason

    def test_spoofing_bypasses_allowlist(self):
        env = Environment(seed=83)
        bed = build_test_bed(env, PEER5, allowed_domains={"www.test.com"})
        ok, _ = ApiKeyProbe(env, bed.provider).probe(bed.api_key, spoof_domain="www.test.com")
        assert ok

    def test_viblast_cross_domain_blocked_spoof_works(self):
        env = Environment(seed=84)
        bed = build_test_bed(env, VIBLAST)
        probe = ApiKeyProbe(env, bed.provider)
        assert not probe.probe(bed.api_key)[0]
        assert probe.probe(bed.api_key, spoof_domain="www.test.com")[0]

    def test_probe_generates_no_billing(self):
        """The paper's ethics: auth-only, no transfer, no cost."""
        env = Environment(seed=85)
        bed = build_test_bed(env, PEER5)
        account = bed.provider.billing.account(bed.customer_id)
        ApiKeyProbe(env, bed.provider).probe(bed.api_key)
        assert account.p2p_bytes == 0


class TestAttackerSite:
    def test_attacker_site_streams_own_video(self):
        env = Environment(seed=86)
        bed = build_test_bed(env, PEER5)
        site = build_attacker_site(env, bed.provider, bed.api_key)
        page = site.landing
        assert page.embed.credential == bed.api_key
        assert "attacker" in page.embed.video_url


class TestFullAttacks:
    def test_cross_domain_attack_bills_victim(self):
        env = Environment(seed=87)
        bed = build_test_bed(env, PEER5)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(CrossDomainAttackTest(bed, watch=60.0))
        verdict = report.verdicts[0]
        assert verdict.triggered
        assert verdict.details["p2p_bytes_generated"] > 0
        assert verdict.details["victim_billed_extra_bytes"] > 0
        analyzer.teardown()

    def test_cross_domain_blocked_by_allowlist(self):
        env = Environment(seed=88)
        bed = build_test_bed(env, PEER5, allowed_domains={"www.test.com"})
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(CrossDomainAttackTest(bed, watch=30.0))
        assert not report.verdicts[0].triggered
        analyzer.teardown()

    @pytest.mark.parametrize("profile", [PEER5, STREAMROOT, VIBLAST])
    def test_spoofing_beats_every_provider(self, profile):
        env = Environment(seed=89)
        bed = build_test_bed(env, profile, allowed_domains={"www.test.com"})
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(DomainSpoofingAttackTest(bed, watch=60.0))
        assert report.verdicts[0].triggered
        analyzer.teardown()
