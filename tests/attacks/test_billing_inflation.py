"""§IV-B economics: inflating the victim's bill under both pricing models."""

import pytest

from repro.attacks.harvesting import GhostViewer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.provider import PEER5, VIBLAST
from repro.privacy.viewers import ViewerDescriptor
from repro.proxy.mitm import MitmProxy
from repro.streaming.http import HttpClient


class TestViewerHourInflation:
    """Viblast bills $0.01 per concurrent viewer hour: an attacker only
    has to *park sessions* on the stolen key — no traffic needed."""

    def test_parked_sessions_accrue_viewer_hours(self):
        env = Environment(seed=201)
        bed = build_test_bed(env, VIBLAST)
        account = bed.provider.billing.account(bed.customer_id)
        bed.provider.signaling.session_ttl = 1e9  # attack bots ping; modeled

        # The attacker spoofs the victim's domain (Viblast forces an
        # allowlist) and parks 20 fake viewers for two hours.
        spoof = MitmProxy("spoof")
        spoof.spoof_domain(bed.site.domain)
        for i in range(20):
            http = HttpClient(env.urlspace, client_ip=f"198.51.100.{i + 1}", proxy=spoof)
            import json

            response = http.post(
                f"https://{bed.provider.profile.signaling_host}/v2/join",
                json.dumps({"credential": bed.api_key, "video_url": "x"}).encode(),
                headers={"Origin": "https://attacker.example"},
            )
            assert response.ok
        env.run(2 * 3600.0)
        bed.provider.signaling.settle_all()
        assert account.viewer_seconds == pytest.approx(20 * 2 * 3600.0)
        assert account.cost == pytest.approx(20 * 2 * 0.01)  # $0.40 of damage

    def test_cross_domain_blocked_means_no_cost(self):
        env = Environment(seed=202)
        bed = build_test_bed(env, VIBLAST)
        account = bed.provider.billing.account(bed.customer_id)
        import json

        http = HttpClient(env.urlspace, client_ip="198.51.100.50")
        response = http.post(
            f"https://{bed.provider.profile.signaling_host}/v2/join",
            json.dumps({"credential": bed.api_key, "video_url": "x"}).encode(),
            headers={"Origin": "https://attacker.example"},
        )
        assert response.status == 403
        env.run(3600.0)
        bed.provider.signaling.settle_all()
        assert account.viewer_seconds == 0.0


class TestTrafficInflation:
    """Peer5/Streamroot bill by P2P bytes: the attacker's own swarm
    transfers count against the victim's 50 TB allotment."""

    def test_attacker_swarm_traffic_billed_to_victim(self):
        from repro.attacks.free_riding import CrossDomainAttackTest
        from repro.core.analyzer import PdnAnalyzer
        from repro.pdn.billing import PEER5_PRICE_PER_BYTE

        env = Environment(seed=203)
        bed = build_test_bed(env, PEER5)
        account = bed.provider.billing.account(bed.customer_id)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(CrossDomainAttackTest(bed, watch=60.0))
        billed = report.verdicts[0].details["victim_billed_extra_bytes"]
        assert billed > 0
        assert account.cost == pytest.approx(account.p2p_bytes * PEER5_PRICE_PER_BYTE)
        analyzer.teardown()
