"""Tests for the replay attack and IM flooding (§V-B robustness)."""

import pytest

from repro.attacks.malicious_sdk import ImFlooder, ReplayPeer
from repro.core.testbed import build_test_bed
from repro.defenses.integrity import ClientIntegrity, IntegrityCoordinator
from repro.environment import Environment
from repro.pdn.provider import PEER5
from repro.streaming.player import VideoPlayer


def make_world(seed, integrity=False, quorum=1):
    env = Environment(seed=seed)
    bed = build_test_bed(env, PEER5, video_segments=10, segment_seconds=3.0)
    client_integrity = None
    coordinator = None
    if integrity:
        coordinator = IntegrityCoordinator(
            env.loop, env.rand.fork("im"), bed.provider, env.urlspace, quorum=quorum
        ).install()
        client_integrity = ClientIntegrity(env.loop, coordinator)
    return env, bed, client_integrity, coordinator


def launch_replay_peer(env, bed, integrity):
    host = env.add_viewer_host("replayer", "US")
    attacker = ReplayPeer(
        loop=env.loop,
        rand=env.rand,
        host=host,
        http=env.http_client(host),
        provider=bed.provider,
        credential=bed.api_key,
        page_origin=f"https://{bed.site.domain}",
        video_url=bed.video_url,
        rtc_config=env.rtc_config(),
        name="replayer",
        integrity=None,  # the attacker doesn't run the defense
    )
    assert attacker.start()
    # Legitimately download the whole video (recording segments + SIMs).
    base = bed.video_url.rsplit("/", 1)[0] + "/"
    for segment in bed.video.segments:
        attacker.fetch_segment(base, segment.filename, segment.index, lambda d, s: None)
    return attacker


def launch_victim(env, bed, integrity):
    from repro.pdn.sdk import PdnClient

    host = env.add_viewer_host("victim", "US")
    sdk = PdnClient(
        loop=env.loop,
        rand=env.rand,
        host=host,
        http=env.http_client(host),
        provider=bed.provider,
        credential=bed.api_key,
        page_origin=f"https://{bed.site.domain}",
        video_url=bed.video_url,
        rtc_config=env.rtc_config(),
        name="victim",
        integrity=integrity,
    )
    assert sdk.start()
    player = VideoPlayer(env.loop, sdk, bed.video_url, name="victim")
    player.start()
    return sdk, player


class TestReplayAttack:
    def test_replay_succeeds_without_integrity_checking(self):
        """No SIM verification: the victim renders authentic-but-wrong
        segments — content replayed out of position."""
        env, bed, integrity, _ = make_world(171, integrity=False)
        attacker = launch_replay_peer(env, bed, None)
        env.run(5.0)
        victim_sdk, player = launch_victim(env, bed, None)
        env.run(60.0)
        assert player.finished
        assert attacker.replays_served > 0
        authentic_in_order = [s.digest for s in bed.video.segments]
        played = player.stats.played_digests()
        assert played != authentic_in_order  # order corrupted by replays
        # every replayed digest IS authentic content — just misplaced
        assert set(played) <= set(authentic_in_order)

    def test_replay_blocked_by_position_bound_im(self):
        """§V-B: the IM binds (content, video, position); the recorded
        segment fails verification at the wrong index and the replayer
        is banned by the victim."""
        env, bed, integrity, coordinator = make_world(172, integrity=True)
        attacker = launch_replay_peer(env, bed, None)
        env.run(5.0)
        victim_sdk, player = launch_victim(env, bed, integrity)
        env.run(80.0)
        assert player.finished
        assert player.stats.played_digests() == [s.digest for s in bed.video.segments]
        if attacker.replays_served:
            assert integrity.rejections > 0
            assert victim_sdk.stats.neighbors_banned > 0


class TestImFlooding:
    def test_flooder_banned_and_cost_bounded(self):
        env, bed, integrity, coordinator = make_world(173, integrity=True, quorum=2)
        host = env.add_viewer_host("flooder", "US")
        from repro.pdn.sdk import PdnClient

        flood_sdk = PdnClient(
            loop=env.loop, rand=env.rand, host=host, http=env.http_client(host),
            provider=bed.provider, credential=bed.api_key,
            page_origin=f"https://{bed.site.domain}", video_url=bed.video_url,
            rtc_config=env.rtc_config(), name="flooder",
        )
        assert flood_sdk.start()
        # an honest peer reports authentic IMs first
        from repro.defenses.integrity import compute_im, content_id

        for segment in bed.video.segments:
            coordinator.receive_report(
                "honest", bed.video_url, segment.index,
                compute_im(segment.data, content_id(bed.video_url, ''), segment.index),
            )
        flooder = ImFlooder(flood_sdk)
        flooder.flood(range(len(bed.video.segments)), rounds=10)
        assert flooder.reports_sent == 100
        assert coordinator.cdn_fetches <= len(bed.video.segments)
        assert flood_sdk.peer_id in coordinator.peers_blacklisted
        # the blacklisted peer is cut off from signaling entirely
        assert flood_sdk.peer_id in bed.provider.signaling.blacklist
