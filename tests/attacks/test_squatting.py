"""Tests for the resource-squatting measurement and consent audit."""

from repro.attacks.squatting import ResourceSquattingTest, audit_consent
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.policy import ClientPolicy
from repro.pdn.provider import PEER5
from repro.web.page import WebPage, Website


class TestConsentAudit:
    def test_default_policy_fails_audit(self):
        audit = audit_consent("site.com", ClientPolicy())
        assert not audit.informs_viewers
        assert not audit.allows_user_disable

    def test_consenting_policy_passes(self):
        policy = ClientPolicy(show_consent_dialog=True, allow_user_disable=True)
        audit = audit_consent("site.com", policy)
        assert audit.informs_viewers

    def test_terms_of_use_mention_detected(self):
        site = Website("site.com")
        site.add_page(WebPage("/terms", extra_html="<p>We use a P2P network to deliver video.</p>"))
        audit = audit_consent("site.com", ClientPolicy(), site)
        assert audit.mentions_p2p_in_terms
        assert audit.informs_viewers

    def test_silent_site_has_no_mention(self):
        site = Website("site.com")
        site.add_page(WebPage("/", title="home"))
        assert not audit_consent("site.com", ClientPolicy(), site).mentions_p2p_in_terms


class TestResourceSquattingTest:
    def test_overhead_measured_against_baseline(self):
        env = Environment(seed=111)
        bed = build_test_bed(env, PEER5, segment_bytes=1_000_000)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(ResourceSquattingTest(bed, watch=45.0))
        verdict = report.verdicts[0]
        assert verdict.triggered  # overhead without consent
        details = verdict.details
        assert 1.05 < details["cpu_overhead_ratio"] < 1.35
        assert 1.03 < details["memory_overhead_ratio"] < 1.25
        assert details["consent_dialog"] is False
        analyzer.teardown()

    def test_not_triggered_when_viewers_informed(self):
        env = Environment(seed=112)
        policy = ClientPolicy(show_consent_dialog=True, allow_user_disable=True)
        bed = build_test_bed(env, PEER5, segment_bytes=500_000, policy=policy)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(ResourceSquattingTest(bed, watch=40.0))
        # overhead still exists, but consent was requested -> not squatting
        assert not report.verdicts[0].triggered
        analyzer.teardown()
