"""Tests for IP harvesting and the controlled leak test (§IV-D)."""

from repro.attacks.harvesting import GhostViewer, HarvestingPeer, IpLeakTest
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.policy import ClientPolicy
from repro.pdn.provider import PEER5, PdnProvider
from repro.privacy.viewers import ViewerDescriptor


def make_provider_world(seed=101):
    env = Environment(seed=seed)
    provider = PdnProvider(env.loop, env.rand, PEER5)
    provider.install(env.urlspace)
    key = provider.signup_customer("site.com", None, ClientPolicy())
    return env, provider, key


def descriptor(ip, n=1, session=600.0):
    return ViewerDescriptor(n, ip, "US", session, False)


class TestGhostViewer:
    def test_joins_and_leaves(self):
        env, provider, key = make_provider_world()
        ghost = GhostViewer(env, provider, key.key, "https://cdn/v.m3u8",
                            descriptor("9.9.9.9", session=60.0), "https://site.com")
        assert ghost.joined
        assert provider.signaling.swarm_size("site.com|https://cdn/v.m3u8") == 1
        env.run(120.0)
        assert provider.signaling.swarm_size("site.com|https://cdn/v.m3u8") == 0

    def test_rejected_join_handled(self):
        env, provider, key = make_provider_world()
        ghost = GhostViewer(env, provider, "bad-key", "https://cdn/v.m3u8",
                            descriptor("9.9.9.9"), "https://site.com")
        assert not ghost.joined


class TestHarvestingPeer:
    def test_collects_swarm_ips(self):
        env, provider, key = make_provider_world()
        for i in range(12):
            GhostViewer(env, provider, key.key, "https://cdn/v.m3u8",
                        descriptor(f"9.9.9.{i}", i), "https://site.com")
        harvester = HarvestingPeer(env, provider, key.key, "https://cdn/v.m3u8",
                                   origin="https://site.com", poll_interval=5.0)
        assert harvester.start()
        env.run(60.0)
        harvester.stop()
        collected = harvester.unique_ips()
        assert len(collected) >= 10  # repeated polls cover the swarm

    def test_windows_limit_collection(self):
        env, provider, key = make_provider_world()
        provider.signaling.session_ttl = 1e9  # ghosts don't keepalive
        for i in range(5):
            GhostViewer(env, provider, key.key, "https://cdn/v.m3u8",
                        descriptor(f"9.9.9.{i}", i, session=10_000.0), "https://site.com")
        harvester = HarvestingPeer(env, provider, key.key, "https://cdn/v.m3u8",
                                   origin="https://site.com", poll_interval=5.0,
                                   windows=[(1000.0, 1100.0)])
        harvester.start()
        env.run(500.0)  # before the window
        assert harvester.unique_ips() == set()
        env.run(700.0)  # inside the window now
        assert harvester.unique_ips()

    def test_empty_swarm_yields_nothing(self):
        env, provider, key = make_provider_world()
        harvester = HarvestingPeer(env, provider, key.key, "https://cdn/v.m3u8",
                                   origin="https://site.com")
        harvester.start()
        env.run(60.0)
        assert harvester.unique_ips() == set()


class TestIpLeakTest:
    def test_cross_continent_leak(self):
        env = Environment(seed=102)
        bed = build_test_bed(env, PEER5, video_segments=6, segment_seconds=3.0)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(IpLeakTest(bed, watch=30.0))
        verdict = report.verdicts[0]
        assert verdict.triggered
        assert verdict.details["us_collected_cn_ip"]
        assert verdict.details["cn_collected_us_ip"]
        analyzer.teardown()
