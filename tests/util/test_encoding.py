"""Tests for encoding helpers, including property-based round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.util.encoding import b64url_decode, b64url_encode, chunk_bytes, xor_bytes


class TestB64Url:
    def test_known_value_unpadded(self):
        # 'f' -> 'Zg' in unpadded base64url (JWT convention)
        assert b64url_encode(b"f") == "Zg"

    @given(st.binary(max_size=512))
    def test_round_trip(self, data: bytes):
        assert b64url_decode(b64url_encode(data)) == data

    def test_no_padding_characters(self):
        for n in range(1, 10):
            assert "=" not in b64url_encode(b"x" * n)


class TestXorBytes:
    def test_self_inverse(self):
        a, b = b"\x01\x02\x03", b"\xff\x00\x10"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")


class TestChunkBytes:
    def test_exact_multiple(self):
        assert chunk_bytes(b"abcdef", 3) == [b"abc", b"def"]

    def test_remainder(self):
        assert chunk_bytes(b"abcde", 2) == [b"ab", b"cd", b"e"]

    def test_empty_input_yields_one_empty_chunk(self):
        assert chunk_bytes(b"", 4) == [b""]

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            chunk_bytes(b"abc", 0)

    @given(st.binary(max_size=300), st.integers(min_value=1, max_value=64))
    def test_reassembly(self, data: bytes, size: int):
        assert b"".join(chunk_bytes(data, size)) == data
