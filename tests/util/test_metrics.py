"""Tests for metrics primitives."""

import pytest

from repro.util.metrics import Counter, Gauge, MetricRegistry, TimeSeries


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestTimeSeries:
    def test_summary_stats(self):
        ts = TimeSeries("cpu")
        for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            ts.record(float(t), v)
        assert ts.mean() == 2.5
        assert ts.max() == 4.0
        assert ts.min() == 1.0
        assert ts.last() == 4.0
        assert ts.total() == 10.0

    def test_percentile_nearest_rank(self):
        ts = TimeSeries()
        for v in range(1, 101):
            ts.record(0.0, float(v))
        assert ts.percentile(50) == 50.0
        assert ts.percentile(95) == 95.0
        assert ts.percentile(100) == 100.0

    def test_percentile_bounds(self):
        ts = TimeSeries()
        ts.record(0, 1)
        with pytest.raises(ValueError):
            ts.percentile(101)

    def test_empty_series_is_safe(self):
        ts = TimeSeries()
        assert ts.mean() == 0.0
        assert ts.stddev() == 0.0
        assert ts.percentile(50) == 0.0


class TestRegistry:
    def test_same_name_same_object(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.series("s") is reg.series("s")

    def test_snapshot_flattens(self):
        reg = MetricRegistry()
        reg.counter("sent").inc(5)
        reg.gauge("depth").set(2)
        reg.series("cpu").record(0.0, 10.0)
        snap = reg.snapshot()
        assert snap["counter.sent"] == 5
        assert snap["gauge.depth"] == 2
        assert snap["series.cpu.mean"] == 10.0
