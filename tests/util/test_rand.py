"""Tests for deterministic randomness."""

from repro.util.rand import DeterministicRandom


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRandom(99)
        b = DeterministicRandom(99)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRandom(1)
        b = DeterministicRandom(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_string_seed_supported(self):
        a = DeterministicRandom("experiment-a")
        b = DeterministicRandom("experiment-a")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)


class TestFork:
    def test_fork_is_deterministic(self):
        a = DeterministicRandom(7).fork("child")
        b = DeterministicRandom(7).fork("child")
        assert a.bytes(16) == b.bytes(16)

    def test_fork_independent_of_parent_consumption(self):
        parent1 = DeterministicRandom(7)
        parent2 = DeterministicRandom(7)
        parent2.random()  # consuming the parent stream...
        # ...must not change what children see
        assert parent1.fork("x").random() == parent2.fork("x").random()

    def test_fork_names_produce_distinct_streams(self):
        parent = DeterministicRandom(7)
        assert parent.fork("a").random() != parent.fork("b").random()


class TestHelpers:
    def test_weighted_pick_respects_zero_weight(self):
        rng = DeterministicRandom(3)
        picks = {rng.weighted_pick([("a", 1.0), ("b", 0.0)]) for _ in range(50)}
        assert picks == {"a"}

    def test_bytes_length(self):
        assert len(DeterministicRandom(0).bytes(33)) == 33

    def test_sample_without_replacement(self):
        rng = DeterministicRandom(5)
        sample = rng.sample(list(range(100)), 10)
        assert len(set(sample)) == 10
