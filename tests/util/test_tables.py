"""Tests for table rendering."""

import pytest

from repro.util.tables import render_kv, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["name", "n"], [["peer5", 10], ["x", 2]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "peer5" in lines[2]
        # all separator dashes line up with header width
        assert len(lines[1]) >= len("name | n") - 1

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_float_formatting(self):
        out = render_table(["v"], [[1.23456]])
        assert "1.23" in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestRenderKv:
    def test_basic(self):
        out = render_kv("stats", [("peers", 3), ("bytes", 1024)])
        assert "peers" in out and "1024" in out
