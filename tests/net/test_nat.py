"""Tests for NAT translation and filtering semantics."""

import pytest

from repro.net.addresses import Endpoint
from repro.net.nat import NatBox, NatType

INTERNAL = Endpoint("192.168.1.2", 5000)
REMOTE_A = Endpoint("9.9.9.9", 1111)
REMOTE_B = Endpoint("8.8.8.8", 2222)
REMOTE_A_OTHER_PORT = Endpoint("9.9.9.9", 3333)


def make(nat_type: NatType) -> NatBox:
    return NatBox("5.5.5.5", nat_type)


class TestMapping:
    def test_cone_reuses_mapping_across_remotes(self):
        nat = make(NatType.FULL_CONE)
        ext1 = nat.outbound(INTERNAL, REMOTE_A)
        ext2 = nat.outbound(INTERNAL, REMOTE_B)
        assert ext1 == ext2

    def test_symmetric_allocates_per_remote(self):
        nat = make(NatType.SYMMETRIC)
        ext1 = nat.outbound(INTERNAL, REMOTE_A)
        ext2 = nat.outbound(INTERNAL, REMOTE_B)
        assert ext1 != ext2

    def test_external_ip_used(self):
        nat = make(NatType.FULL_CONE)
        assert nat.outbound(INTERNAL, REMOTE_A).ip == "5.5.5.5"

    def test_distinct_internal_endpoints_get_distinct_ports(self):
        nat = make(NatType.FULL_CONE)
        other = Endpoint("192.168.1.3", 5000)
        assert nat.outbound(INTERNAL, REMOTE_A) != nat.outbound(other, REMOTE_A)


class TestFiltering:
    def test_full_cone_accepts_anyone(self):
        nat = make(NatType.FULL_CONE)
        ext = nat.outbound(INTERNAL, REMOTE_A)
        assert nat.inbound(ext.port, REMOTE_B) == INTERNAL

    def test_restricted_cone_requires_known_ip(self):
        nat = make(NatType.RESTRICTED_CONE)
        ext = nat.outbound(INTERNAL, REMOTE_A)
        assert nat.inbound(ext.port, REMOTE_A_OTHER_PORT) == INTERNAL  # same IP ok
        assert nat.inbound(ext.port, REMOTE_B) is None  # unknown IP filtered

    def test_port_restricted_requires_exact_remote(self):
        nat = make(NatType.PORT_RESTRICTED_CONE)
        ext = nat.outbound(INTERNAL, REMOTE_A)
        assert nat.inbound(ext.port, REMOTE_A) == INTERNAL
        assert nat.inbound(ext.port, REMOTE_A_OTHER_PORT) is None

    def test_symmetric_filters_everything_but_mapped_remote(self):
        nat = make(NatType.SYMMETRIC)
        ext = nat.outbound(INTERNAL, REMOTE_A)
        assert nat.inbound(ext.port, REMOTE_A) == INTERNAL
        assert nat.inbound(ext.port, REMOTE_A_OTHER_PORT) is None
        assert nat.inbound(ext.port, REMOTE_B) is None

    def test_unmapped_port_filtered(self):
        nat = make(NatType.FULL_CONE)
        assert nat.inbound(49999, REMOTE_A) is None


class TestInternalAllocation:
    def test_allocates_sequential_private_ips(self):
        nat = NatBox("5.5.5.5", NatType.FULL_CONE, subnet_prefix="192.168.7")
        assert nat.allocate_internal_ip() == "192.168.7.2"
        assert nat.allocate_internal_ip() == "192.168.7.3"

    def test_mapping_count(self):
        nat = make(NatType.SYMMETRIC)
        nat.outbound(INTERNAL, REMOTE_A)
        nat.outbound(INTERNAL, REMOTE_B)
        assert nat.mapping_count() == 2
