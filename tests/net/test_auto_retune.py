"""Auto-retune: the send path re-derives wheel geometry on its own.

``Network.send_datagram`` hits :meth:`Network._auto_retune_check` every
:data:`AUTO_RETUNE_CHECK_INTERVAL` datagrams: the first boundary is the
unconditional warm-up retune, later boundaries retune only when the
per-window overflow share crosses :data:`AUTO_RETUNE_OVERFLOW_SHARE`.
Triggers key on the deterministic datagram counter, so they land at
identical simulation moments on every run of a seed.
"""

from __future__ import annotations

import pytest

from repro.net import EventLoop, Network
from repro.net.network import AUTO_RETUNE_CHECK_INTERVAL, AUTO_RETUNE_OVERFLOW_SHARE
from repro.util.rand import DeterministicRandom


def make_network(**kwargs) -> Network:
    return Network(EventLoop(), rand=DeterministicRandom(1), **kwargs)


def count_tunes(net: Network, monkeypatch) -> list[int]:
    """Instrument ``_tune_wheel``; returns a growing call log."""
    calls: list[int] = []
    original = net._tune_wheel

    def spy() -> None:
        calls.append(net.datagrams_sent)
        original()

    monkeypatch.setattr(net, "_tune_wheel", spy)
    return calls


def send_one(net: Network, src, dst_endpoint) -> None:
    net.send_datagram(src, 40000, dst_endpoint, b"x")


class TestWarmupRetune:
    def test_first_boundary_retunes_unconditionally(self, monkeypatch):
        net = make_network()
        a = net.add_host("a", region="us")
        b = net.add_host("b", region="us")
        sock = b.bind_udp(9000)
        calls = count_tunes(net, monkeypatch)

        net.datagrams_sent = AUTO_RETUNE_CHECK_INTERVAL - 2
        send_one(net, a, sock.endpoint)
        assert calls == []  # one short of the boundary
        send_one(net, a, sock.endpoint)
        assert calls == [AUTO_RETUNE_CHECK_INTERVAL]
        assert net._retune_warmed

    def test_boundary_check_is_a_power_of_two_mask(self):
        # The hot path uses `counter & (INTERVAL - 1)`; the constant
        # must stay a power of two or boundaries silently vanish.
        assert AUTO_RETUNE_CHECK_INTERVAL & (AUTO_RETUNE_CHECK_INTERVAL - 1) == 0

    def test_warmup_narrows_geometry_to_observed_band(self):
        net = make_network()
        a = net.add_host("a", region="us")
        b = net.add_host("b", region="us")
        sock = b.bind_udp(9000)
        coarse = (net.loop._wheel_width, net.loop._wheel_slots)

        net.datagrams_sent = AUTO_RETUNE_CHECK_INTERVAL - 1
        send_one(net, a, sock.endpoint)
        narrowed = (net.loop._wheel_width, net.loop._wheel_slots)
        # Same-region traffic only: the band shrinks from the
        # cross-region worst case the constructor assumed.
        assert narrowed[0] < coarse[0]


class TestOverflowThreshold:
    def warmed_network(self, monkeypatch) -> tuple[Network, list[int]]:
        net = make_network()
        net._retune_warmed = True
        calls = count_tunes(net, monkeypatch)
        return net, calls

    def test_quiet_window_does_not_retune(self, monkeypatch):
        net, calls = self.warmed_network(monkeypatch)
        net.loop.wheel_scheduled = 1000
        net.loop.wheel_overflow = 10
        net._auto_retune_check()
        assert calls == []
        # The mark advances so the next window measures fresh deltas.
        assert net._retune_mark == (1000, 10)

    def test_overflow_share_at_threshold_retunes(self, monkeypatch):
        net, calls = self.warmed_network(monkeypatch)
        net._retune_mark = (1000, 10)
        net.loop.wheel_scheduled = 1000 + 75
        net.loop.wheel_overflow = 10 + 25  # exactly 25% of the window
        net._auto_retune_check()
        assert len(calls) == 1
        assert AUTO_RETUNE_OVERFLOW_SHARE == 0.25

    def test_share_is_per_window_not_cumulative(self, monkeypatch):
        # A heavy-overflow past hidden behind the mark must not trigger:
        # only the deltas since the previous boundary count.
        net, calls = self.warmed_network(monkeypatch)
        net._retune_mark = (100, 900)  # a terrible but already-seen past
        net.loop.wheel_scheduled = 100 + 99
        net.loop.wheel_overflow = 900 + 1
        net._auto_retune_check()
        assert calls == []

    def test_empty_window_is_a_no_op(self, monkeypatch):
        net, calls = self.warmed_network(monkeypatch)
        net._auto_retune_check()
        assert calls == []


class TestOptOuts:
    def test_auto_retune_false_disables_checks(self, monkeypatch):
        net = make_network()
        net.auto_retune = False
        calls = count_tunes(net, monkeypatch)
        net._auto_retune_check()
        assert calls == []
        assert not net._retune_warmed

    def test_disabled_wheel_left_alone(self, monkeypatch):
        # tests/chaos/test_timing_wheel.py turns the wheel off outright
        # to prove heap/wheel equivalence; auto-retune must not
        # silently re-enable it.
        net = make_network()
        net.loop.configure_wheel(None, 0)
        calls = count_tunes(net, monkeypatch)
        net._auto_retune_check()
        assert calls == []
        assert not net.loop._wheel_slots

    def test_unchanged_geometry_short_circuits(self):
        # configure_wheel_for_band with the same derived band must not
        # rebuild the wheel (retunes at scale would otherwise churn).
        net = make_network()
        loop = net.loop
        net._tune_wheel()
        geometry = (loop._wheel_width, loop._wheel_slots)
        buckets = loop._wheel  # a rebuild allocates a fresh bucket list
        net._tune_wheel()
        assert (loop._wheel_width, loop._wheel_slots) == geometry
        assert loop._wheel is buckets


class TestCrossRegionBand:
    """Regression: ``latency_between`` must record the cross-region band.

    The send path sets ``_saw_cross_region`` inline, but control-plane
    latency draws go through :meth:`Network.latency_between`. A network
    whose *only* cross-region traffic flows through that slow path used
    to retune to the narrow same-region band once a knob assignment
    cleared the region-pair cache — the flag is what survives the clear.
    """

    def cross_width(self, net: Network) -> float:
        return 2.0 * (net.cross_region_latency + net.jitter) / net.loop._wheel_slots

    def test_slow_path_cross_draw_sets_the_flag(self):
        net = make_network()
        us = net.add_host("a", region="us")
        net.add_host("b", region="eu")
        assert not net._saw_cross_region
        net.latency_between(us, "eu")
        assert net._saw_cross_region

    def test_cached_cross_draw_still_sets_the_flag(self):
        net = make_network()
        us = net.add_host("a", region="us")
        net.latency_between(us, "eu")  # populates the pair cache
        net._saw_cross_region = False
        net.latency_between(us, "eu")  # cache hit must set it again
        assert net._saw_cross_region

    def test_same_region_and_regionless_draws_do_not(self):
        net = make_network()
        us = net.add_host("a", region="us")
        bare = net.add_host("c")
        net.latency_between(us, "us")
        net.latency_between(us, None)
        net.latency_between(bare, "eu")
        assert not net._saw_cross_region

    def test_retune_after_knob_clear_keeps_cross_region_geometry(self):
        net = make_network()
        us = net.add_host("a", region="us")
        net.latency_between(us, "eu")  # only cross-region signal: slow path
        net.datagrams_sent = 1  # same-region in-band traffic happened
        # Assigning a knob clears the region-pair cache and retunes; the
        # wheel must still be sized for the cross-region band.
        net.base_latency = net.base_latency
        assert net.loop._wheel_width == pytest.approx(self.cross_width(net))
