"""Tests for the datagram network: routing, NAT, capture, loss."""

import pytest

from repro.net import Endpoint, EventLoop, NatType, Network, TrafficCapture
from repro.util.errors import AddressInUseError, ConfigurationError
from repro.util.rand import DeterministicRandom


def make_network(**kwargs) -> Network:
    return Network(EventLoop(), rand=DeterministicRandom(1), **kwargs)


class TestTopology:
    def test_public_ip_autoassignment(self):
        net = make_network()
        a = net.add_host("a")
        b = net.add_host("b")
        assert a.ip != b.ip
        assert a.public_ip == a.ip

    def test_nated_host_gets_private_ip(self):
        net = make_network()
        nat = net.add_nat(NatType.FULL_CONE)
        host = net.add_host("h", nat=nat)
        assert host.ip.startswith("192.168.")
        assert host.public_ip == nat.external_ip

    def test_explicit_ip_conflict_rejected(self):
        net = make_network()
        net.add_host("a", ip="9.9.9.9")
        with pytest.raises(ConfigurationError):
            net.add_host("b", ip="9.9.9.9")

    def test_nated_host_rejects_explicit_ip(self):
        net = make_network()
        nat = net.add_nat()
        with pytest.raises(ConfigurationError):
            net.add_host("h", ip="1.2.3.4", nat=nat)


class TestSockets:
    def test_bind_duplicate_port_rejected(self):
        net = make_network()
        host = net.add_host("h")
        host.bind_udp(1000)
        with pytest.raises(AddressInUseError):
            host.bind_udp(1000)

    def test_ephemeral_ports_unique(self):
        net = make_network()
        host = net.add_host("h")
        s1, s2 = host.bind_udp(), host.bind_udp()
        assert s1.port != s2.port

    def test_close_releases_port(self):
        net = make_network()
        host = net.add_host("h")
        sock = host.bind_udp(1000)
        sock.close()
        host.bind_udp(1000)  # no error


class TestDelivery:
    def test_public_to_public(self):
        net = make_network()
        a = net.add_host("a")
        b = net.add_host("b")
        received = []
        b.bind_udp(2000, lambda data, src, sock: received.append((data, src)))
        sa = a.bind_udp(1000)
        sa.send(Endpoint(b.ip, 2000), b"hi")
        net.loop.run(1.0)
        assert received == [(b"hi", Endpoint(a.ip, 1000))]

    def test_nat_translates_source(self):
        net = make_network()
        nat = net.add_nat(NatType.FULL_CONE)
        a = net.add_host("a", nat=nat)
        b = net.add_host("b")
        received = []
        b.bind_udp(2000, lambda data, src, sock: received.append(src))
        a.bind_udp(1000).send(Endpoint(b.ip, 2000), b"x")
        net.loop.run(1.0)
        assert received[0].ip == nat.external_ip
        assert received[0].ip != a.ip

    def test_reply_through_nat(self):
        net = make_network()
        nat = net.add_nat(NatType.PORT_RESTRICTED_CONE)
        a = net.add_host("a", nat=nat)
        b = net.add_host("b")
        a_received = []
        a.bind_udp(1000, lambda data, src, sock: a_received.append(data))
        b.bind_udp(2000, lambda data, src, sock: sock.send(src, b"reply"))
        a.sockets[1000].send(Endpoint(b.ip, 2000), b"ping")
        net.loop.run(1.0)
        assert a_received == [b"reply"]

    def test_unsolicited_inbound_filtered_by_nat(self):
        net = make_network()
        nat = net.add_nat(NatType.PORT_RESTRICTED_CONE)
        a = net.add_host("a", nat=nat)
        b = net.add_host("b")
        received = []
        a.bind_udp(1000, lambda data, src, sock: received.append(data))
        b.bind_udp(2000).send(Endpoint(nat.external_ip, 40000), b"attack")
        net.loop.run(1.0)
        assert received == []

    def test_unroutable_destination_blackholed(self):
        net = make_network()
        a = net.add_host("a")
        a.bind_udp(1000).send(Endpoint("203.0.113.7", 9), b"x")
        net.loop.run(1.0)
        assert net.datagrams_dropped == 1

    def test_unbound_port_drops(self):
        net = make_network()
        a = net.add_host("a")
        b = net.add_host("b")
        a.bind_udp(1000).send(Endpoint(b.ip, 7777), b"x")
        net.loop.run(1.0)
        assert net.datagrams_dropped == 1


class TestCaptureAndLoss:
    def test_capture_sees_wire_addresses(self):
        net = make_network()
        cap = net.add_capture(TrafficCapture("all"))
        nat = net.add_nat(NatType.FULL_CONE)
        a = net.add_host("a", nat=nat)
        b = net.add_host("b")
        b.bind_udp(2000, lambda *args: None)
        a.bind_udp(1000).send(Endpoint(b.ip, 2000), b"data")
        net.loop.run(1.0)
        assert len(cap) == 1
        assert cap.packets[0].src.ip == nat.external_ip

    def test_scoped_capture_filters(self):
        net = make_network()
        a = net.add_host("a")
        b = net.add_host("b")
        c = net.add_host("c")
        cap = net.add_capture(TrafficCapture("only-c", interface_ips=[c.ip]))
        b.bind_udp(2000, lambda *args: None)
        c.bind_udp(2000, lambda *args: None)
        a.bind_udp(1000).send(Endpoint(b.ip, 2000), b"not captured")
        a.sockets[1000].send(Endpoint(c.ip, 2000), b"captured")
        net.loop.run(1.0)
        assert len(cap) == 1
        assert cap.packets[0].payload == b"captured"

    def test_loss_rate_drops_packets(self):
        net = make_network(loss_rate=1.0)
        a = net.add_host("a")
        b = net.add_host("b")
        received = []
        b.bind_udp(2000, lambda data, src, sock: received.append(data))
        a.bind_udp(1000).send(Endpoint(b.ip, 2000), b"x")
        net.loop.run(1.0)
        assert received == []
        assert net.datagrams_dropped == 1

    def test_cross_region_latency_larger(self):
        loop = EventLoop()
        net = Network(loop, rand=DeterministicRandom(1), jitter=0.0)
        a = net.add_host("a", region="us")
        b = net.add_host("b", region="cn")
        c = net.add_host("c", region="us")
        times = {}
        b.bind_udp(2000, lambda data, src, sock: times.__setitem__("cross", loop.now))
        c.bind_udp(2000, lambda data, src, sock: times.__setitem__("same", loop.now))
        start = loop.now
        a.bind_udp(1000).send(Endpoint(b.ip, 2000), b"x")
        a.sockets[1000].send(Endpoint(c.ip, 2000), b"x")
        loop.run(1.0)
        assert times["cross"] - start > times["same"] - start


class TestUplinkCapacity:
    def test_unlimited_by_default(self):
        net = make_network()
        host = net.add_host("h")
        assert host.uplink_bytes_per_sec is None
        assert net._uplink_queue_delay(host, 10**9) == 0.0

    def test_serialization_delay(self):
        net = Network(EventLoop(), rand=DeterministicRandom(1), jitter=0.0)
        sender = net.add_host("s", uplink_bytes_per_sec=1000.0)
        receiver = net.add_host("r")
        times = []
        receiver.bind_udp(2000, lambda data, src, sock: times.append(net.loop.now))
        sock = sender.bind_udp(1000)
        sock.send(Endpoint(receiver.ip, 2000), b"x" * 1000)  # 1 second on the wire
        net.loop.run(10.0)
        assert times and times[0] >= 1.0

    def test_concurrent_sends_queue(self):
        net = Network(EventLoop(), rand=DeterministicRandom(1), jitter=0.0)
        sender = net.add_host("s", uplink_bytes_per_sec=1000.0)
        receiver = net.add_host("r")
        times = []
        receiver.bind_udp(2000, lambda data, src, sock: times.append(net.loop.now))
        sock = sender.bind_udp(1000)
        for _ in range(3):
            sock.send(Endpoint(receiver.ip, 2000), b"x" * 1000)
        net.loop.run(20.0)
        assert len(times) == 3
        # back-to-back 1-second serializations: ~1s, ~2s, ~3s
        assert times[1] - times[0] >= 0.9
        assert times[2] - times[1] >= 0.9

    def test_receiver_uplink_irrelevant(self):
        net = Network(EventLoop(), rand=DeterministicRandom(1), jitter=0.0)
        sender = net.add_host("s")
        receiver = net.add_host("r", uplink_bytes_per_sec=1.0)  # tiny uplink
        times = []
        receiver.bind_udp(2000, lambda data, src, sock: times.append(net.loop.now))
        sender.bind_udp(1000).send(Endpoint(receiver.ip, 2000), b"x" * 10000)
        net.loop.run(5.0)
        assert times and times[0] < 1.0  # downloads unaffected


class TestCaptureDroppedFlag:
    """Regression: a capture must show the datagram's *final* outcome.

    Route-failed packets (unroutable / nat_filtered / no_host) used to be
    recorded with ``dropped=False``, so a wire trace disagreed with
    ``drops_by_reason``. Only in-flight drops — decided after the packet
    was already on the wire, like an unbound destination port — may
    legitimately stay ``dropped=False``.
    """

    def _tap(self, net):
        return net.add_capture(TrafficCapture("tap"))

    def test_unroutable_marked_dropped(self):
        net = make_network()
        a = net.add_host("a")
        cap = self._tap(net)
        a.bind_udp(1000).send(Endpoint("203.0.113.7", 9999), b"x")
        net.loop.run_all()
        assert net.drops_by_reason == {"unroutable": 1}
        assert [p.dropped for p in cap.packets] == [True]

    def test_nat_filtered_marked_dropped(self):
        net = make_network()
        a = net.add_host("a")
        nat = net.add_nat(NatType.PORT_RESTRICTED_CONE)
        net.add_host("h", nat=nat).bind_udp(2000)
        cap = self._tap(net)
        # Unsolicited inbound to the NAT's external side: filtered.
        a.bind_udp(1000).send(Endpoint(nat.external_ip, 4000), b"x")
        net.loop.run_all()
        assert net.drops_by_reason == {"nat_filtered": 1}
        assert [p.dropped for p in cap.packets] == [True]

    def test_loss_marked_dropped(self):
        net = make_network(loss_rate=1.0)
        a = net.add_host("a")
        b = net.add_host("b")
        b.bind_udp(2000)
        cap = self._tap(net)
        a.bind_udp(1000).send(Endpoint(b.ip, 2000), b"x")
        net.loop.run_all()
        assert net.drops_by_reason == {"loss": 1}
        assert [p.dropped for p in cap.packets] == [True]

    def test_delivered_marked_not_dropped(self):
        net = make_network()
        a = net.add_host("a")
        b = net.add_host("b")
        b.bind_udp(2000)
        cap = self._tap(net)
        a.bind_udp(1000).send(Endpoint(b.ip, 2000), b"x")
        net.loop.run_all()
        assert net.datagrams_delivered == 1
        assert [p.dropped for p in cap.packets] == [False]

    def test_in_flight_drop_stays_not_dropped(self):
        """No socket on the destination port: the packet really was on
        the wire when captured, so the capture says dropped=False and the
        drop is visible only in drops_by_reason."""
        net = make_network()
        a = net.add_host("a")
        b = net.add_host("b")  # no socket bound
        cap = self._tap(net)
        a.bind_udp(1000).send(Endpoint(b.ip, 4000), b"x")
        net.loop.run_all()
        assert net.drops_by_reason == {"no_socket": 1}
        assert [p.dropped for p in cap.packets] == [False]

    def test_capture_agrees_with_drop_accounting(self):
        """Across a mixed workload, pre-flight drops in the capture equal
        the pre-flight entries of drops_by_reason."""
        net = make_network(loss_rate=0.5)
        hosts = [net.add_host(f"h{i}") for i in range(4)]
        for host in hosts:
            host.bind_udp(2000)
        cap = self._tap(net)
        for i, src in enumerate(hosts):
            for j, dst in enumerate(hosts):
                if i != j:
                    src.sockets[2000].send(Endpoint(dst.ip, 2000), b"x")
            src.sockets[2000].send(Endpoint("203.0.113.9", 1), b"x")
        net.loop.run_all()
        preflight = sum(
            count for reason, count in net.drops_by_reason.items()
            if reason in {"unroutable", "nat_filtered", "no_host", "loss"}
        )
        assert sum(1 for p in cap.packets if p.dropped) == preflight
        assert preflight >= 4  # at least the four unroutable sends


class TestInboxBounds:
    def test_inbox_is_bounded_by_default(self):
        from repro.net.network import DEFAULT_INBOX_LIMIT

        net = make_network()
        a = net.add_host("a")
        b = net.add_host("b")
        sock = b.bind_udp(2000)
        assert sock.inbox_limit == DEFAULT_INBOX_LIMIT
        src = a.bind_udp(1000)
        for i in range(3 * 16):
            src.send(Endpoint(b.ip, 2000), b"x")
        net.loop.run_all()
        assert len(sock.inbox) <= DEFAULT_INBOX_LIMIT

    def test_eviction_keeps_newest(self):
        net = make_network()
        host = net.add_host("h")
        sock = host.bind_udp(2000, inbox_limit=8)
        src = Endpoint("5.0.0.99", 1)
        for i in range(9):
            sock.deliver(b"%d" % i, src)
        # One batched eviction at 9 > 8: the oldest go, newest half stay.
        kept = [payload for payload, _ in sock.inbox]
        assert kept == [b"5", b"6", b"7", b"8"]
        assert sock.bytes_received == 9  # accounting unaffected by eviction

    def test_inbox_limit_none_is_unbounded(self):
        net = make_network()
        host = net.add_host("h")
        sock = host.bind_udp(2000, inbox_limit=None)
        src = Endpoint("5.0.0.99", 1)
        for i in range(10_000):
            sock.deliver(b"x", src)
        assert len(sock.inbox) == 10_000
