"""Stateful property test for NAT translation invariants."""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.net.addresses import Endpoint
from repro.net.nat import NatBox, NatType

INTERNALS = [Endpoint(f"192.168.1.{i}", 5000 + i) for i in range(2, 6)]
REMOTES = [Endpoint(f"9.9.9.{i}", 1000 + i) for i in range(1, 5)]


class NatMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.nat = NatBox("5.5.5.5", NatType.PORT_RESTRICTED_CONE)
        self.mappings: dict[Endpoint, Endpoint] = {}  # internal -> external
        self.permitted: dict[Endpoint, set[Endpoint]] = {}  # internal -> remotes contacted

    @rule(internal=st.sampled_from(INTERNALS), remote=st.sampled_from(REMOTES))
    def outbound(self, internal, remote):
        external = self.nat.outbound(internal, remote)
        if internal in self.mappings:
            # cone NAT: the mapping is stable regardless of remote
            assert self.mappings[internal] == external
        self.mappings[internal] = external
        self.permitted.setdefault(internal, set()).add(remote)
        assert external.ip == "5.5.5.5"

    @rule(internal=st.sampled_from(INTERNALS), remote=st.sampled_from(REMOTES))
    def inbound(self, internal, remote):
        external = self.mappings.get(internal)
        if external is None:
            return
        result = self.nat.inbound(external.port, remote)
        # port-restricted: forwarded iff this exact remote was contacted
        if remote in self.permitted.get(internal, set()):
            assert result == internal
        else:
            assert result is None

    @invariant()
    def distinct_internals_distinct_ports(self):
        externals = list(self.mappings.values())
        assert len(externals) == len(set(externals))

    @invariant()
    def unmapped_ports_filtered(self):
        assert self.nat.inbound(1, REMOTES[0]) is None


TestNatStateful = NatMachine.TestCase
TestNatStateful.settings = settings(max_examples=40, stateful_step_count=25, deadline=None)
