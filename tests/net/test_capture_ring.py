"""TrafficCapture memory bounds and tap-list lifecycle.

Ring-buffer mode mirrors the socket ``inbox_limit`` design: past
``max_packets`` the oldest half is batch-evicted, counted in
``dropped_records``, while ``total_bytes()`` keeps streaming over every
packet ever recorded. ``stop()`` must *deregister* the capture from the
network's tap list — a stopped-but-registered capture would keep the
data plane building a CapturedPacket per datagram just to refuse it, so
the regression test below pins that post-stop traffic runs the exact
no-capture code path (compared by event counts, not wall time).
"""

from repro.net.addresses import Endpoint
from repro.net.capture import TrafficCapture
from repro.net.clock import EventLoop
from repro.net.network import Network
from repro.util.rand import DeterministicRandom

PORT = 700


def make_net(seed: int = 7) -> Network:
    return Network(EventLoop(), rand=DeterministicRandom(seed))


def pump(net: Network, hosts, count: int, payload: bytes = b"x" * 20) -> None:
    """``count`` seeded sends between the hosts, drained to completion."""
    rand = DeterministicRandom(f"capture-ring:{count}")
    sockets = [h.sockets[PORT] for h in hosts]
    endpoints = [s.endpoint for s in sockets]
    for i in range(count):
        dst = endpoints[rand.randint(0, len(endpoints) - 1)]
        sockets[i % len(sockets)].send(dst, payload)
    net.loop.run_all()


class TestRingBuffer:
    def test_default_is_append_only(self):
        cap = TrafficCapture("tap")
        assert cap.max_packets is None
        net = make_net()
        hosts = [net.add_host(f"h{i}") for i in range(2)]
        for h in hosts:
            h.bind_udp(PORT)
        net.add_capture(cap)
        pump(net, hosts, 300)
        assert len(cap) == 300
        assert cap.dropped_records == 0

    def test_ring_evicts_oldest_half_and_counts(self):
        net = make_net()
        hosts = [net.add_host(f"h{i}") for i in range(2)]
        for h in hosts:
            h.bind_udp(PORT)
        cap = net.add_capture(TrafficCapture("tap", max_packets=100))
        pump(net, hosts, 101)
        # One batched eviction at packet 101: down to limit//2 survivors.
        assert len(cap) == 50
        assert cap.dropped_records == 51
        assert len(cap) + cap.dropped_records == 101
        # Survivors are the *newest* packets, in arrival order.
        times = [p.time for p in cap.packets]
        assert times == sorted(times)

    def test_bounded_memory_over_long_run(self):
        net = make_net()
        hosts = [net.add_host(f"h{i}") for i in range(2)]
        for h in hosts:
            h.bind_udp(PORT)
        cap = net.add_capture(TrafficCapture("tap", max_packets=64))
        pump(net, hosts, 1000)
        assert len(cap) <= 64
        assert len(cap) + cap.dropped_records == 1000

    def test_total_bytes_streams_past_eviction(self):
        net = make_net()
        hosts = [net.add_host(f"h{i}") for i in range(2)]
        for h in hosts:
            h.bind_udp(PORT)
        cap = net.add_capture(TrafficCapture("tap", max_packets=64))
        pump(net, hosts, 500, payload=b"y" * 32)
        assert cap.total_bytes() == 500 * 32
        # The unbounded invariant: counter == sum over retained packets.
        unbounded = make_net()
        hosts2 = [unbounded.add_host(f"g{i}") for i in range(2)]
        for h in hosts2:
            h.bind_udp(PORT)
        cap2 = unbounded.add_capture(TrafficCapture("tap2"))
        pump(unbounded, hosts2, 50, payload=b"z" * 10)
        assert cap2.total_bytes() == sum(p.size for p in cap2.packets) == 500


class TestStopDeregisters:
    def test_stop_removes_capture_from_tap_list(self):
        net = make_net()
        cap = net.add_capture(TrafficCapture("tap"))
        assert net.captures == [cap]
        cap.stop()
        assert net.captures == []
        cap.stop()  # idempotent: second stop is a no-op, not a ValueError
        assert net.captures == []

    def test_stop_deregisters_from_every_tapped_network(self):
        net_a, net_b = make_net(1), make_net(2)
        cap = TrafficCapture("shared")
        net_a.add_capture(cap)
        net_b.add_capture(cap)
        cap.stop()
        assert net_a.captures == [] and net_b.captures == []

    def test_post_stop_throughput_matches_never_captured(self):
        """Regression: after stop(), the no-tap fast branch re-engages.

        Compared via deterministic event/packet counts — wall time would
        flake — by running identical seeded traffic on a never-captured
        network and on one whose capture was stopped first: the stopped
        capture must record nothing new and both networks must do
        identical work.
        """

        def run(with_stopped_capture: bool):
            net = make_net(seed=11)
            hosts = [net.add_host(f"h{i}", region="us") for i in range(4)]
            for h in hosts:
                h.bind_udp(PORT)
            cap = None
            if with_stopped_capture:
                cap = net.add_capture(TrafficCapture("tap"))
                pump(net, hosts, 10)  # records while live
                cap.stop()
            pump(net, hosts, 200)
            return net, cap

        plain, _ = run(with_stopped_capture=False)
        stopped, cap = run(with_stopped_capture=True)
        assert len(cap) == 10  # nothing recorded after stop()
        assert stopped.captures == []
        # Identical post-stop work: the 200-send phase fired the same
        # events and delivered the same datagrams on both networks.
        assert stopped.datagrams_sent - 10 == plain.datagrams_sent == 200
        assert stopped.datagrams_delivered - 10 == plain.datagrams_delivered
        assert stopped.loop.events_fired - 10 == plain.loop.events_fired
