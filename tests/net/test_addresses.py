"""Tests for IPv4 parsing and bogon classification."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    Endpoint,
    IpClass,
    classify_ip,
    int_to_ip,
    ip_to_int,
    is_bogon,
)
from repro.util.errors import ConfigurationError


class TestParsing:
    def test_round_trip_known(self):
        assert ip_to_int("1.2.3.4") == 0x01020304
        assert int_to_ip(0x01020304) == "1.2.3.4"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_round_trip_property(self, value: int):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", ""])
    def test_invalid_rejected(self, bad: str):
        with pytest.raises(ConfigurationError):
            ip_to_int(bad)


class TestClassification:
    """The paper's §IV-D taxonomy: 543 private, 33 shared-NAT, 5 reserved."""

    @pytest.mark.parametrize(
        "ip,expected",
        [
            ("8.8.8.8", IpClass.PUBLIC),
            ("5.0.0.1", IpClass.PUBLIC),
            ("10.1.2.3", IpClass.PRIVATE),
            ("172.16.0.1", IpClass.PRIVATE),
            ("172.31.255.255", IpClass.PRIVATE),
            ("172.32.0.1", IpClass.PUBLIC),  # just outside 172.16/12
            ("192.168.1.1", IpClass.PRIVATE),
            ("100.64.0.1", IpClass.SHARED_NAT),  # RFC 6598 carrier NAT
            ("100.127.255.255", IpClass.SHARED_NAT),
            ("100.128.0.1", IpClass.PUBLIC),  # just outside 100.64/10
            ("127.0.0.1", IpClass.RESERVED),
            ("169.254.1.1", IpClass.RESERVED),
            ("240.0.0.1", IpClass.RESERVED),
            ("224.0.0.5", IpClass.RESERVED),
        ],
    )
    def test_classes(self, ip: str, expected: IpClass):
        assert classify_ip(ip) is expected

    def test_is_bogon(self):
        assert is_bogon("192.168.0.10")
        assert is_bogon("100.64.3.2")
        assert not is_bogon("93.184.216.34")


class TestEndpoint:
    def test_str(self):
        assert str(Endpoint("1.2.3.4", 80)) == "1.2.3.4:80"

    def test_equality_and_hash(self):
        assert Endpoint("1.1.1.1", 1) == Endpoint("1.1.1.1", 1)
        assert len({Endpoint("1.1.1.1", 1), Endpoint("1.1.1.1", 1)}) == 1
