"""Tests for the discrete-event loop."""

import pytest

from repro.net.clock import EventLoop, RepeatingHandle
from repro.util.errors import ConfigurationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, fired.append, "late")
        loop.schedule(1.0, fired.append, "early")
        loop.run_all()
        assert fired == ["early", "late"]

    def test_ties_fire_in_scheduling_order(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.schedule(1.0, fired.append, i)
        loop.run_all()
        assert fired == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ConfigurationError):
            loop.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run_all()
        with pytest.raises(ConfigurationError):
            loop.schedule_at(0.5, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, fired.append, "x")
        handle.cancel()
        loop.run_all()
        assert fired == []


class TestRunUntil:
    def test_run_until_advances_now_even_without_events(self):
        loop = EventLoop()
        loop.run_until(5.0)
        assert loop.now == 5.0

    def test_run_until_fires_only_due_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, "a")
        loop.schedule(3.0, fired.append, "b")
        loop.run_until(2.0)
        assert fired == ["a"]
        assert loop.now == 2.0

    def test_run_is_relative(self):
        loop = EventLoop()
        loop.run(1.0)
        loop.run(1.0)
        assert loop.now == 2.0

    def test_events_scheduled_during_run_fire_in_same_window(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: loop.schedule(0.5, fired.append, "nested"))
        loop.run_until(2.0)
        assert fired == ["nested"]


class TestCallEvery:
    def test_repeats_until_cancelled(self):
        loop = EventLoop()
        ticks = []
        loop.call_every(1.0, lambda: ticks.append(loop.now))
        loop.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_invalid_interval(self):
        loop = EventLoop()
        with pytest.raises(ConfigurationError):
            loop.call_every(0, lambda: None)

    def test_returns_repeating_handle_tracking_next_occurrence(self):
        loop = EventLoop()
        handle = loop.call_every(1.0, lambda: None)
        assert isinstance(handle, RepeatingHandle)
        assert handle.when == 1.0
        loop.run_until(2.5)
        assert handle.when == 3.0  # advanced past each fired tick

    def test_cancel_stops_the_chain(self):
        loop = EventLoop()
        ticks = []
        handle = loop.call_every(1.0, lambda: ticks.append(loop.now))
        loop.run_until(2.5)
        handle.cancel()
        loop.run_until(10.0)
        assert ticks == [1.0, 2.0]
        assert loop.pending == 0

    def test_callback_may_cancel_its_own_chain(self):
        loop = EventLoop()
        ticks = []

        def tick():
            ticks.append(loop.now)
            if len(ticks) == 2:
                handle.cancel()

        handle = loop.call_every(1.0, tick)
        loop.run_until(10.0)
        assert ticks == [1.0, 2.0]
        assert loop.pending == 0

    def test_pending_counts_one_entry_per_repeating_timer(self):
        loop = EventLoop()
        loop.call_every(1.0, lambda: None)
        assert loop.pending == 1
        loop.run_until(4.5)  # four ticks later, still a single heap entry
        assert loop.pending == 1

    def test_until_bounds_the_chain(self):
        loop = EventLoop()
        ticks = []
        loop.call_every(1.0, lambda: ticks.append(loop.now), until=2.5)
        loop.run_until(10.0)
        assert ticks == [1.0, 2.0]
        assert loop.pending == 0

    def test_runaway_guard(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule(0.0, reschedule)

        loop.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError):
            loop.run_all(max_events=100)
