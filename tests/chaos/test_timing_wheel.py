"""Timing-wheel equivalence: the two-tier scheduler is order-invisible.

The wheel is a pure performance structure — dispatch merges it with the
heap by ``(when, seq)``, so a wheel-enabled loop must fire the *exact*
same event sequence as a pure-heap loop, seed for seed, fault plan for
fault plan. The property tests here run whole chaos scenarios twice
(wheel on / wheel off) and compare the full dispatch trace and every
network counter; the experiment-level test proves the pinned result
digests are reproduced with the wheel disabled outright.

The boundary tests pin the wheel mechanics the property can miss:
bucket rollover across many laps, far-future overflow to the heap,
cancellation of wheel-resident handles, the idle-wheel origin resync,
and mid-run geometry changes.
"""

import pytest

import repro.experiments  # noqa: F401  - triggers @experiment registration
from repro.harness import registry
from repro.harness.runner import execute_spec
from repro.net import clock
from repro.net.clock import EventLoop
from repro.net.faults import FaultInjector
from repro.net.network import Network
from repro.util.rand import DeterministicRandom

from tests.chaos.gen import (
    assert_conserved,
    chaos_seeds,
    pump_random_traffic,
    random_plan,
    random_topology,
)


class OrderTrace:
    """A sink recording the exact dispatch sequence, seq numbers included.

    Anonymous fast-path entries expose their ``(when, seq)`` directly;
    handle-based timers contribute ``when`` plus their kind. Two runs
    that schedule in the same order produce identical seq streams, so
    list equality is a bit-exact order comparison.
    """

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def record(self, loop: EventLoop, handle) -> None:
        if type(handle) is tuple:
            self.events.append((handle[0], handle[1], "fast"))
        else:
            self.events.append((handle.when, None, type(handle).__name__))


def run_chaos_scenario(seed: int, wheel: bool, faults: bool) -> tuple[list, dict]:
    """One full seeded chaos run; returns (dispatch trace, counters)."""
    net = Network(rand=DeterministicRandom(seed))
    if not wheel:
        # Disable after construction: Network's own tuner sizes the
        # wheel, so a pure-heap control run must switch it off here.
        net.loop.configure_wheel(None, 0)
    rand = DeterministicRandom(f"wheel-eq:{seed}")
    hosts = random_topology(rand.fork("topo"), net)
    if faults:
        FaultInjector(net).arm(random_plan(rand.fork("faults"), hosts, horizon=30.0))
    pump_random_traffic(rand.fork("traffic"), net, hosts, count=300, horizon=25.0)
    trace = OrderTrace()
    EventLoop.add_sink(trace)
    try:
        net.loop.run_until(40.0)
    finally:
        EventLoop.remove_sink(trace)
    assert_conserved(net)
    if not wheel:
        assert net.loop.wheel_scheduled == 0  # control run truly heap-only
    counters = {
        "sent": net.datagrams_sent,
        "delivered": net.datagrams_delivered,
        "dropped": net.datagrams_dropped,
        "by_reason": dict(net.drops_by_reason),
        "events": net.loop.events_fired,
    }
    return trace.events, counters


class TestWheelHeapEquivalence:
    """Same seed, same plan => same dispatch order, wheel on or off."""

    @pytest.mark.parametrize("seed", chaos_seeds(3, "timing-wheel"))
    @pytest.mark.parametrize("faults", [False, True], ids=["calm", "chaos-mix"])
    def test_dispatch_trace_is_bit_identical(self, seed, faults):
        wheel_trace, wheel_counts = run_chaos_scenario(seed, wheel=True, faults=faults)
        heap_trace, heap_counts = run_chaos_scenario(seed, wheel=False, faults=faults)
        assert wheel_trace == heap_trace
        assert wheel_counts == heap_counts
        assert len(wheel_trace) == wheel_counts["events"]

    @pytest.mark.parametrize("name", ["bandwidth", "chaos"])
    def test_experiment_digest_survives_wheel_removal(self, name, monkeypatch):
        """The pinned digests do not depend on the wheel existing at all."""
        params = registry.get(name).resolve_params(quick=True)
        with_wheel = execute_spec(name, 2024, params)
        assert with_wheel.record.ok, with_wheel.record.error
        monkeypatch.setattr(clock, "DEFAULT_WHEEL_SLOTS", 0)
        monkeypatch.setattr(Network, "_tune_wheel", lambda self: None)
        without_wheel = execute_spec(name, 2024, params)
        assert without_wheel.record.ok, without_wheel.record.error
        assert with_wheel.record.result_digest == without_wheel.record.result_digest


class TestBucketBoundaries:
    def test_rollover_across_many_laps(self):
        """A self-rescheduling chain walks 25 laps of an 8-slot wheel."""
        loop = EventLoop(wheel_width=0.01, wheel_slots=8)
        fired = []

        def chain(i):
            fired.append((i, loop.now))
            if i < 40:
                loop.schedule_fast(loop.now + 0.05, chain, (i + 1,))

        loop.schedule_fast(0.05, chain, (1,))
        loop.run_all()
        assert [i for i, _ in fired] == list(range(1, 41))
        for i, when in fired:
            assert when == pytest.approx(0.05 * i)
        assert loop.wheel_scheduled == 40
        assert loop.wheel_overflow == 0
        assert loop.pending == 0

    def test_exact_bucket_edge_keeps_seq_order(self):
        """Entries landing exactly on a bucket edge stay FIFO by seq."""
        loop = EventLoop(wheel_width=0.01, wheel_slots=8)
        order = []
        loop.schedule_fast(0.02, order.append, ("a",))
        loop.schedule_fast(0.02, order.append, ("b",))
        loop.schedule_fast(0.01, order.append, ("c",))
        loop.run_all()
        assert order == ["c", "a", "b"]

    def test_far_future_overflows_to_heap(self):
        loop = EventLoop(wheel_width=0.01, wheel_slots=8)  # 80 ms horizon
        order = []
        loop.schedule_fast(1.0, order.append, ("far",))
        loop.schedule_fast(0.03, order.append, ("near",))
        assert loop.wheel_overflow == 1
        assert loop.wheel_scheduled == 1
        assert loop.pending == 2
        loop.run_all()
        assert order == ["near", "far"]
        assert loop.pending == 0
        assert loop.now == 1.0

    def test_cancel_wheel_resident_timer(self):
        loop = EventLoop()  # default geometry: 10/20 ms are in-band
        fired = []
        victim = loop.schedule(0.01, fired.append, "victim")
        loop.schedule(0.02, fired.append, "keeper")
        assert loop.wheel_occupancy == 2
        victim.cancel()
        assert loop.pending == 1
        loop.run_all()
        assert fired == ["keeper"]
        assert loop.pending == 0

    def test_cancel_wheel_sibling_from_callback_in_same_bucket(self):
        loop = EventLoop(wheel_width=0.01, wheel_slots=8)
        fired = []
        victim = loop.schedule_at(0.0152, fired.append, "victim")
        loop.schedule_at(0.0151, victim.cancel)  # same bucket, earlier seq... and when
        loop.schedule_at(0.0153, fired.append, "survivor")
        loop.run_all()
        assert fired == ["survivor"]
        assert loop.pending == 0

    def test_idle_wheel_resyncs_origin_to_now(self):
        """Heap-only progress far past the horizon drags the origin along."""
        loop = EventLoop(wheel_width=0.01, wheel_slots=8)
        loop.schedule(1.0, lambda: None)  # way out of band: heap
        assert loop.wheel_overflow == 1
        loop.run_all()
        assert loop.now == 1.0
        fired = []
        loop.schedule(0.03, fired.append, "late")  # in-band again, relative to now
        assert loop.wheel_scheduled == 1  # resync re-opened the wheel window
        loop.run_all()
        assert fired == ["late"]
        assert loop.now == pytest.approx(1.03)

    def test_run_until_leaves_later_bucket_entries_queued(self):
        """A deadline mid-bucket fires only the due half of the bucket."""
        loop = EventLoop(wheel_width=0.01, wheel_slots=8)
        fired = []
        loop.schedule_fast(0.011, fired.append, ("early",))
        loop.schedule_fast(0.019, fired.append, ("late",))  # same bucket
        loop.run_until(0.015)
        assert fired == ["early"]
        assert loop.pending == 1
        loop.run_until(0.02)
        assert fired == ["early", "late"]

    def test_configure_wheel_mid_run_preserves_order(self):
        loop = EventLoop(wheel_width=0.01, wheel_slots=8)
        fired = []
        for when in (0.011, 0.034, 0.052):
            loop.schedule_fast(when, fired.append, (when,))
        loop.configure_wheel(0.002, 16)  # flushes residents to the heap
        for when in (0.005, 0.04):
            loop.schedule_fast(when, fired.append, (when,))
        loop.run_all()
        assert fired == sorted(fired)
        assert len(fired) == 5
        assert loop.pending == 0
