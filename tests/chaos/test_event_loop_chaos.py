"""EventLoop edge cases the fault layer leans on.

Fault callbacks cancel timers belonging to *other* subsystems (a churn
eviction cancels a pending P2P timeout; a heal cancels a retry), and
heal events are frequently scheduled at the exact current instant, so
cancellation-from-inside-a-callback and at-now ordering must be exact.
"""

import pytest

from repro.net.clock import EventLoop
from repro.util.errors import ConfigurationError


class TestCancelFromCallback:
    def test_fault_callback_cancels_repeating_handle(self):
        """Cancelling someone else's RepeatingHandle from inside a
        callback stops the chain even when its next tick is already due."""
        loop = EventLoop()
        ticks = []
        repeating = loop.call_every(1.0, lambda: ticks.append(loop.now))
        # The "fault" fires at the same instant as the 3rd tick but was
        # scheduled earlier, so it runs first and must suppress that tick.
        loop.schedule(3.0, repeating.cancel)
        loop.run(10.0)
        assert ticks == [1.0, 2.0]
        assert loop.pending == 0

    def test_repeating_handle_cancels_its_own_chain(self):
        loop = EventLoop()
        ticks = []

        def tick():
            ticks.append(loop.now)
            if len(ticks) == 2:
                handle.cancel()

        handle = loop.call_every(1.0, tick)
        loop.run(10.0)
        assert ticks == [1.0, 2.0]

    def test_cancelling_plain_timer_from_sibling_callback(self):
        loop = EventLoop()
        fired = []
        victim = loop.schedule(5.0, lambda: fired.append("victim"))
        loop.schedule(1.0, victim.cancel)
        loop.run(10.0)
        assert fired == []
        assert loop.pending == 0

    def test_cancel_after_fire_is_harmless(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append(1))
        loop.run(2.0)
        handle.cancel()  # already fired; must not blow up
        assert fired == [1]


class TestAtNowOrdering:
    def test_zero_delay_events_fire_in_scheduling_order(self):
        """Heals scheduled at the current instant (duration=0 faults)
        run after already-queued same-time events, FIFO by sequence."""
        loop = EventLoop()
        order = []

        def first():
            order.append("first")
            # Scheduled mid-callback at delay 0: runs after 'second',
            # which was queued earlier at the same timestamp.
            loop.schedule(0.0, lambda: order.append("third"))

        loop.schedule(1.0, first)
        loop.schedule(1.0, lambda: order.append("second"))
        loop.run(1.0)
        assert order == ["first", "second", "third"]

    def test_schedule_at_now_is_allowed(self):
        loop = EventLoop()
        loop.run(5.0)
        fired = []
        loop.schedule_at(loop.now, lambda: fired.append(loop.now))
        loop.run(0.0)
        assert fired == [5.0]

    def test_schedule_in_the_past_raises(self):
        loop = EventLoop()
        loop.run(5.0)
        with pytest.raises(ConfigurationError, match="cannot schedule"):
            loop.schedule_at(4.9, lambda: None)
        with pytest.raises(ConfigurationError, match="cannot schedule"):
            loop.schedule(-0.1, lambda: None)

    def test_now_never_goes_backwards_across_zero_delay_cascade(self):
        loop = EventLoop()
        seen = []

        def cascade(depth):
            seen.append(loop.now)
            if depth:
                loop.schedule(0.0, cascade, depth - 1)

        loop.schedule(2.0, cascade, 5)
        loop.run(3.0)
        assert seen == [2.0] * 6
        assert loop.now == 3.0


class TestRunAllExactBound:
    def test_bound_is_exact_not_off_by_one(self):
        """run_all(max_events=N) with a livelock fires exactly N events —
        never the N+1-th — before raising (the seed fired N+1)."""
        loop = EventLoop()
        fired = []

        def rescheduling():
            fired.append(loop.now)
            loop.schedule(0.0, rescheduling)

        loop.schedule(0.0, rescheduling)
        with pytest.raises(RuntimeError, match="exceeded 10 events"):
            loop.run_all(max_events=10)
        assert len(fired) == 10

    def test_draining_exactly_max_events_does_not_raise(self):
        """A queue of exactly max_events drains cleanly: the bound only
        trips when live events remain past it."""
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.schedule(float(i), fired.append, i)
        loop.run_all(max_events=10)
        assert fired == list(range(10))
        assert loop.pending == 0

    def test_bound_counts_fast_events_too(self):
        loop = EventLoop()

        def rescheduling():
            loop.schedule_fast(loop.now, rescheduling, ())

        loop.schedule_fast(0.0, rescheduling, ())
        with pytest.raises(RuntimeError, match="exceeded 5 events"):
            loop.run_all(max_events=5)


class TestPendingCounter:
    """pending is an O(1) live counter; every transition must keep it exact."""

    def test_cancel_decrements_exactly_once(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        assert loop.pending == 1
        handle.cancel()
        assert loop.pending == 0
        handle.cancel()  # double-cancel must not decrement again
        assert loop.pending == 0
        loop.run_all()
        assert loop.pending == 0

    def test_cancel_after_fire_does_not_decrement(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        other = loop.schedule(2.0, lambda: None)
        loop.run(1.5)
        assert loop.pending == 1  # only `other` remains
        handle.cancel()
        assert loop.pending == 1
        assert other is not None

    def test_repeating_handle_counts_as_one_pending(self):
        loop = EventLoop()
        repeating = loop.call_every(1.0, lambda: None)
        loop.schedule(0.5, lambda: None)
        assert loop.pending == 2
        loop.run(3.2)
        assert loop.pending == 1  # the repeating chain's next tick
        repeating.cancel()
        assert loop.pending == 0

    def test_pending_matches_queue_scan_across_mixed_churn(self):
        """Counter == brute-force scan (heap + wheel buckets + cursor)
        after a seeded mix of schedule, schedule_fast, cancel, dispatch."""
        from repro.net.clock import TimerHandle
        from repro.util.rand import DeterministicRandom

        loop = EventLoop()
        rand = DeterministicRandom("pending-churn")
        handles = []
        for _ in range(500):
            roll = rand.random()
            if roll < 0.4:
                handles.append(loop.schedule(rand.uniform(0, 5), lambda: None))
            elif roll < 0.6:
                loop.schedule_fast(loop.now + rand.uniform(0, 5), lambda: None, ())
            elif roll < 0.8 and handles:
                handles.pop(rand.randint(0, len(handles) - 1)).cancel()
            else:
                loop.run(rand.uniform(0, 0.5))
        live_queued = sum(
            1 for entry in loop._iter_queued()
            if len(entry) == 4 or not entry[2].cancelled
        )
        assert loop.pending == live_queued
        loop.run_all()
        assert loop.pending == 0
        assert isinstance(handles[0], TimerHandle)


class TestScheduleFast:
    def test_fires_in_when_seq_order_with_plain_timers(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, order.append, "plain")
        loop.schedule_fast(1.0, order.append, ("fast-second",))
        loop.schedule_fast(0.5, order.append, ("fast-first",))
        loop.run_all()
        assert order == ["fast-first", "plain", "fast-second"]
        assert loop.now == 1.0

    def test_fast_events_drive_the_clock(self):
        loop = EventLoop()
        seen = []
        loop.schedule_fast(2.5, lambda: seen.append(loop.now), ())
        loop.run_all()
        assert seen == [2.5]
        assert loop.events_fired == 1
