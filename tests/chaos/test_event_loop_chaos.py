"""EventLoop edge cases the fault layer leans on.

Fault callbacks cancel timers belonging to *other* subsystems (a churn
eviction cancels a pending P2P timeout; a heal cancels a retry), and
heal events are frequently scheduled at the exact current instant, so
cancellation-from-inside-a-callback and at-now ordering must be exact.
"""

import pytest

from repro.net.clock import EventLoop
from repro.util.errors import ConfigurationError


class TestCancelFromCallback:
    def test_fault_callback_cancels_repeating_handle(self):
        """Cancelling someone else's RepeatingHandle from inside a
        callback stops the chain even when its next tick is already due."""
        loop = EventLoop()
        ticks = []
        repeating = loop.call_every(1.0, lambda: ticks.append(loop.now))
        # The "fault" fires at the same instant as the 3rd tick but was
        # scheduled earlier, so it runs first and must suppress that tick.
        loop.schedule(3.0, repeating.cancel)
        loop.run(10.0)
        assert ticks == [1.0, 2.0]
        assert loop.pending == 0

    def test_repeating_handle_cancels_its_own_chain(self):
        loop = EventLoop()
        ticks = []

        def tick():
            ticks.append(loop.now)
            if len(ticks) == 2:
                handle.cancel()

        handle = loop.call_every(1.0, tick)
        loop.run(10.0)
        assert ticks == [1.0, 2.0]

    def test_cancelling_plain_timer_from_sibling_callback(self):
        loop = EventLoop()
        fired = []
        victim = loop.schedule(5.0, lambda: fired.append("victim"))
        loop.schedule(1.0, victim.cancel)
        loop.run(10.0)
        assert fired == []
        assert loop.pending == 0

    def test_cancel_after_fire_is_harmless(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append(1))
        loop.run(2.0)
        handle.cancel()  # already fired; must not blow up
        assert fired == [1]


class TestAtNowOrdering:
    def test_zero_delay_events_fire_in_scheduling_order(self):
        """Heals scheduled at the current instant (duration=0 faults)
        run after already-queued same-time events, FIFO by sequence."""
        loop = EventLoop()
        order = []

        def first():
            order.append("first")
            # Scheduled mid-callback at delay 0: runs after 'second',
            # which was queued earlier at the same timestamp.
            loop.schedule(0.0, lambda: order.append("third"))

        loop.schedule(1.0, first)
        loop.schedule(1.0, lambda: order.append("second"))
        loop.run(1.0)
        assert order == ["first", "second", "third"]

    def test_schedule_at_now_is_allowed(self):
        loop = EventLoop()
        loop.run(5.0)
        fired = []
        loop.schedule_at(loop.now, lambda: fired.append(loop.now))
        loop.run(0.0)
        assert fired == [5.0]

    def test_schedule_in_the_past_raises(self):
        loop = EventLoop()
        loop.run(5.0)
        with pytest.raises(ConfigurationError, match="cannot schedule"):
            loop.schedule_at(4.9, lambda: None)
        with pytest.raises(ConfigurationError, match="cannot schedule"):
            loop.schedule(-0.1, lambda: None)

    def test_now_never_goes_backwards_across_zero_delay_cascade(self):
        loop = EventLoop()
        seen = []

        def cascade(depth):
            seen.append(loop.now)
            if depth:
                loop.schedule(0.0, cascade, depth - 1)

        loop.schedule(2.0, cascade, 5)
        loop.run(3.0)
        assert seen == [2.0] * 6
        assert loop.now == 3.0
