"""Whole-swarm invariants under chaos, seed-driven.

These run the registered ``chaos`` experiment (small scale) across
generated seeds and every preset, asserting the properties that must
hold no matter what the plan did: datagram conservation, every player
accounted for (finished or stalled with CDN fallback available), no
event ever scheduled in the past, pollution never surviving integrity
checking, and byte-identical replay at the same seed.
"""

import hashlib

import pytest

from repro.experiments.chaos_faults import run as chaos_run
from repro.net.clock import EventLoop
from repro.net.faults import PLAN_PRESETS

from tests.chaos.gen import chaos_seeds

QUICK = dict(viewers=3, segments=5, segment_seconds=3.0, segment_bytes=30_000,
             join_stagger=1.5)


class _MonotonicNowSink:
    """EventLoop sink asserting simulated time never runs backwards."""

    def __init__(self):
        self.last = 0.0
        self.events = 0

    def record(self, loop, handle):
        from repro.net.clock import RepeatingHandle

        assert loop.now >= self.last, f"time ran backwards: {loop.now} < {self.last}"
        if isinstance(handle, tuple):
            # Anonymous fast event: (when, seq, callback, args).
            assert handle[0] <= loop.now
        elif not isinstance(handle, RepeatingHandle):
            # Plain timers never fire before their due time. (A repeating
            # handle's .when already points at its *next* occurrence.)
            assert handle.when <= loop.now
        self.last = max(self.last, loop.now)
        self.events += 1


class TestChaosRunInvariants:
    @pytest.mark.parametrize("seed", chaos_seeds(3, "swarm"))
    def test_conservation_and_player_accounting(self, seed):
        result = chaos_run(seed=seed, faults="chaos-mix", **QUICK)
        assert result.conservation_ok
        assert sum(result.drops_by_reason.values()) == result.datagrams_dropped
        assert result.players_finished + result.players_stalled == result.viewers
        # A stalled-out player must have had the CDN fallback machinery
        # engaged (fallbacks or skips), not be silently wedged.
        if result.players_stalled:
            assert result.p2p_fallbacks + result.segments_skipped + result.stalls > 0

    @pytest.mark.parametrize("preset", sorted(PLAN_PRESETS))
    def test_every_preset_completes_with_conservation(self, preset):
        result = chaos_run(seed=chaos_seeds(1, f"preset:{preset}")[0],
                           faults=preset, **QUICK)
        assert result.conservation_ok
        assert result.plan_name == preset
        if preset == "calm":
            assert result.fault_events_applied == 0
            assert result.players_finished == result.viewers

    @pytest.mark.parametrize("seed", chaos_seeds(2, "replay"))
    def test_same_seed_same_digest(self, seed):
        first = chaos_run(seed=seed, faults="chaos-mix", **QUICK)
        second = chaos_run(seed=seed, faults="chaos-mix", **QUICK)
        assert first.content_digest() == second.content_digest()
        assert first.plan_digest == second.plan_digest

    def test_different_seeds_give_different_plans(self):
        seeds = chaos_seeds(3, "plan-spread")
        digests = {chaos_run(seed=s, faults="churn", **QUICK).plan_digest
                   for s in seeds}
        assert len(digests) > 1

    def test_no_event_fires_before_its_time(self):
        sink = _MonotonicNowSink()
        EventLoop.add_sink(sink)
        try:
            result = chaos_run(seed=chaos_seeds(1, "monotonic")[0],
                               faults="chaos-mix", **QUICK)
        finally:
            EventLoop.remove_sink(sink)
        assert result.conservation_ok
        assert sink.events > 0


class TestPollutionUnderChaos:
    def test_pollution_never_survives_integrity_checking(self):
        """Even with churn + flaky links, an integrity-checking swarm
        plays zero polluted segments (the §V-B defense holds under
        chaos — confusion never becomes a bypass)."""
        from repro.attacks.pollution import VideoSegmentPollutionTest
        from repro.core.analyzer import PdnAnalyzer
        from repro.core.testbed import build_test_bed
        from repro.defenses.integrity import ClientIntegrity, IntegrityCoordinator
        from repro.environment import Environment
        from repro.net.faults import RandomFaultPlanner
        from repro.pdn.provider import PEER5

        env = Environment(seed=chaos_seeds(1, "pollution")[0])
        bed = build_test_bed(env, PEER5, video_segments=6)
        coordinator = IntegrityCoordinator(
            env.loop, env.rand.fork("im"), bed.provider, env.urlspace, quorum=2
        ).install()
        integrity = ClientIntegrity(env.loop, coordinator)

        # Flaky links between the peers the security test is about to
        # create (hosts are matched by name at fault-apply time).
        planner = RandomFaultPlanner(env.rand.fork("fault-plan"))
        plan = planner.flaky(["malicious-peer", "victim-peer"], horizon=60.0)
        env.inject_faults(plan)

        analyzer = PdnAnalyzer(env)
        original_create = analyzer.create_peer

        def create_with_integrity(*args, **kwargs):
            kwargs.setdefault("integrity", integrity)
            return original_create(*args, **kwargs)

        analyzer.create_peer = create_with_integrity
        report = analyzer.run_test(VideoSegmentPollutionTest(bed))
        verdict = report.verdicts[0]
        assert not verdict.triggered  # zero polluted segments played
        assert verdict.details["polluted_played"] == 0
        analyzer.teardown()

    def test_polluted_bytes_always_detected_by_digest(self):
        """The detection primitive itself: altering any byte changes the
        digest the player records, under every generated mutation."""
        from repro.proxy.fake_cdn import pollute_bytes

        rand_bytes = chaos_seeds(5, "digest-mutations")
        for seed in rand_bytes:
            data = hashlib.sha256(str(seed).encode()).digest() * 100
            polluted = pollute_bytes(data, b"MARK")
            assert polluted != data
            assert hashlib.sha256(polluted).hexdigest() != hashlib.sha256(data).hexdigest()
