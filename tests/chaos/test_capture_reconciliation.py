"""Capture/drop reconciliation: in-flight drops are accounted, not lost.

``send_datagram`` records each :class:`CapturedPacket` with the outcome
known at send time — but a datagram can still be dropped *mid-flight*
(``host_down`` after a crash, ``no_socket``/``socket_closed`` after a
close), after every capture has already seen ``dropped=False``. The
regression pinned here: ``Network.in_flight_drops`` counts exactly
those late drops, so capture totals reconcile with the network's
conservation counters under chaos instead of overcounting deliveries.
"""

import pytest

from repro.net.addresses import Endpoint
from repro.net.capture import TrafficCapture
from repro.net.faults import FaultInjector, FaultPlan, HostCrash
from repro.net.network import Network
from repro.util.rand import DeterministicRandom

from tests.chaos.gen import (
    TRAFFIC_PORT,
    assert_conserved,
    chaos_seeds,
    pump_random_traffic,
    random_plan,
    random_topology,
)

IN_FLIGHT_REASONS = ("host_down", "no_socket", "socket_closed")


def capture_totals(capture: TrafficCapture) -> tuple[int, int]:
    """(recorded-as-delivered, recorded-as-dropped) over the capture."""
    dropped = sum(1 for p in capture.packets if p.dropped)
    return len(capture.packets) - dropped, dropped


class TestMidFlightCrash:
    def test_in_flight_drops_reconcile_capture_with_counters(self):
        """A crash while datagrams are in flight: captures said
        ``dropped=False``, delivery says ``host_down`` — the counter is
        exactly the gap."""
        net = Network(rand=DeterministicRandom("reconcile"), jitter=0.0)
        a = net.add_host("a", region="US")
        b = net.add_host("b", region="US")
        b.bind_udp(TRAFFIC_PORT)
        tap = net.add_capture(TrafficCapture("reconcile-tap"))
        # Crash lands at t=10ms — under the 20 ms flight time, so every
        # datagram sent before the crash is captured as not-dropped and
        # then dropped as host_down at delivery.
        FaultInjector(net).arm(FaultPlan((HostCrash(at=0.01, host="b"),)))
        for i in range(7):
            net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), bytes([i]))
        net.loop.run_all()
        assert_conserved(net)
        assert net.datagrams_delivered == 0
        assert net.drops_by_reason == {"host_down": 7}
        assert net.in_flight_drops == 7
        cap_delivered, cap_dropped = capture_totals(tap)
        # The capture overcounts deliveries by exactly in_flight_drops…
        assert cap_dropped == 0
        assert cap_delivered == 7
        # …and reconciles once the counter is subtracted.
        assert cap_delivered - net.in_flight_drops == net.datagrams_delivered

    def test_send_time_drops_are_not_in_flight_drops(self):
        """Drops decided at send (loss, host already down, unroutable)
        are capture-visible and must not touch the in-flight counter."""
        net = Network(rand=DeterministicRandom("sendtime"), jitter=0.0)
        a = net.add_host("a", region="US")
        b = net.add_host("b", region="US")
        b.bind_udp(TRAFFIC_PORT)
        tap = net.add_capture(TrafficCapture("sendtime-tap"))
        injector = FaultInjector(net)
        injector.arm(FaultPlan((HostCrash(at=0.0, host="b"),)))
        net.loop.run_until(0.001)  # the crash applies before any send
        net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        net.send_datagram(a, TRAFFIC_PORT, Endpoint("198.51.100.7", 9), b"y")
        net.loop.run_all()
        assert_conserved(net)
        assert net.drops_by_reason == {"host_down": 1, "unroutable": 1}
        assert net.in_flight_drops == 0
        cap_delivered, cap_dropped = capture_totals(tap)
        assert cap_dropped == 2 and cap_delivered == 0

    def test_socket_close_mid_flight_counts(self):
        net = Network(rand=DeterministicRandom("close"), jitter=0.0)
        a = net.add_host("a", region="US")
        b = net.add_host("b", region="US")
        sock = b.bind_udp(TRAFFIC_PORT)
        net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), b"y")
        # close() releases the port => first drop is no_socket; a
        # rebound-but-closed socket would be socket_closed instead.
        net.loop.schedule(0.001, sock.close)
        net.loop.run_all()
        assert_conserved(net)
        assert net.drops_by_reason == {"no_socket": 2}
        assert net.in_flight_drops == 2

    @pytest.mark.parametrize("seed", chaos_seeds(3, "capture-reconcile"))
    def test_property_captures_reconcile_under_chaos_mix(self, seed):
        """Over a full random chaos scenario: capture totals, drop
        reasons and the in-flight counter balance exactly."""
        net = Network(rand=DeterministicRandom(seed))
        rand = DeterministicRandom(f"cap-reconcile:{seed}")
        hosts = random_topology(rand.fork("topo"), net)
        tap = net.add_capture(TrafficCapture("chaos-tap"))
        FaultInjector(net).arm(random_plan(rand.fork("faults"), hosts, horizon=30.0))
        pump_random_traffic(rand.fork("traffic"), net, hosts, count=300, horizon=25.0)
        net.loop.run_until(40.0)
        assert_conserved(net)
        assert net.datagrams_in_flight == 0
        cap_delivered, cap_dropped = capture_totals(tap)
        assert cap_delivered + cap_dropped == net.datagrams_sent
        # Send-time verdicts match; the late drops are exactly the gap.
        assert cap_delivered - net.in_flight_drops == net.datagrams_delivered
        assert cap_dropped == net.datagrams_dropped - net.in_flight_drops
        # Late drops only ever carry a delivery-time reason (host_down
        # can also be decided at send, so <= rather than ==).
        assert net.in_flight_drops <= sum(
            net.drops_by_reason.get(reason, 0) for reason in IN_FLIGHT_REASONS
        )
