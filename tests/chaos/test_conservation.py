"""Datagram conservation: sent = delivered + dropped + in-flight, always.

One regression test per drop path pins that each path counts exactly
once (the satellite audit: loss, unroutable, nat_filtered, no_host,
no_socket, socket_closed, host_down on both sides, link_down,
fault_loss, partition), then seed-driven properties check the invariant
over whole random topologies under whole random fault plans.
"""

import pytest

from repro.net.addresses import Endpoint
from repro.net.clock import EventLoop
from repro.net.faults import (
    Degrade,
    FaultInjector,
    FaultPlan,
    HostCrash,
    LinkConditions,
    LinkFlap,
    Partition,
)
from repro.net.nat import NatType
from repro.net.network import Network
from repro.util.rand import DeterministicRandom

from tests.chaos.gen import (
    TRAFFIC_PORT,
    assert_conserved,
    chaos_rand,
    chaos_seeds,
    pump_random_traffic,
    random_plan,
    random_topology,
)


def make_net(loss_rate: float = 0.0, seed: int = 99) -> Network:
    return Network(EventLoop(), rand=DeterministicRandom(seed), loss_rate=loss_rate)


def drops(network: Network, reason: str) -> int:
    return network.drops_by_reason.get(reason, 0)


class TestDropPathsCountOnce:
    """Each drop path increments datagrams_dropped exactly once."""

    def test_global_loss(self):
        network = make_net(loss_rate=1.0)
        a = network.add_host("a")
        b = network.add_host("b")
        b.bind_udp(TRAFFIC_PORT)
        network.send_datagram(a, 1, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        assert network.datagrams_dropped == 1
        assert drops(network, "loss") == 1
        assert_conserved(network)

    def test_unroutable_destination(self):
        network = make_net()
        a = network.add_host("a")
        network.send_datagram(a, 1, Endpoint("198.51.100.1", 9), b"x")
        assert drops(network, "unroutable") == 1
        assert network.datagrams_dropped == 1
        assert_conserved(network)

    def test_nat_filtered(self):
        network = make_net()
        a = network.add_host("a")
        nat = network.add_nat(NatType.PORT_RESTRICTED_CONE)
        behind = network.add_host("b", nat=nat)
        behind.bind_udp(TRAFFIC_PORT)
        # No outbound mapping exists, so the inbound datagram is filtered.
        network.send_datagram(a, 1, Endpoint(nat.external_ip, 40_000), b"x")
        assert drops(network, "nat_filtered") == 1
        assert network.datagrams_dropped == 1
        assert_conserved(network)

    def test_no_host_behind_mapping(self):
        network = make_net()
        a = network.add_host("a")
        nat = network.add_nat(NatType.FULL_CONE)
        # Forge a mapping whose internal address has no Host object.
        internal = Endpoint(nat.allocate_internal_ip(), 7)
        wire = nat.outbound(internal, Endpoint(a.ip, 1))
        network.send_datagram(a, 1, Endpoint(nat.external_ip, wire.port), b"x")
        assert drops(network, "no_host") == 1
        assert_conserved(network)

    def test_no_socket(self):
        network = make_net()
        a = network.add_host("a")
        network.add_host("b")
        network.send_datagram(a, 1, Endpoint("5.0.0.2", 1234), b"x")
        network.loop.run_all()
        assert drops(network, "no_socket") == 1
        assert network.datagrams_delivered == 0
        assert_conserved(network)

    def test_socket_closed_in_flight(self):
        network = make_net()
        a = network.add_host("a")
        b = network.add_host("b")
        sock = b.bind_udp(TRAFFIC_PORT)
        network.send_datagram(a, 1, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        # Mark closed without releasing the port: the socket is still
        # registered when the datagram lands, exercising the closed path
        # (close() releases the port, which is the no_socket path instead).
        sock.closed = True
        network.loop.run_all()
        assert drops(network, "socket_closed") == 1
        assert network.datagrams_delivered == 0
        assert_conserved(network)

    def test_host_down_sender_side(self):
        network = make_net()
        a = network.add_host("a")
        b = network.add_host("b")
        b.bind_udp(TRAFFIC_PORT)
        FaultInjector(network).arm(FaultPlan((HostCrash(at=0.0, host="a"),)))
        network.loop.run(0.1)
        network.send_datagram(a, 1, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        assert drops(network, "host_down") == 1
        assert_conserved(network)

    def test_host_down_receiver_side(self):
        network = make_net()
        a = network.add_host("a")
        b = network.add_host("b")
        b.bind_udp(TRAFFIC_PORT)
        FaultInjector(network).arm(FaultPlan((HostCrash(at=0.0, host="b"),)))
        network.loop.run(0.1)
        network.send_datagram(a, 1, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        assert drops(network, "host_down") == 1
        assert_conserved(network)

    def test_host_crashes_while_datagram_in_flight(self):
        network = make_net()
        a = network.add_host("a")
        b = network.add_host("b")
        b.bind_udp(TRAFFIC_PORT)
        injector = FaultInjector(network)
        network.send_datagram(a, 1, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        assert network.datagrams_in_flight == 1
        # The crash fires before the ~20ms delivery latency elapses.
        injector.arm(FaultPlan((HostCrash(at=0.001, host="b"),)))
        network.loop.run_all()
        assert drops(network, "host_down") == 1
        assert network.datagrams_in_flight == 0
        assert_conserved(network)

    def test_link_down(self):
        network = make_net()
        a = network.add_host("a")
        b = network.add_host("b")
        b.bind_udp(TRAFFIC_PORT)
        FaultInjector(network).arm(FaultPlan((LinkFlap(at=0.0, a="a", b="b",
                                                       duration=10.0),)))
        network.loop.run(0.1)
        network.send_datagram(a, 1, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        assert drops(network, "link_down") == 1
        assert_conserved(network)

    def test_fault_loss(self):
        network = make_net()
        a = network.add_host("a")
        b = network.add_host("b")
        b.bind_udp(TRAFFIC_PORT)
        FaultInjector(network).arm(FaultPlan((
            Degrade(at=0.0, a="a", b="b", duration=10.0,
                    conditions=LinkConditions(loss=1.0)),
        )))
        network.loop.run(0.1)
        network.send_datagram(a, 1, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        assert drops(network, "fault_loss") == 1
        assert_conserved(network)

    def test_partition_drop(self):
        network = make_net()
        a = network.add_host("a", region="US")
        b = network.add_host("b", region="DE")
        b.bind_udp(TRAFFIC_PORT)
        FaultInjector(network).arm(FaultPlan((Partition(at=0.0, region_a="US",
                                                        region_b="DE", duration=10.0),)))
        network.loop.run(0.1)
        network.send_datagram(a, 1, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        assert drops(network, "link_down") == 1  # partitions block links
        assert_conserved(network)

    def test_successful_delivery_counts_delivered(self):
        network = make_net()
        a = network.add_host("a")
        b = network.add_host("b")
        b.bind_udp(TRAFFIC_PORT)
        network.send_datagram(a, 1, Endpoint(b.ip, TRAFFIC_PORT), b"x")
        assert network.datagrams_in_flight == 1
        assert_conserved(network)  # holds mid-flight too
        network.loop.run_all()
        assert network.datagrams_delivered == 1
        assert network.datagrams_dropped == 0
        assert_conserved(network)


class TestConservationProperties:
    """Seed-driven: random topology x random plan x random traffic."""

    @pytest.mark.parametrize("seed", chaos_seeds(5, "conservation"))
    def test_conserved_under_chaos_mix(self, seed):
        rand = DeterministicRandom(seed)
        network = Network(EventLoop(), rand=rand.fork("net"),
                          loss_rate=rand.uniform(0.0, 0.2))
        hosts = random_topology(rand.fork("topo"), network)
        injector = FaultInjector(network)
        injector.arm(random_plan(rand.fork("faults"), hosts, horizon=30.0))
        pump_random_traffic(rand.fork("traffic"), network, hosts,
                            count=250, horizon=25.0)
        # The invariant holds at every intermediate point, not just at the end.
        for _ in range(40):
            network.loop.run(1.0)
            assert_conserved(network)
        network.loop.run_all()
        assert network.datagrams_in_flight == 0
        assert_conserved(network)
        assert network.datagrams_sent == 250

    @pytest.mark.parametrize("seed", chaos_seeds(3, "conservation-calm"))
    def test_conserved_without_faults(self, seed):
        rand = DeterministicRandom(seed)
        network = Network(EventLoop(), rand=rand.fork("net"))
        hosts = random_topology(rand.fork("topo"), network)
        pump_random_traffic(rand.fork("traffic"), network, hosts,
                            count=150, horizon=10.0)
        network.loop.run_all()
        assert network.datagrams_in_flight == 0
        assert_conserved(network)

    @pytest.mark.parametrize("seed", chaos_seeds(3, "conservation-replay"))
    def test_chaos_run_replays_identically(self, seed):
        def one_run():
            rand = DeterministicRandom(seed)
            network = Network(EventLoop(), rand=rand.fork("net"), loss_rate=0.1)
            hosts = random_topology(rand.fork("topo"), network)
            FaultInjector(network).arm(random_plan(rand.fork("faults"), hosts))
            pump_random_traffic(rand.fork("traffic"), network, hosts, count=200)
            network.loop.run_all()
            return (
                network.datagrams_sent,
                network.datagrams_delivered,
                network.datagrams_dropped,
                dict(network.drops_by_reason),
            )

        assert one_run() == one_run()
