"""Batched delivery equivalence: the columnar drain is order-invisible.

The batched datagram plane (``Network.batch_delivery`` + the loop's
per-slot column rings) is, like the timing wheel before it, a pure
performance structure: one drain frame fires a whole run of due
datagrams, but the selection still merges per item against the heap by
``(when, seq)``. These property tests mirror
``tests/chaos/test_timing_wheel.py`` — whole chaos scenarios run three
ways (batched, unbatched-wheel, pure heap) and must produce bit-equal
dispatch traces and counters — plus seed-2024 digest-pin equality at
the experiment level and boundary tests for the drain mechanics
(step/run_until/run_all semantics, mid-run reconfigure flush, inbox
eviction parity, counter exposure).
"""

import pytest

import repro.experiments  # noqa: F401  - triggers @experiment registration
from repro.harness import registry
from repro.harness.runner import execute_spec
from repro.net.addresses import Endpoint
from repro.net.clock import EventLoop
from repro.net.faults import FaultInjector
from repro.net.network import Network
from repro.util.rand import DeterministicRandom

from tests.chaos.gen import (
    TRAFFIC_PORT,
    assert_conserved,
    chaos_seeds,
    pump_random_traffic,
    random_plan,
    random_topology,
)
from tests.chaos.test_timing_wheel import OrderTrace


def run_scenario(seed: int, mode: str, faults: bool) -> tuple[list, dict]:
    """One full seeded chaos run; returns (dispatch trace, counters).

    ``mode`` picks the delivery machinery: ``batched`` (the default
    columnar plane), ``unbatched`` (wheel on, classic 4-tuple entries),
    or ``heap`` (wheel disabled outright — the pure-heap control).
    """
    net = Network(rand=DeterministicRandom(seed))
    if mode == "heap":
        net.loop.configure_wheel(None, 0)
    elif mode == "unbatched":
        net.batch_delivery = False
    else:
        assert mode == "batched" and net.batch_delivery
    rand = DeterministicRandom(f"batched-eq:{seed}")
    hosts = random_topology(rand.fork("topo"), net)
    if faults:
        FaultInjector(net).arm(random_plan(rand.fork("faults"), hosts, horizon=30.0))
    pump_random_traffic(rand.fork("traffic"), net, hosts, count=300, horizon=25.0)
    trace = OrderTrace()
    EventLoop.add_sink(trace)
    try:
        net.loop.run_until(40.0)
    finally:
        EventLoop.remove_sink(trace)
    assert_conserved(net)
    if mode == "batched":
        assert net.loop.wheel_batched > 0  # the columns actually carried traffic
    else:
        assert net.loop.wheel_batched == 0
        assert net.loop.wheel_batch_drains == 0
    counters = {
        "sent": net.datagrams_sent,
        "delivered": net.datagrams_delivered,
        "dropped": net.datagrams_dropped,
        "by_reason": dict(net.drops_by_reason),
        "events": net.loop.events_fired,
    }
    return trace.events, counters


class TestBatchedEquivalence:
    """Same seed, same plan => same dispatch order, batched or not."""

    @pytest.mark.parametrize("seed", chaos_seeds(3, "batched-delivery"))
    @pytest.mark.parametrize("faults", [False, True], ids=["calm", "chaos-mix"])
    def test_dispatch_trace_is_bit_identical(self, seed, faults):
        batched_trace, batched_counts = run_scenario(seed, "batched", faults)
        plain_trace, plain_counts = run_scenario(seed, "unbatched", faults)
        heap_trace, heap_counts = run_scenario(seed, "heap", faults)
        assert batched_trace == plain_trace == heap_trace
        assert batched_counts == plain_counts == heap_counts
        assert len(batched_trace) == batched_counts["events"]

    @pytest.mark.parametrize("name", ["bandwidth", "chaos"])
    def test_experiment_digest_survives_batching_removal(self, name, monkeypatch):
        """The pinned seed-2024 digests do not depend on the batched plane."""
        params = registry.get(name).resolve_params(quick=True)
        batched = execute_spec(name, 2024, params)
        assert batched.record.ok, batched.record.error
        # batch_delivery is an instance attribute, so patch it off at
        # construction time for every Network the experiment builds.
        orig_init = Network.__init__

        def unbatched_init(self, *args, **kwargs):
            orig_init(self, *args, **kwargs)
            self.batch_delivery = False

        monkeypatch.setattr(Network, "__init__", unbatched_init)
        unbatched = execute_spec(name, 2024, params)
        assert unbatched.record.ok, unbatched.record.error
        assert batched.record.result_digest == unbatched.record.result_digest


def one_host_net(**bind_kwargs):
    """A two-host network with one bound destination socket."""
    net = Network(rand=DeterministicRandom("batched-unit"), jitter=0.0)
    a = net.add_host("a", region="US")
    b = net.add_host("b", region="US")
    sock = b.bind_udp(TRAFFIC_PORT, **bind_kwargs)
    return net, a, b, sock


class TestDrainMechanics:
    def test_step_fires_exactly_one_batched_row(self):
        net, a, b, sock = one_host_net()
        for i in range(5):
            net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), bytes([i]))
        assert net.loop.pending == 5
        assert net.loop.step() is True
        assert net.datagrams_delivered == 1
        assert net.loop.pending == 4
        assert net.loop.events_fired == 1
        net.loop.run_all()
        assert [payload for payload, _ in sock.inbox] == [bytes([i]) for i in range(5)]

    def test_run_until_deadline_splits_a_batched_bucket(self):
        net, a, b, sock = one_host_net()
        # Same-region base latency is 20 ms (jitter 0): both land at a
        # deterministic `when`; a deadline between them fires only one.
        net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), b"early")
        net.loop.now = 0.005
        net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), b"late")
        net.loop.run_until(0.021)
        assert [p for p, _ in sock.inbox] == [b"early"]
        assert net.loop.pending == 1
        net.loop.run_until(0.03)
        assert [p for p, _ in sock.inbox] == [b"early", b"late"]

    def test_run_all_max_events_bound_is_exact_for_batched_rows(self):
        net, a, b, sock = one_host_net()
        for i in range(6):
            net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), bytes([i]))
        with pytest.raises(RuntimeError, match="exceeded 3 events"):
            net.loop.run_all(max_events=3)
        # Exactly 3 fired — the drain stopped mid-run, no 4th event.
        assert net.datagrams_delivered == 3
        assert net.loop.events_fired == 3
        assert net.loop.pending == 3
        net.loop.run_all()
        assert net.datagrams_delivered == 6

    def test_heap_event_interleaves_into_a_batched_run(self):
        """A heap timer due mid-run fires between two same-bucket rows."""
        net, a, b, sock = one_host_net()
        order = []
        sock.handler = lambda payload, src, s: order.append(payload)
        net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), b"first")
        # Repeating handles are heap-class by design, and `until` ends
        # the chain after its one due tick. Same `when` as both rows
        # (jitter is 0, base latency 20 ms), seq strictly between
        # theirs: the drain must stop mid-run to let it fire.
        net.loop.call_every(0.02, order.append, "timer", until=0.02)
        net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), b"second")
        net.loop.run_all()
        assert order == [b"first", "timer", b"second"]

    def test_pending_matches_queue_scan_with_column_residents(self):
        net, a, b, sock = one_host_net()
        for i in range(4):
            net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), bytes([i]))
        net.loop.schedule(5.0, lambda: None)  # far-future heap resident
        queued = list(net.loop._iter_queued())
        assert net.loop.pending == 5 == len(queued)
        # Column rows surface in the legacy 4-tuple vocabulary.
        fast = [e for e in queued if len(e) == 4]
        assert len(fast) == 4
        for entry in fast:
            assert entry[2] == net._deliver_cb
            assert entry[3][0] is b and entry[3][1] == TRAFFIC_PORT

    def test_configure_wheel_flushes_column_rows_order_intact(self):
        net, a, b, sock = one_host_net()
        for i in range(4):
            net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), bytes([i]))
        net.auto_retune = False
        net.loop.configure_wheel(None, 0)  # flush columns to the heap
        assert net.loop.wheel_occupancy == 0
        assert net.loop.pending == 4
        net.loop.run_all()
        assert [p for p, _ in sock.inbox] == [bytes([i]) for i in range(4)]
        assert net.datagrams_delivered == 4

    def test_inbox_eviction_parity_batched_vs_unbatched(self):
        """Per-item eviction: a batched burst evicts exactly like N singles."""
        inboxes = []
        for batched in (True, False):
            net = Network(rand=DeterministicRandom("evict"), jitter=0.0)
            net.batch_delivery = batched
            a = net.add_host("a", region="US")
            b = net.add_host("b", region="US")
            sock = b.bind_udp(TRAFFIC_PORT, inbox_limit=4)
            for i in range(11):
                net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), bytes([i]))
            net.loop.run_all()
            inboxes.append(list(sock.inbox))
        assert inboxes[0] == inboxes[1]
        # 11 per-item appends through a limit-4 ring: evictions at the
        # 5th, 8th and 11th append leave exactly the last two datagrams
        # — a batch-extend + single eviction would have kept more.
        assert [p for p, _ in inboxes[0]] == [bytes([9]), bytes([10])]

    def test_handler_sending_into_the_draining_bucket_stays_ordered(self):
        """Re-entrant sends from a handler keep the merged order."""
        net, a, b, sock = one_host_net()
        got = []

        def reply_once(payload, src, s):
            got.append(payload)
            if payload == b"ping":
                # Lands ~20 ms later: a fresh (later) event, fired after
                # the remainder of the current batched run.
                net.send_datagram(b, TRAFFIC_PORT, Endpoint(a.ip, TRAFFIC_PORT), b"pong")

        sock.handler = reply_once
        a.bind_udp(TRAFFIC_PORT, handler=lambda p, s, sk: got.append(p))
        net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), b"ping")
        net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), b"after")
        net.loop.run_all()
        assert got == [b"ping", b"after", b"pong"]
        assert_conserved(net)

    def test_wheel_stats_expose_batching_counters(self):
        net, a, b, sock = one_host_net()
        for i in range(3):
            net.send_datagram(a, TRAFFIC_PORT, Endpoint(b.ip, TRAFFIC_PORT), bytes([i]))
        net.loop.run_all()
        stats = net.loop.wheel_stats()
        assert stats["batched"] == 3
        assert stats["scheduled"] == 3  # batched appends still count as scheduled
        assert stats["batch_drains"] >= 1
        assert net.datagrams_delivered == 3
