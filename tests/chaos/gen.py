"""Generators for the chaos property suite.

No hypothesis here: every "random" structure (topology, fault plan,
traffic pattern) is drawn from a :class:`DeterministicRandom` keyed by
``CHAOS_SEED`` (an environment variable CI varies across jobs), so a
failing example is reproduced exactly by re-running with the same seed.
"""

from __future__ import annotations

import os

from repro.net.addresses import Endpoint
from repro.net.faults import FaultPlan, RandomFaultPlanner
from repro.net.nat import NatType
from repro.net.network import Host, Network
from repro.util.rand import DeterministicRandom

#: The base seed for this whole test session. CI runs the suite at
#: several values; locally it defaults to 0 (always the same examples).
BASE_SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: Regions generated topologies spread over (partition fault domain).
REGIONS = ("US", "DE")

#: The port every generated host binds (one socket per host).
TRAFFIC_PORT = 500

_NAT_TYPES = (NatType.FULL_CONE, NatType.PORT_RESTRICTED_CONE, NatType.SYMMETRIC)


def chaos_rand(salt: str) -> DeterministicRandom:
    """The generator stream for one test, independent per ``salt``."""
    return DeterministicRandom(f"chaos:{BASE_SEED}:{salt}")


def chaos_seeds(n: int, salt: str) -> list[int]:
    """``n`` example seeds for a parametrized property test."""
    rand = chaos_rand(salt)
    return [rand.randint(0, 2**31 - 1) for _ in range(n)]


def random_topology(
    rand: DeterministicRandom,
    network: Network,
    min_hosts: int = 3,
    max_hosts: int = 8,
) -> list[Host]:
    """A mixed public/NATed host set, each with one bound socket."""
    hosts: list[Host] = []
    for i in range(rand.randint(min_hosts, max_hosts)):
        region = rand.choice(list(REGIONS))
        if rand.random() < 0.4:
            nat = network.add_nat(rand.choice(_NAT_TYPES))
            host = network.add_host(f"h{i}", nat=nat, region=region)
        else:
            host = network.add_host(f"h{i}", region=region)
        host.bind_udp(TRAFFIC_PORT, handler=None)
        hosts.append(host)
    return hosts


def random_plan(
    rand: DeterministicRandom,
    hosts: list[Host],
    horizon: float = 30.0,
    hostnames: tuple[str, ...] = (),
) -> FaultPlan:
    """A full chaos-mix plan over the generated topology."""
    planner = RandomFaultPlanner(rand.fork("plan"))
    return planner.chaos_mix(
        [h.name for h in hosts], horizon, regions=REGIONS, hostnames=hostnames
    )


def pump_random_traffic(
    rand: DeterministicRandom,
    network: Network,
    hosts: list[Host],
    count: int = 200,
    horizon: float = 25.0,
) -> None:
    """Schedule ``count`` datagram sends at random times between hosts.

    A small fraction aims at an unroutable address and another at a
    NATed host's unmapped external port, so the route-failure drop paths
    are exercised alongside fault-induced ones.
    """
    for _ in range(count):
        at = round(rand.uniform(0.0, horizon), 3)
        src = rand.choice(hosts)
        dst = rand.choice(hosts)
        if rand.random() < 0.05:
            target = Endpoint("198.51.100.7", 999)  # TEST-NET-2: unroutable
        else:
            target = Endpoint(dst.public_ip, TRAFFIC_PORT)
        payload = rand.bytes(rand.randint(8, 400))
        network.loop.schedule(at, network.send_datagram, src, TRAFFIC_PORT, target, payload)


def assert_conserved(network: Network) -> None:
    """The conservation invariant every chaos run must satisfy."""
    assert network.datagrams_sent == (
        network.datagrams_delivered + network.datagrams_dropped + network.datagrams_in_flight
    ), (
        f"sent={network.datagrams_sent} != delivered={network.datagrams_delivered}"
        f" + dropped={network.datagrams_dropped} + in_flight={network.datagrams_in_flight}"
    )
    assert sum(network.drops_by_reason.values()) == network.datagrams_dropped
