"""SdkStats serialisation: the counters chaos runs digest and compare."""

import json

from repro.harness.result import content_digest
from repro.pdn.sdk import SdkStats


class TestToDict:
    def test_surfaces_fallback_and_churn_counters(self):
        stats = SdkStats(p2p_fallbacks=3, peer_churn_evictions=2)
        data = stats.to_dict()
        assert data["p2p_fallbacks"] == 3
        assert data["peer_churn_evictions"] == 2

    def test_every_counter_field_exported(self):
        import dataclasses

        data = SdkStats().to_dict()
        for field in dataclasses.fields(SdkStats):
            assert field.name in data, f"to_dict misses {field.name}"

    def test_derived_total_included(self):
        stats = SdkStats(bytes_p2p_down=10, bytes_p2p_up=5)
        assert stats.to_dict()["bytes_p2p_total"] == 15

    def test_is_json_serialisable(self):
        stats = SdkStats(bytes_cdn=1, p2p_latencies=[0.123456789123])
        text = json.dumps(stats.to_dict(), sort_keys=True)
        assert json.loads(text)["bytes_cdn"] == 1


class TestRoundTrip:
    def test_json_round_trip(self):
        stats = SdkStats(
            bytes_cdn=100,
            bytes_p2p_down=200,
            bytes_p2p_up=50,
            hash_bytes=10,
            p2p_requests_served=4,
            p2p_requests_failed=1,
            p2p_fetches=6,
            p2p_fallbacks=2,
            neighbors_banned=1,
            peer_churn_evictions=3,
            p2p_latencies=[0.5, 0.75],
        )
        rebuilt = SdkStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt == stats

    def test_round_trip_preserves_digest(self):
        stats = SdkStats(p2p_fetches=9, p2p_fallbacks=4, p2p_latencies=[0.25])
        rebuilt = SdkStats.from_dict(stats.to_dict())
        assert content_digest(rebuilt.to_dict()) == content_digest(stats.to_dict())

    def test_from_empty_dict_is_defaults(self):
        assert SdkStats.from_dict({}) == SdkStats()
