"""SdkStats serialisation: the counters chaos runs digest and compare."""

import json

from repro.harness.result import content_digest
from repro.pdn.sdk import SdkStats


class TestToDict:
    def test_surfaces_fallback_and_churn_counters(self):
        stats = SdkStats(p2p_fallbacks=3, peer_churn_evictions=2)
        data = stats.to_dict()
        assert data["p2p_fallbacks"] == 3
        assert data["peer_churn_evictions"] == 2

    def test_every_counter_field_exported(self):
        import dataclasses

        data = SdkStats().to_dict()
        for field in dataclasses.fields(SdkStats):
            assert field.name in data, f"to_dict misses {field.name}"

    def test_derived_total_included(self):
        stats = SdkStats(bytes_p2p_down=10, bytes_p2p_up=5)
        assert stats.to_dict()["bytes_p2p_total"] == 15

    def test_is_json_serialisable(self):
        stats = SdkStats(bytes_cdn=1, p2p_latencies=[0.123456789123])
        text = json.dumps(stats.to_dict(), sort_keys=True)
        assert json.loads(text)["bytes_cdn"] == 1


class TestRoundTrip:
    def test_json_round_trip(self):
        stats = SdkStats(
            bytes_cdn=100,
            bytes_p2p_down=200,
            bytes_p2p_up=50,
            hash_bytes=10,
            p2p_requests_served=4,
            p2p_requests_failed=1,
            p2p_fetches=6,
            p2p_fallbacks=2,
            neighbors_banned=1,
            peer_churn_evictions=3,
            p2p_latencies=[0.5, 0.75],
        )
        rebuilt = SdkStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt == stats

    def test_round_trip_preserves_digest(self):
        stats = SdkStats(p2p_fetches=9, p2p_fallbacks=4, p2p_latencies=[0.25])
        rebuilt = SdkStats.from_dict(stats.to_dict())
        assert content_digest(rebuilt.to_dict()) == content_digest(stats.to_dict())

    def test_from_empty_dict_is_defaults(self):
        assert SdkStats.from_dict({}) == SdkStats()


class TestSerialisationFixedPoint:
    def test_to_dict_from_dict_to_dict_is_a_fixed_point(self):
        """Regression: from_dict left p2p_latencies as whatever JSON gave
        it (ints survive a round trip of e.g. [1, 2]), so a second
        to_dict could differ from the first and shift digests."""
        stats = SdkStats(bytes_cdn=7, p2p_latencies=[1, 2, 0.25])
        first = stats.to_dict()
        second = SdkStats.from_dict(json.loads(json.dumps(first))).to_dict()
        assert first == second
        assert content_digest(first) == content_digest(second)

    def test_from_dict_coerces_latencies_to_float(self):
        rebuilt = SdkStats.from_dict({"p2p_latencies": [1, 2]})
        assert all(isinstance(x, float) for x in rebuilt.p2p_latencies)
        assert rebuilt.p2p_latency_count == 2
        assert rebuilt.p2p_latency_min == 1.0
        assert rebuilt.p2p_latency_max == 2.0


class TestLatencySummary:
    def test_streaming_summary_matches_samples(self):
        from repro.util.rand import DeterministicRandom

        stats = SdkStats()
        stats.attach_rand(DeterministicRandom("latency-test"))
        samples = [0.05, 0.20, 0.10, 0.35, 0.15]
        for s in samples:
            stats.record_latency(s)
        data = stats.to_dict()
        assert data["p2p_latency_count"] == 5
        assert data["p2p_latency_sum"] == round(sum(samples), 9)
        assert data["p2p_latency_min"] == 0.05
        assert data["p2p_latency_max"] == 0.35
        assert data["p2p_latency_p50"] == 0.15

    def test_reservoir_is_capped_but_summary_is_exact(self):
        from repro.pdn.sdk import LATENCY_RESERVOIR_CAP
        from repro.util.rand import DeterministicRandom

        stats = SdkStats()
        stats.attach_rand(DeterministicRandom("latency-cap"))
        n = 4 * LATENCY_RESERVOIR_CAP
        for i in range(n):
            stats.record_latency(0.001 * (i + 1))
        assert len(stats.p2p_latencies) == LATENCY_RESERVOIR_CAP
        assert stats.p2p_latency_count == n
        assert stats.p2p_latency_min == 0.001
        assert stats.p2p_latency_max == round(0.001 * n, 9) or \
            stats.p2p_latency_max == 0.001 * n
        # Percentiles come from the reservoir: bounded by the true range.
        p95 = stats.to_dict()["p2p_latency_p95"]
        assert 0.001 <= p95 <= 0.001 * n

    def test_reservoir_replay_is_deterministic(self):
        from repro.pdn.sdk import LATENCY_RESERVOIR_CAP
        from repro.util.rand import DeterministicRandom

        def run():
            stats = SdkStats()
            stats.attach_rand(DeterministicRandom("latency-replay"))
            for i in range(3 * LATENCY_RESERVOIR_CAP):
                stats.record_latency(0.0001 * (i % 97))
            return content_digest(stats.to_dict())

        assert run() == run()
