"""The ``repro chaos`` subcommand: registration, CLI, manifests, verify."""

import json

import pytest

from repro import cli
from repro.experiments.chaos_faults import run as chaos_run
from repro.harness import registry
from repro.harness.manifest import RunRecord
from repro.harness.runner import Runner, RunRequest
from repro.util.errors import ConfigurationError

QUICK = {"viewers": 3, "segments": 5, "segment_seconds": 3.0,
         "segment_bytes": 30_000, "join_stagger": 1.5}


class TestRegistration:
    def test_chaos_registered_with_faults_option(self):
        spec = registry.get("chaos")
        assert spec.module == "repro.experiments.chaos_faults"
        flags = {opt.flag: opt for opt in spec.options}
        assert "--faults" in flags
        assert flags["--faults"].default == "chaos-mix"
        assert spec.quick_params  # has a cheap CI shape

    def test_cli_subcommand_runs(self, capsys):
        assert cli.main(["chaos", "--quick", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Chaos run — plan 'chaos-mix'" in out
        assert "conservation (sent = delivered + dropped + in flight)" in out


class TestManifest:
    def test_manifest_records_plan_digest(self, tmp_path):
        runner = Runner(jobs=1, out_dir=tmp_path)
        outcome = runner.run([RunRequest("chaos", 7, dict(QUICK))])[0]
        assert outcome.record.ok
        manifest = json.loads((tmp_path / "chaos.manifest.json").read_text())
        assert manifest["extra"]["plan_name"] == "chaos-mix"
        assert manifest["extra"]["plan_digest"] == outcome.result_dict["plan_digest"]

    def test_manifest_round_trips_extra(self, tmp_path):
        runner = Runner(jobs=1, out_dir=tmp_path)
        runner.run([RunRequest("chaos", 7, dict(QUICK))])
        record = RunRecord.from_dict(
            json.loads((tmp_path / "chaos.manifest.json").read_text())
        )
        assert set(record.extra) == {"plan_name", "plan_digest"}


class TestVerifyDeterminism:
    def test_two_runs_same_digest(self):
        report = Runner(jobs=1).verify(["chaos"], seed=11, runs=2,
                                       params_for={"chaos": QUICK})
        assert report.ok
        first, second = report.digests["chaos"]
        assert first == second

    def test_serial_and_parallel_agree(self):
        serial = Runner(jobs=1).verify(["chaos"], seed=11, runs=1,
                                       params_for={"chaos": QUICK})
        parallel = Runner(jobs=4).verify(["chaos"], seed=11, runs=2,
                                         params_for={"chaos": QUICK})
        assert parallel.ok
        assert set(parallel.digests["chaos"]) == set(serial.digests["chaos"])


class TestPlanInputs:
    def test_faults_accepts_json_plan_file(self, tmp_path):
        plan_path = tmp_path / "two-crashes.json"
        plan_path.write_text(json.dumps({"events": [
            {"kind": "host_crash", "at": 3.0, "host": "chaos-viewer-0",
             "down_for": 4.0},
            {"kind": "host_crash", "at": 9.0, "host": "chaos-viewer-1",
             "down_for": 4.0},
        ]}))
        result = chaos_run(seed=5, faults=str(plan_path), **QUICK)
        assert result.plan_name == "two-crashes"  # named from the file stem
        assert result.fault_events_applied == 2
        assert result.conservation_ok

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan"):
            chaos_run(seed=5, faults="definitely-not-a-preset", **QUICK)
