"""Seed-driven property-based invariant suite for the fault-injection layer."""
