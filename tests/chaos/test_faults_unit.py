"""Unit tests for the fault-injection primitives (plans, events, presets)."""

import json

import pytest

from repro.net.clock import EventLoop
from repro.net.faults import (
    CLEAR,
    Degrade,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    HostCrash,
    LinkConditions,
    LinkFlap,
    NatRebind,
    Partition,
    PLAN_PRESETS,
    RandomFaultPlanner,
    ServiceOutage,
    load_plan,
)
from repro.net.network import Network
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRandom

from tests.chaos.gen import chaos_rand, chaos_seeds


class TestLinkConditions:
    def test_losses_compose_as_independent_trials(self):
        stacked = LinkConditions(loss=0.5).stacked(LinkConditions(loss=0.5))
        assert stacked.loss == pytest.approx(0.75)

    def test_latencies_add_and_narrower_bandwidth_wins(self):
        a = LinkConditions(extra_latency=0.1, bandwidth_bytes_per_sec=50_000)
        b = LinkConditions(extra_latency=0.2, bandwidth_bytes_per_sec=20_000)
        stacked = a.stacked(b)
        assert stacked.extra_latency == pytest.approx(0.3)
        assert stacked.bandwidth_bytes_per_sec == 20_000

    def test_bandwidth_none_means_unconstrained(self):
        assert LinkConditions().stacked(LinkConditions()).bandwidth_bytes_per_sec is None
        one_sided = LinkConditions(bandwidth_bytes_per_sec=9_000).stacked(LinkConditions())
        assert one_sided.bandwidth_bytes_per_sec == 9_000

    def test_blocked_from_either_side_blocks(self):
        assert LinkConditions(blocked=True).stacked(CLEAR).blocked
        assert CLEAR.stacked(LinkConditions(blocked=True)).blocked
        assert not CLEAR.stacked(CLEAR).blocked

    def test_clear_is_identity_for_stacking(self):
        conditions = LinkConditions(loss=0.3, extra_latency=0.05,
                                    bandwidth_bytes_per_sec=1_000)
        assert conditions.stacked(CLEAR) == conditions

    def test_round_trip(self):
        conditions = LinkConditions(loss=0.25, extra_latency=0.1,
                                    bandwidth_bytes_per_sec=4_096, blocked=False)
        assert LinkConditions.from_dict(conditions.to_dict()) == conditions


class TestFaultEvents:
    EXAMPLES = [
        LinkFlap(at=1.0, a="a", b="b", duration=2.0),
        Degrade(at=2.0, a="a", b="b", duration=3.0,
                conditions=LinkConditions(loss=0.5)),
        Degrade(at=2.5, a="a", b=None, duration=1.0,
                conditions=LinkConditions(extra_latency=0.2)),
        HostCrash(at=3.0, host="a", down_for=5.0),
        HostCrash(at=3.5, host="b", down_for=None),
        NatRebind(at=4.0, host="a"),
        Partition(at=5.0, region_a="US", region_b="DE", duration=6.0),
        ServiceOutage(at=6.0, hostname="cdn.test", duration=2.0),
    ]

    @pytest.mark.parametrize("event", EXAMPLES, ids=lambda e: e.kind)
    def test_every_kind_round_trips(self, event):
        rebuilt = FaultEvent.from_dict(event.to_dict())
        assert rebuilt == event
        assert rebuilt.kind == event.kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultEvent.from_dict({"kind": "meteor_strike", "at": 1.0})


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan((HostCrash(at=9.0, host="b"), HostCrash(at=1.0, host="a")))
        assert [e.at for e in plan.events] == [1.0, 9.0]

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match="in the past"):
            FaultPlan((HostCrash(at=-1.0, host="a"),))

    def test_json_round_trip_preserves_digest(self):
        plan = FaultPlan(tuple(TestFaultEvents.EXAMPLES), name="example")
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt == plan
        assert rebuilt.digest() == plan.digest()

    def test_digest_independent_of_authoring_order(self):
        a, b = HostCrash(at=1.0, host="a"), HostCrash(at=2.0, host="b")
        assert FaultPlan((a, b)).digest() == FaultPlan((b, a)).digest()

    def test_digest_sensitive_to_content(self):
        base = FaultPlan((HostCrash(at=1.0, host="a"),))
        other = FaultPlan((HostCrash(at=1.0, host="b"),))
        assert base.digest() != other.digest()

    def test_len(self):
        assert len(FaultPlan(())) == 0
        assert len(FaultPlan((NatRebind(at=0.0, host="x"),))) == 1


class TestRandomFaultPlanner:
    @pytest.mark.parametrize("seed", chaos_seeds(3, "planner-determinism"))
    def test_same_seed_same_plan(self, seed):
        hosts = ["v0", "v1", "v2", "v3"]
        one = RandomFaultPlanner(DeterministicRandom(seed)).chaos_mix(
            hosts, 60.0, regions=("US", "DE"), hostnames=("cdn.test",)
        )
        two = RandomFaultPlanner(DeterministicRandom(seed)).chaos_mix(
            hosts, 60.0, regions=("US", "DE"), hostnames=("cdn.test",)
        )
        assert one.digest() == two.digest()

    def test_different_seeds_differ(self):
        hosts = ["v0", "v1", "v2", "v3"]
        digests = {
            RandomFaultPlanner(DeterministicRandom(seed)).chaos_mix(hosts, 60.0).digest()
            for seed in range(5)
        }
        assert len(digests) > 1

    def test_every_event_inside_horizon(self):
        rand = chaos_rand("planner-horizon")
        plan = RandomFaultPlanner(rand).chaos_mix(
            ["a", "b", "c"], 40.0, regions=("US", "DE"), hostnames=("cdn.x",)
        )
        assert all(0.0 <= e.at <= 40.0 for e in plan.events)


class TestLoadPlan:
    def _planner(self):
        return RandomFaultPlanner(chaos_rand("load-plan"))

    def test_every_preset_resolves(self):
        for name in PLAN_PRESETS:
            plan = load_plan(name, planner=self._planner(), hosts=["a", "b"],
                             horizon=30.0, regions=("US", "DE"), hostnames=("cdn.x",))
            assert plan.name == name

    def test_calm_preset_is_empty(self):
        plan = load_plan("calm", planner=self._planner(), hosts=["a"], horizon=10.0)
        assert len(plan) == 0

    def test_json_file_loads_with_stem_name(self, tmp_path):
        plan = FaultPlan((HostCrash(at=1.0, host="a", down_for=2.0),))
        path = tmp_path / "my-chaos.json"
        path.write_text(plan.to_json())
        loaded = load_plan(str(path))
        assert loaded.name == "my-chaos"
        assert loaded.events == plan.events

    def test_json_file_keeps_explicit_name(self, tmp_path):
        plan = FaultPlan((NatRebind(at=0.5, host="x"),), name="named")
        path = tmp_path / "whatever.json"
        path.write_text(plan.to_json())
        assert load_plan(str(path)).name == "named"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan"):
            load_plan("nope", planner=self._planner())

    def test_preset_without_planner_rejected(self):
        with pytest.raises(ConfigurationError, match="needs a seeded planner"):
            load_plan("churn")


class TestFaultInjector:
    def _network(self):
        loop = EventLoop()
        return Network(loop, rand=DeterministicRandom(7))

    def test_double_install_rejected(self):
        network = self._network()
        FaultInjector(network)
        with pytest.raises(ConfigurationError, match="already has a fault injector"):
            FaultInjector(network)

    def test_host_crash_marks_host_down_then_up(self):
        network = self._network()
        host = network.add_host("a", region="US")
        injector = FaultInjector(network)
        injector.arm(FaultPlan((HostCrash(at=1.0, host="a", down_for=2.0),)))
        network.loop.run(1.5)
        assert injector.host_is_down(host)
        network.loop.run(2.0)
        assert not injector.host_is_down(host)
        assert [n.kind for n in injector.log] == ["host_down", "host_up"]

    def test_overlapping_degrades_stack(self):
        network = self._network()
        a = network.add_host("a", region="US")
        b = network.add_host("b", region="US")
        injector = FaultInjector(network)
        injector.arm(FaultPlan((
            Degrade(at=0.0, a="a", b="b", duration=10.0,
                    conditions=LinkConditions(loss=0.5)),
            Degrade(at=1.0, a="a", b=None, duration=10.0,
                    conditions=LinkConditions(loss=0.5)),
        )))
        network.loop.run(2.0)
        conditions = injector.conditions_for(a, b)
        assert conditions is not None
        assert conditions.loss == pytest.approx(0.75)

    def test_conditions_clear_after_heal(self):
        network = self._network()
        a = network.add_host("a", region="US")
        b = network.add_host("b", region="US")
        injector = FaultInjector(network)
        injector.arm(FaultPlan((LinkFlap(at=0.0, a="a", b="b", duration=1.0),)))
        network.loop.run(0.5)
        assert injector.conditions_for(a, b).blocked
        network.loop.run(1.0)
        assert injector.conditions_for(a, b) is None

    def test_partition_blocks_only_cross_region(self):
        network = self._network()
        us_a = network.add_host("us-a", region="US")
        us_b = network.add_host("us-b", region="US")
        de = network.add_host("de", region="DE")
        injector = FaultInjector(network)
        injector.arm(FaultPlan((Partition(at=0.0, region_a="US", region_b="DE",
                                          duration=5.0),)))
        network.loop.run(1.0)
        assert injector.conditions_for(us_a, de).blocked
        assert injector.conditions_for(us_a, us_b) is None

    def test_throttle_serialises_consecutive_sends(self):
        network = self._network()
        a = network.add_host("a", region="US")
        b = network.add_host("b", region="US")
        injector = FaultInjector(network)
        conditions = LinkConditions(bandwidth_bytes_per_sec=1_000)
        first = injector.link_queue_delay(a, b, 1_000, conditions)
        second = injector.link_queue_delay(a, b, 1_000, conditions)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)  # queued behind the first

    def test_listener_sees_every_notice(self):
        network = self._network()
        network.add_host("a", region="US")
        injector = FaultInjector(network)
        seen = []
        injector.add_listener(seen.append)
        injector.arm(FaultPlan((HostCrash(at=0.5, host="a", down_for=1.0),)))
        network.loop.run(2.0)
        assert [n.kind for n in seen] == ["host_down", "host_up"]
        assert seen == injector.log

    def test_unknown_host_crash_skipped_not_fatal(self):
        network = self._network()
        injector = FaultInjector(network)
        injector.arm(FaultPlan((HostCrash(at=0.1, host="ghost"),)))
        network.loop.run(1.0)
        assert [n.kind for n in injector.log] == ["skipped"]
        assert injector.events_applied == 1


class TestHttpInterception:
    def test_outage_returns_503_then_heals(self):
        from repro.environment import Environment

        env = Environment(seed=5)
        server = env.add_server_host("web.test")

        class Echo:
            def handle_request(self, request):
                from repro.streaming.http import HttpResponse
                return HttpResponse(200, b"ok")

        env.urlspace.register("web.test", Echo())
        client = env.http_client(server)
        injector = env.inject_faults(
            FaultPlan((ServiceOutage(at=0.0, hostname="web.test", duration=5.0),))
        )
        env.run(1.0)
        assert client.get("https://web.test/").status == 503
        env.run(10.0)
        assert client.get("https://web.test/").status == 200
        assert [n.kind for n in injector.log] == ["outage", "outage_healed"]

    def test_crashed_client_gets_503(self):
        from repro.environment import Environment

        env = Environment(seed=6)
        viewer = env.add_viewer_host("viewer-x")
        server = env.add_server_host("web.test")

        class Echo:
            def handle_request(self, request):
                from repro.streaming.http import HttpResponse
                return HttpResponse(200, b"ok")

        env.urlspace.register("web.test", Echo())
        env.inject_faults(FaultPlan((HostCrash(at=0.0, host="viewer-x", down_for=5.0),)))
        env.run(1.0)
        assert env.http_client(viewer).get("https://web.test/").status == 503
        assert env.http_client(server).get("https://web.test/").status == 200
        env.run(10.0)
        assert env.http_client(viewer).get("https://web.test/").status == 200


class TestCrashClearsUplinkBacklog:
    """Regression: a crash clears the host's queued-uplink backlog.

    ``Host._uplink_busy_until`` used to survive a HostCrash, so a host
    that died with a deep send queue and rejoined would serialise its
    first post-rejoin datagram behind phantom pre-crash traffic.
    """

    def test_rejoined_host_does_not_inherit_queued_uplink(self):
        from repro.net import Endpoint

        loop = EventLoop()
        net = Network(loop, rand=DeterministicRandom(7), jitter=0.0)
        sender = net.add_host("s", uplink_bytes_per_sec=1000.0)
        receiver = net.add_host("r")
        times = []
        receiver.bind_udp(2000, lambda d, src, sock: times.append(loop.now))
        sock = sender.bind_udp(1000)
        injector = FaultInjector(net)
        # 10 x 1000B at 1000 B/s: ~10 simulated seconds of uplink backlog.
        for _ in range(10):
            sock.send(Endpoint(receiver.ip, 2000), b"x" * 1000)
        assert sender._uplink_busy_until >= 9.0
        injector.arm(FaultPlan(events=[HostCrash(at=0.5, host="s", down_for=1.0)]))
        loop.run(2.0)  # crash at 0.5, rejoin at 1.5
        assert not injector.host_is_down(sender)
        assert sender._uplink_busy_until == 0.0

        times.clear()
        t0 = loop.now
        sock.send(Endpoint(receiver.ip, 2000), b"y" * 10)
        loop.run(1.0)
        # Without the reset this delivery queues ~8s behind dead traffic.
        assert times and times[0] - t0 < 0.5

    def test_crash_while_idle_is_a_no_op_for_uplink(self):
        loop = EventLoop()
        net = Network(loop, rand=DeterministicRandom(7), jitter=0.0)
        host = net.add_host("h", uplink_bytes_per_sec=1000.0)
        injector = FaultInjector(net)
        injector.arm(FaultPlan(events=[HostCrash(at=0.1, host="h", down_for=0.5)]))
        loop.run(1.0)
        assert host._uplink_busy_until == 0.0
