"""NAT rebind churn: mappings void, ICE re-punches or falls back.

The satellite invariant: after a peer's NAT rebinds, the association
either survives (the authenticated refresh re-punches a mapping and the
remote agent follows the peer-reflexive switch) or the SDK's pending
fetches fall back to the CDN within ``_P2P_TIMEOUT`` — and all of it
replays exactly at a fixed seed.
"""

import pytest

from repro.net.addresses import Endpoint
from repro.net.clock import EventLoop
from repro.net.faults import FaultInjector, FaultPlan, NatRebind, bind_viewer
from repro.net.nat import NatBox, NatType
from repro.net.network import Network
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRandom
from repro.webrtc import PeerConnection, RtcConfig, StunServer
from repro.webrtc.stun import StunMessage, StunClass, StunMethod


class TestNatBoxRebind:
    def test_rebind_swaps_ip_and_voids_mappings(self):
        nat = NatBox("5.9.9.9", NatType.FULL_CONE)
        internal = Endpoint(nat.allocate_internal_ip(), 10)
        wire = nat.outbound(internal, Endpoint("5.0.0.1", 20))
        assert nat.inbound(wire.port, Endpoint("5.0.0.1", 20)) == internal
        old = nat.rebind("5.8.8.8")
        assert old == "5.9.9.9"
        assert nat.external_ip == "5.8.8.8"
        assert nat.inbound(wire.port, Endpoint("5.0.0.1", 20)) is None
        assert nat.mapping_count() == 0

    def test_network_rebind_moves_routability(self):
        network = Network(EventLoop(), rand=DeterministicRandom(3))
        nat = network.add_nat(NatType.FULL_CONE)
        old_ip = nat.external_ip
        returned_old, new_ip = network.rebind_nat(nat)
        assert returned_old == old_ip
        assert not network.is_routable(old_ip)
        assert network.is_routable(new_ip)
        assert nat.external_ip == new_ip

    def test_rebind_detached_nat_rejected(self):
        network = Network(EventLoop(), rand=DeterministicRandom(3))
        stray = NatBox("5.7.7.7", NatType.FULL_CONE)
        with pytest.raises(ConfigurationError, match="not attached"):
            network.rebind_nat(stray)

    def test_rebind_to_taken_address_rejected(self):
        network = Network(EventLoop(), rand=DeterministicRandom(3))
        nat = network.add_nat(NatType.FULL_CONE)
        host = network.add_host("pub")
        with pytest.raises(ConfigurationError, match="already in use"):
            network.rebind_nat(nat, new_external_ip=host.ip)


class _Pair:
    """Two NATed PeerConnections wired through STUN, connected."""

    def __init__(self, seed=42):
        self.loop = EventLoop()
        self.net = Network(self.loop, rand=DeterministicRandom(seed))
        self.stun = StunServer(self.net.add_host("stun", region="US"))
        self.nat_a = self.net.add_nat(NatType.FULL_CONE)
        self.nat_b = self.net.add_nat(NatType.FULL_CONE)
        self.host_a = self.net.add_host("alice", nat=self.nat_a, region="US")
        self.host_b = self.net.add_host("bob", nat=self.nat_b, region="US")
        config = RtcConfig(stun_servers=[self.stun.endpoint])
        rand = DeterministicRandom(seed + 1)
        self.pa = PeerConnection(self.host_a, self.loop, rand, config, name="alice")
        self.pb = PeerConnection(self.host_b, self.loop, rand, config, name="bob")
        self.got_a, self.got_b = [], []
        self.pa.on_message = lambda ch, d: self.got_a.append(d)
        self.pb.on_message = lambda ch, d: self.got_b.append(d)

    def connect(self):
        self.pa.create_offer(
            lambda offer: self.pb.accept_offer(offer, lambda ans: self.pa.set_answer(ans))
        )
        self.loop.run(10.0)
        return self.pa.connected and self.pb.connected


class TestIceSurvivesRebind:
    def test_refresh_repunches_after_rebind(self):
        pair = _Pair()
        assert pair.connect()
        old_external = pair.nat_a.external_ip
        _, new_external = pair.net.rebind_nat(pair.nat_a)
        pair.pa.refresh_connectivity()
        pair.loop.run(3.0)
        # The remote agent followed the authenticated peer-reflexive switch.
        assert pair.pb.ice.nominated_remote.ip == new_external
        assert pair.pb.ice.nominated_remote.ip != old_external
        pair.pa.send(1, b"after-rebind")
        pair.pb.send(1, b"reverse-path")
        pair.loop.run(5.0)
        assert pair.got_b == [b"after-rebind"]
        assert pair.got_a == [b"reverse-path"]

    def test_without_refresh_reverse_path_black_holes(self):
        pair = _Pair()
        assert pair.connect()
        pair.net.rebind_nat(pair.nat_a)
        pair.pb.send(1, b"to-stale-address")
        pair.loop.run(5.0)
        assert pair.got_a == []  # stale mapping: nothing arrives

    def test_unauthenticated_request_never_switches(self):
        pair = _Pair()
        assert pair.connect()
        nominated = pair.pb.ice.nominated_remote
        forged = StunMessage(StunMethod.BINDING, StunClass.REQUEST, b"f" * 12)
        pair.pb.ice.handle_stun(forged, Endpoint("5.6.6.6", 4242))
        assert pair.pb.ice.nominated_remote == nominated

    def test_rebind_deterministic_at_fixed_seed(self):
        def one_run():
            pair = _Pair(seed=77)
            assert pair.connect()
            _, new_ip = pair.net.rebind_nat(pair.nat_a)
            pair.pa.refresh_connectivity()
            pair.loop.run(3.0)
            pair.pa.send(1, b"ping")
            pair.loop.run(3.0)
            return (new_ip, pair.pb.ice.nominated_remote, tuple(pair.got_b))

        assert one_run() == one_run()


class TestSdkFallbackUnderRebind:
    def test_viewers_finish_despite_mid_stream_rebind(self):
        """A NatRebind fault mid-stream: the SDK refreshes connectivity
        and playback still completes with authentic content, within the
        P2P timeout budget (CDN fallback covers anything that died)."""
        from repro.core.analyzer import PdnAnalyzer
        from repro.core.testbed import build_test_bed
        from repro.environment import Environment
        from repro.pdn.provider import PEER5

        env = Environment(seed=1711)
        bed = build_test_bed(env, PEER5, video_segments=8, segment_seconds=3.0,
                             segment_bytes=40_000)
        analyzer = PdnAnalyzer(env)
        seeder = analyzer.create_peer(name="seeder")
        seeder_session = seeder.watch_test_stream(bed)
        analyzer.run(8.0)
        leecher = analyzer.create_peer(name="leecher")
        leecher_session = leecher.watch_test_stream(bed)
        analyzer.run(4.0)

        plan = FaultPlan((NatRebind(at=2.0, host="leecher"),), name="rebind")
        injector = env.inject_faults(plan)
        for peer, session in ((seeder, seeder_session), (leecher, leecher_session)):
            bind_viewer(injector, peer.browser.host, sdk=session.sdk,
                        player=session.player)
        analyzer.run(90.0)

        assert injector.events_applied == 1
        assert [n.kind for n in injector.log] == ["nat_rebind"]
        assert leecher_session.player.finished
        assert leecher_session.player.stats.played_digests() == [
            s.digest for s in bed.video.segments
        ]
        analyzer.teardown()

    def test_rebind_swarm_deterministic_at_fixed_seed(self):
        from repro.core.analyzer import PdnAnalyzer
        from repro.core.testbed import build_test_bed
        from repro.environment import Environment
        from repro.pdn.provider import PEER5

        def one_run():
            env = Environment(seed=1712)
            bed = build_test_bed(env, PEER5, video_segments=6, segment_seconds=3.0,
                                 segment_bytes=30_000)
            analyzer = PdnAnalyzer(env)
            a = analyzer.create_peer(name="a")
            session_a = a.watch_test_stream(bed)
            analyzer.run(6.0)
            b = analyzer.create_peer(name="b")
            session_b = b.watch_test_stream(bed)
            injector = env.inject_faults(
                FaultPlan((NatRebind(at=5.0, host="b"),), name="rebind")
            )
            bind_viewer(injector, b.browser.host, sdk=session_b.sdk,
                        player=session_b.player)
            analyzer.run(60.0)
            digests = tuple(session_b.player.stats.played_digests())
            stats = session_b.sdk.stats.to_dict() if session_b.sdk else {}
            analyzer.teardown()
            return digests, stats

        assert one_run() == one_run()
