"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net import EventLoop, Network
from repro.util.rand import DeterministicRandom


@pytest.fixture
def loop() -> EventLoop:
    return EventLoop()


@pytest.fixture
def rand() -> DeterministicRandom:
    return DeterministicRandom(1234)


@pytest.fixture
def network(loop: EventLoop, rand: DeterministicRandom) -> Network:
    return Network(loop, rand=rand)
