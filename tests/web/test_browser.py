"""Integration tests for the headless browser."""

import pytest

from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.pdn.policy import ClientPolicy
from repro.pdn.provider import PEER5
from repro.web.browser import Browser
from repro.web.page import LoadCondition, WebPage, Website


@pytest.fixture
def bed_env():
    env = Environment(seed=31)
    bed = build_test_bed(env, PEER5, video_segments=6, segment_seconds=2.0, segment_bytes=20_000)
    return env, bed


class TestOpen:
    def test_open_pdn_page_starts_sdk_and_player(self, bed_env):
        env, bed = bed_env
        browser = Browser(env, "v")
        session = browser.open(f"https://{bed.site.domain}/")
        assert session.pdn_loaded
        assert session.player is not None
        env.run(40.0)
        assert session.player.finished

    def test_unknown_domain(self, bed_env):
        env, bed = bed_env
        session = Browser(env, "v").open("https://no-such-site.com/")
        assert session.status == 502
        assert not session.pdn_loaded

    def test_geo_gate_blocks_sdk_but_not_playback(self, bed_env):
        env, bed = bed_env
        page = bed.site.landing
        page.embed.load_condition = LoadCondition.GEO
        page.embed.geo_country = "CN"
        us_viewer = Browser(env, "us-v", country="US")
        session = us_viewer.open(f"https://{bed.site.domain}/")
        assert not session.pdn_loaded
        assert "geo" in session.skip_reason
        env.run(30.0)
        assert session.player is not None and session.player.finished  # CDN playback

    def test_geo_gate_admits_matching_country(self, bed_env):
        env, bed = bed_env
        page = bed.site.landing
        page.embed.load_condition = LoadCondition.GEO
        page.embed.geo_country = "CN"
        cn_viewer = Browser(env, "cn-v", country="CN")
        session = cn_viewer.open(f"https://{bed.site.domain}/")
        assert session.pdn_loaded

    def test_no_video_page(self, bed_env):
        env, bed = bed_env
        bed.site.add_page(WebPage("/about", "about"))
        session = Browser(env, "v").open(f"https://{bed.site.domain}/about")
        assert session.player is None
        assert "no video" in session.skip_reason

    def test_plain_video_page_uses_cdn_loader(self, bed_env):
        env, bed = bed_env
        plain = Website("plain.com", category="video")
        plain.add_page(WebPage("/", has_video=True, video_url=bed.video_url))
        env.urlspace.register("plain.com", plain)
        session = Browser(env, "v").open("https://plain.com/")
        assert not session.pdn_loaded
        env.run(30.0)
        assert session.player.finished
        assert session.player.stats.bytes_from_p2p == 0


class TestConsent:
    def test_no_consent_dialog_by_default(self, bed_env):
        env, bed = bed_env
        session = Browser(env, "v").open(f"https://{bed.site.domain}/")
        assert session.consent_requested is False
        assert session.pdn_loaded  # enrolled silently: the §IV-D finding

    def test_consent_dialog_respected_when_declined(self, bed_env):
        env, bed = bed_env
        bed.provider._customer_policies[bed.customer_id] = ClientPolicy(
            show_consent_dialog=True, allow_user_disable=True
        )
        browser = Browser(env, "v")
        browser.grant_pdn_consent = False
        session = browser.open(f"https://{bed.site.domain}/")
        assert session.consent_requested
        assert not session.pdn_loaded
        env.run(30.0)
        assert session.player.finished  # playback continues CDN-only


class TestResourceActivity:
    def test_snapshot_reflects_sdk_activity(self, bed_env):
        env, bed = bed_env
        browser_a = Browser(env, "a")
        browser_a.open(f"https://{bed.site.domain}/")
        env.run(4.0)
        browser_b = Browser(env, "b")
        browser_b.open(f"https://{bed.site.domain}/")
        env.run(30.0)
        snap = browser_b.resource_activity()
        assert snap.pdn_active
        assert snap.bytes_cdn > 0
        assert snap.net_in > 0

    def test_closed_sessions_keep_cumulative_counters(self, bed_env):
        env, bed = bed_env
        browser = Browser(env, "a")
        browser.open(f"https://{bed.site.domain}/")
        env.run(20.0)
        before = browser.resource_activity().bytes_cdn
        browser.close()
        assert browser.resource_activity().bytes_cdn == before
