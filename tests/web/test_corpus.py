"""Tests for the seeded corpus: scale, ground truth, key plan."""

import pytest

from repro.environment import Environment
from repro.web.corpus import (
    CONFIRMED_APPS,
    CONFIRMED_WEBSITES,
    PRIVATE_SERVICES,
    CorpusConfig,
    build_corpus,
)


@pytest.fixture(scope="module")
def corpus():
    env = Environment(seed=404)
    return build_corpus(env)


class TestScale:
    def test_potential_counts_match_paper(self, corpus):
        sites = [r for r in corpus.records if r.kind == "website"]
        by_provider = {}
        for record in sites:
            by_provider.setdefault(record.provider, []).append(record)
        assert len(by_provider["peer5"]) == 60
        assert len(by_provider["streamroot"]) == 53
        assert len(by_provider["viblast"]) == 21

    def test_confirmed_ground_truth(self, corpus):
        assert corpus.expected_confirmed("website") == {d for d, _, _ in CONFIRMED_WEBSITES}
        assert corpus.expected_confirmed("app") == {p for p, _, _ in CONFIRMED_APPS}
        assert corpus.expected_confirmed("private") == {d for d, _, _ in PRIVATE_SERVICES}

    def test_apps_counts(self, corpus):
        apps = [r for r in corpus.records if r.kind == "app"]
        assert len(apps) == 38

    def test_apk_budget(self, corpus):
        pdn_apks = sum(len(a.pdn_versions()) for a in corpus.apps)
        assert pdn_apks == 199 + 349 + 53 + 15 + 11  # 627

    def test_sites_registered_in_urlspace(self, corpus):
        for domain, _, _ in CONFIRMED_WEBSITES:
            assert corpus.env.urlspace.resolve(domain) is corpus.website(domain)


class TestKeyPlan:
    def test_exactly_44_extractable(self, corpus):
        assert len(corpus.extractable_keys()) == 44

    def test_validity_split(self, corpus):
        extractable = corpus.extractable_keys()
        valid = [r for r in extractable if r.key_valid]
        assert len(valid) == 40
        assert len(extractable) - len(valid) == 4

    def test_peer5_no_allowlist_count(self, corpus):
        vulnerable = [
            r
            for r in corpus.extractable_keys()
            if r.provider == "peer5" and r.key_valid and not r.key_has_allowlist
        ]
        assert len(vulnerable) == 11

    def test_expired_keys_actually_rejected(self, corpus):
        expired = [r for r in corpus.extractable_keys() if not r.key_valid]
        for record in expired:
            provider = corpus.providers[record.provider]
            key = provider.authenticator.lookup(record.api_key)
            assert key is not None and not key.active


class TestPrivateServices:
    def test_shared_signaling_host_shares_provider(self, corpus):
        youku = corpus.private_providers["youku.com"]
        tudou = corpus.private_providers["tudou.com"]
        assert youku is tudou

    def test_private_videos_drm_registered(self, corpus):
        provider = corpus.private_providers["bilibili.com"]
        assert provider.drm_registry

    def test_cellular_full_apps(self, corpus):
        for package in ("com.bongo.bioscope", "com.portonics.mygp", "com.arenacloudtv.android"):
            provider = corpus.providers["peer5"]
            policy = provider.customer_policy(package)
            assert policy.upload_allowed("cellular"), package

    def test_other_apps_leech_on_cellular(self, corpus):
        provider = corpus.providers["peer5"]
        policy = provider.customer_policy("mivo.tv")
        assert not policy.upload_allowed("cellular")
        assert policy.download_allowed("cellular")


class TestConfigScaling:
    def test_smaller_corpus_builds(self):
        env = Environment(seed=405)
        config = CorpusConfig(noise_video_sites=5, noise_nonvideo_sites=2, noise_apps=2)
        corpus = build_corpus(env, config)
        assert corpus.websites
        assert len(corpus.extractable_keys()) == 44  # ground truth unaffected
