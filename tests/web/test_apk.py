"""Tests for the Android app/APK model."""

from repro.environment import Environment
from repro.pdn.provider import PEER5, STREAMROOT, PdnProvider
from repro.web.apk import AndroidApp, build_pdn_apk, build_plain_apk
from repro.web.page import PdnEmbed


def make_embed(seed=1, profile=PEER5):
    env = Environment(seed=seed)
    provider = PdnProvider(env.loop, env.rand, profile)
    key = provider.signup_customer("com.example.app")
    return PdnEmbed(provider, key.key, "https://cdn/v.m3u8")


class TestApkBuilding:
    def test_pdn_apk_carries_namespace(self):
        apk = build_pdn_apk(100, make_embed())
        assert apk.contains_namespace("com.peer5.sdk")
        assert not apk.contains_namespace("io.streamroot.dna")

    def test_streamroot_manifest_key(self):
        apk = build_pdn_apk(100, make_embed(profile=STREAMROOT))
        assert "io.streamroot.dna.StreamrootKey" in apk.manifest_metadata

    def test_obfuscated_apk_hides_key(self):
        embed = make_embed()
        apk = build_pdn_apk(100, embed, obfuscated=True)
        assert embed.credential not in " ".join(apk.all_strings())

    def test_clear_apk_exposes_key(self):
        embed = make_embed()
        apk = build_pdn_apk(100, embed, obfuscated=False)
        assert embed.credential in apk.all_strings()

    def test_plain_apk_has_no_pdn(self):
        apk = build_plain_apk(1)
        assert apk.embed is None
        assert not apk.contains_namespace("com.peer5.sdk")


class TestAndroidApp:
    def test_latest_version(self):
        app = AndroidApp("com.x")
        app.add_version(build_plain_apk(3))
        app.add_version(build_plain_apk(7))
        app.add_version(build_plain_apk(5))
        assert app.latest.version_code == 7

    def test_latest_none_when_empty(self):
        assert AndroidApp("com.x").latest is None

    def test_pdn_versions_filter(self):
        app = AndroidApp("com.x")
        app.add_version(build_plain_apk(1))
        app.add_version(build_pdn_apk(2, make_embed()))
        assert len(app.pdn_versions()) == 1
