"""Tests for pages, embeds, and websites."""

from repro.environment import Environment
from repro.pdn.provider import PEER5, PdnProvider, private_profile
from repro.streaming.http import HttpRequest
from repro.web.page import LoadCondition, PdnEmbed, WebPage, Website


def make_provider(env, profile=PEER5):
    provider = PdnProvider(env.loop, env.rand, profile)
    provider.install(env.urlspace)
    return provider


class TestRender:
    def test_public_embed_renders_sdk_url_and_key(self):
        env = Environment(seed=1)
        provider = make_provider(env)
        key = provider.signup_customer("site.com")
        page = WebPage("/", has_video=True, embed=PdnEmbed(provider, key.key, "https://cdn/v.m3u8"))
        html = page.render("site.com")
        assert f"api.peer5.com/peer5.js?id={key.key}" in html
        assert key.key in html
        assert "<video" in html

    def test_obfuscated_embed_hides_key_but_keeps_url_signature(self):
        env = Environment(seed=1)
        provider = make_provider(env)
        key = provider.signup_customer("site.com")
        page = WebPage(
            "/", has_video=True,
            embed=PdnEmbed(provider, key.key, "https://cdn/v.m3u8", obfuscated=True),
        )
        html = page.render("site.com")
        assert key.key not in html  # never contiguous
        assert "api.peer5.com/peer5.js?id=" in html
        assert "_0x101f38" in html

    def test_private_embed_renders_webrtc_signatures(self):
        env = Environment(seed=1)
        provider = make_provider(env, private_profile("bili.com", "tracker.bili.net"))
        page = WebPage("/", has_video=True, embed=PdnEmbed(provider, "bili.com", "https://cdn/v.m3u8"))
        html = page.render("bili.com")
        assert "new RTCPeerConnection" in html
        assert "wss://tracker.bili.net" in html

    def test_links_rendered(self):
        page = WebPage("/", links=["/a", "/b"])
        html = page.render("x.com")
        assert 'href="/a"' in html and 'href="/b"' in html


class TestLoadConditions:
    def test_always(self):
        env = Environment(seed=1)
        embed = PdnEmbed(make_provider(env), "k", "u")
        assert embed.loads_for("US")

    def test_geo_gate(self):
        env = Environment(seed=1)
        embed = PdnEmbed(
            make_provider(env), "k", "u",
            load_condition=LoadCondition.GEO, geo_country="CN",
        )
        assert embed.loads_for("CN")
        assert not embed.loads_for("US")

    def test_subscription_gate(self):
        env = Environment(seed=1)
        embed = PdnEmbed(make_provider(env), "k", "u", load_condition=LoadCondition.SUBSCRIPTION)
        assert not embed.loads_for("US", subscribed=False)
        assert embed.loads_for("US", subscribed=True)


class TestWebsite:
    def test_serves_pages_over_http(self):
        site = Website("x.com")
        site.add_page(WebPage("/", title="home"))
        response = site.handle_request(HttpRequest("GET", "https://x.com/"))
        assert response.ok and b"home" in response.body
        assert site.handle_request(HttpRequest("GET", "https://x.com/none")).status == 404

    def test_viewer_credential_static_for_public(self):
        env = Environment(seed=1)
        provider = make_provider(env)
        key = provider.signup_customer("x.com")
        site = Website("x.com")
        page = site.add_page(WebPage("/", has_video=True, embed=PdnEmbed(provider, key.key, "u")))
        assert site.issue_viewer_credential(page) == key.key

    def test_viewer_credential_fresh_per_load_for_private(self):
        env = Environment(seed=1)
        provider = make_provider(env, private_profile("p.com", "s.p.com"))
        provider.signup_customer("p.com")
        site = Website("p.com")
        page = site.add_page(WebPage("/", has_video=True, embed=PdnEmbed(provider, "p.com", "u")))
        token_a = site.issue_viewer_credential(page)
        token_b = site.issue_viewer_credential(page)
        assert token_a != token_b

    def test_pdn_pages_listing(self):
        env = Environment(seed=1)
        provider = make_provider(env)
        site = Website("x.com")
        site.add_page(WebPage("/", has_video=True))
        site.add_page(WebPage("/live", has_video=True, embed=PdnEmbed(provider, "k", "u")))
        assert len(site.pdn_pages()) == 1
