"""Declarative scenario specifications: workloads as data.

A :class:`ScenarioSpec` is to the audience what a
:class:`~repro.net.faults.FaultPlan` is to the network: a named,
canonical-JSON-serialisable, digestable description of *who shows up
and how they behave*. It composes four orthogonal pieces:

* an :class:`~repro.scenarios.arrivals.ArrivalProcess` (when viewers
  arrive);
* a :class:`SessionModel` (how long they stay, zapping, seeking,
  mid-roll abandons, player buffering/ABR knobs);
* a :class:`PopulationMix` (NAT types including CGNAT, cellular and
  leech shares, region skew);
* a :class:`CatalogShape` (one live channel vs a VoD long tail that
  splits the audience over many titles).

Specs carry no randomness of their own — sampling happens in
:func:`repro.scenarios.timeline.materialize` against a seeded stream —
so the same spec digest plus the same seed always yields the same
audience, and run manifests can record scenario provenance exactly
like chaos-plan provenance.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.scenarios.arrivals import ArrivalProcess, PoissonArrivals
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRandom


def _normalized_mix(mix: dict[str, float], label: str) -> dict[str, float]:
    """Validate a weight table and normalise it to sum exactly 1.0."""
    if not mix:
        raise ConfigurationError(f"{label} mix must not be empty")
    total = 0.0
    for key, weight in mix.items():
        if weight < 0:
            raise ConfigurationError(f"{label} weight for {key} must be >= 0")
        total += weight
    if total <= 0:
        raise ConfigurationError(f"{label} mix weights must sum to > 0")
    if abs(total - 1.0) <= 1e-9:
        # Already normalised (e.g. loaded back from JSON): keep the
        # weights bit-for-bit so normalisation is idempotent and spec
        # round trips are digest fixed points.
        return {key: float(weight) for key, weight in sorted(mix.items())}
    return {key: weight / total for key, weight in sorted(mix.items())}


def _check_fraction(value: float, label: str) -> float:
    """Require ``value`` to be a probability."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{label} must be in [0, 1], got {value}")
    return float(value)


def weighted_pick(rand: DeterministicRandom, mix: dict[str, float]) -> str:
    """Draw one key from a weight table, in sorted-key order.

    Sorting makes the draw independent of dict insertion order, so a
    spec loaded from JSON realises the same audience as the spec it
    was serialised from.
    """
    items = sorted(mix.items())
    return rand.weighted_pick(items)


#: NAT behaviours a population mix may assign, including carrier-grade
#: NAT ("cgnat"): a symmetric NAT whose external address sits in the
#: RFC 6598 shared space — the bogon class the paper's harvest observed.
NAT_KINDS = ("full_cone", "restricted_cone", "port_restricted_cone", "symmetric", "cgnat")


@dataclass(frozen=True)
class SessionModel:
    """How one viewer behaves between join and leave.

    ``mean_watch_sec`` draws an exponential intended session length
    (floored at ``min_watch_sec``); ``abandon_prob`` turns a session
    into a mid-roll abandon that cuts the intended length short;
    ``zap_prob`` makes the viewer switch titles mid-session (leaving
    the measured swarm when the new title differs); ``seek_rate_per_min``
    drives forward scrubs through the player; ``buffer_target`` and
    ``abr_upgrade_after`` are handed to the
    :class:`~repro.streaming.player.VideoPlayer`.
    """

    mean_watch_sec: float = 90.0
    min_watch_sec: float = 5.0
    abandon_prob: float = 0.1
    zap_prob: float = 0.0
    seek_rate_per_min: float = 0.0
    buffer_target: int = 3
    abr_upgrade_after: int = 4

    def __post_init__(self) -> None:
        if self.mean_watch_sec <= 0 or not 0.1 <= self.min_watch_sec <= self.mean_watch_sec:
            raise ConfigurationError(
                "session lengths must satisfy 0.1 <= min_watch_sec <= mean_watch_sec"
            )
        _check_fraction(self.abandon_prob, "abandon_prob")
        _check_fraction(self.zap_prob, "zap_prob")
        if self.seek_rate_per_min < 0:
            raise ConfigurationError("seek_rate_per_min must be >= 0")
        if self.buffer_target < 1 or self.abr_upgrade_after < 1:
            raise ConfigurationError("player knobs must be >= 1")

    def to_dict(self) -> dict:
        """Serialise to plain JSON types."""
        return {
            "mean_watch_sec": self.mean_watch_sec,
            "min_watch_sec": self.min_watch_sec,
            "abandon_prob": self.abandon_prob,
            "zap_prob": self.zap_prob,
            "seek_rate_per_min": self.seek_rate_per_min,
            "buffer_target": self.buffer_target,
            "abr_upgrade_after": self.abr_upgrade_after,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionModel":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**{k: data[k] for k in cls().to_dict() if k in data})


@dataclass(frozen=True)
class PopulationMix:
    """Who the viewers are: NAT types, access links, regions.

    ``nat_mix`` and ``region_mix`` are weight tables normalised to sum
    to 1; ``cellular_share`` viewers join on cellular links (leeching
    by provider policy); ``leech_share`` viewers additionally never
    serve uploads regardless of link (free riders).
    """

    nat_mix: dict[str, float] = field(
        default_factory=lambda: {"full_cone": 0.5, "port_restricted_cone": 0.3, "symmetric": 0.2}
    )
    region_mix: dict[str, float] = field(default_factory=lambda: {"US": 0.6, "DE": 0.4})
    cellular_share: float = 0.0
    leech_share: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "nat_mix", _normalized_mix(self.nat_mix, "nat"))
        object.__setattr__(self, "region_mix", _normalized_mix(self.region_mix, "region"))
        for kind in self.nat_mix:
            if kind not in NAT_KINDS:
                known = ", ".join(NAT_KINDS)
                raise ConfigurationError(f"unknown NAT kind {kind} (known: {known})")
        _check_fraction(self.cellular_share, "cellular_share")
        _check_fraction(self.leech_share, "leech_share")

    def to_dict(self) -> dict:
        """Serialise to plain JSON types (mixes already normalised)."""
        return {
            "nat_mix": dict(self.nat_mix),
            "region_mix": dict(self.region_mix),
            "cellular_share": self.cellular_share,
            "leech_share": self.leech_share,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PopulationMix":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            nat_mix=dict(data.get("nat_mix", {"full_cone": 1.0})),
            region_mix=dict(data.get("region_mix", {"US": 1.0})),
            cellular_share=float(data.get("cellular_share", 0.0)),
            leech_share=float(data.get("leech_share", 0.0)),
        )


@dataclass(frozen=True)
class CatalogShape:
    """What is on offer: one live channel, or a VoD long tail.

    ``live`` has a single title every viewer watches. ``vod`` spreads
    viewers over ``titles`` titles with Zipf(``zipf_s``) popularity;
    title 0 is the head title the experiments instrument, so a heavier
    tail means a thinner measured swarm — audience dilution as data.
    """

    kind: str = "live"
    titles: int = 1
    zipf_s: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("live", "vod"):
            raise ConfigurationError(f"catalog kind must be 'live' or 'vod', got {self.kind}")
        if self.titles < 1:
            raise ConfigurationError("catalog must have at least one title")
        if self.kind == "live" and self.titles != 1:
            raise ConfigurationError("a live catalog has exactly one channel")
        if self.zipf_s < 0:
            raise ConfigurationError("zipf_s must be >= 0")

    def pick_title(self, rand: DeterministicRandom) -> int:
        """Draw the title a freshly-arrived viewer watches."""
        if self.titles == 1:
            return 0
        weights = [(i, 1.0 / (i + 1) ** self.zipf_s) for i in range(self.titles)]
        return rand.weighted_pick(weights)

    def to_dict(self) -> dict:
        """Serialise to plain JSON types."""
        return {"kind": self.kind, "titles": self.titles, "zipf_s": self.zipf_s}

    @classmethod
    def from_dict(cls, data: dict) -> "CatalogShape":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            kind=str(data.get("kind", "live")),
            titles=int(data.get("titles", 1)),
            zipf_s=float(data.get("zipf_s", 1.0)),
        )


@dataclass
class ScenarioSpec:
    """A named, serialisable workload: arrivals × sessions × population × catalog."""

    name: str = "custom"
    horizon: float = 60.0
    arrivals: ArrivalProcess = field(default_factory=PoissonArrivals)
    session: SessionModel = field(default_factory=SessionModel)
    population: PopulationMix = field(default_factory=PopulationMix)
    catalog: CatalogShape = field(default_factory=CatalogShape)
    #: Hard cap on materialised sessions (None = whatever the process yields).
    max_viewers: int | None = None

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("scenario horizon must be positive")
        if self.max_viewers is not None and self.max_viewers < 0:
            raise ConfigurationError("max_viewers must be >= 0")

    def to_dict(self) -> dict:
        """Serialise to plain JSON types (the manifest/digest form)."""
        return {
            "name": self.name,
            "horizon": self.horizon,
            "arrivals": self.arrivals.to_dict(),
            "session": self.session.to_dict(),
            "population": self.population.to_dict(),
            "catalog": self.catalog.to_dict(),
            "max_viewers": self.max_viewers,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            name=str(data.get("name", "custom")),
            horizon=float(data.get("horizon", 60.0)),
            arrivals=ArrivalProcess.from_dict(data.get("arrivals", {"kind": "poisson"})),
            session=SessionModel.from_dict(data.get("session", {})),
            population=PopulationMix.from_dict(data.get("population", {})),
            catalog=CatalogShape.from_dict(data.get("catalog", {})),
            max_viewers=data.get("max_viewers"),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec previously written with :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — recorded in run manifests."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def expected_regions(self) -> list[str]:
        """The regions this audience can come from, sorted."""
        return sorted(self.population.region_mix)


def spec_field_names(specs: Iterable[ScenarioSpec]) -> list[str]:
    """Sorted names of the given specs (matrix axis labels)."""
    return sorted(spec.name for spec in specs)
