"""Viewer arrival processes: who shows up, when.

The paper's in-the-wild numbers (7,740 harvested addresses, 47%
initial-stage pollution reach) depend entirely on the audience's
*shape*: a flash crowd racing a live event behaves nothing like a
diurnal VoD long tail. This module makes that shape data — each
:class:`ArrivalProcess` is a small frozen dataclass that serialises to
plain JSON and samples a concrete list of arrival times from a seeded
:class:`~repro.util.rand.DeterministicRandom`, so "the flash crowd at
seed S" means the same viewers at the same instants everywhere.

Three processes cover the regimes the measurement study observed:

* :class:`PoissonArrivals` — memoryless steady state (the classic
  audience model, and what :class:`~repro.privacy.viewers.ViewerChurn`
  now delegates to);
* :class:`DiurnalArrivals` — a sinusoid-modulated rate for day/night
  cycles, sampled by thinning;
* :class:`FlashCrowdArrivals` — a Poisson baseline plus an
  exponentially-decaying burst at a spike instant (a live event going
  viral).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from repro.net.clock import EventLoop
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRandom


@dataclass(frozen=True)
class ArrivalProcess:
    """Base of every arrival process: sample times within a horizon."""

    kind = "abstract"

    def times(self, rand: DeterministicRandom, horizon: float) -> list[float]:
        """Sorted arrival times in ``[0, horizon)``, rounded to 1 ms."""
        raise NotImplementedError  # pragma: no cover - abstract

    def to_dict(self) -> dict:
        """Serialise: the registered kind plus this process's fields."""
        out: dict = {"kind": self.kind}
        for spec in fields(self):
            out[spec.name] = getattr(self, spec.name)
        return out

    @staticmethod
    def from_dict(data: dict) -> "ArrivalProcess":
        """Rebuild any known arrival-process kind from its dict form."""
        data = dict(data)
        kind = data.pop("kind", None)
        types = arrival_types()
        cls = types.get(kind)
        if cls is None:
            known = ", ".join(sorted(types))
            raise ConfigurationError(f"unknown arrival kind {kind!r} (known: {known})")
        return cls(**data)


def _round_times(raw: list[float], horizon: float) -> list[float]:
    """Round to 1 ms and re-enforce the strict ``< horizon`` bound."""
    out = [round(t, 3) for t in raw]
    return sorted(t for t in out if 0.0 <= t < horizon)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant rate."""

    rate_per_min: float = 6.0

    kind = "poisson"

    def __post_init__(self) -> None:
        if self.rate_per_min <= 0:
            raise ConfigurationError("poisson arrival rate must be positive")

    def times(self, rand: DeterministicRandom, horizon: float) -> list[float]:
        """Exponential inter-arrival gaps until the horizon."""
        rate = self.rate_per_min / 60.0
        out: list[float] = []
        t = rand.expovariate(rate)
        while t < horizon:
            out.append(t)
            t += rand.expovariate(rate)
        return _round_times(out, horizon)

    def schedule_live(
        self,
        loop: EventLoop,
        rand: DeterministicRandom,
        on_arrival,
        until: float | None = None,
    ) -> "LiveArrivals":
        """Open-ended scheduling on an event loop (see :class:`LiveArrivals`)."""
        live = LiveArrivals(loop, rand, self.rate_per_min / 60.0, on_arrival, until)
        live.start()
        return live


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """A day/night cycle: sinusoid-modulated rate, sampled by thinning.

    The instantaneous rate starts at ``base_rate_per_min`` (the
    overnight trough), peaks at ``peak_rate_per_min`` half a period in,
    and returns to the trough — one full cosine per ``period_sec``.
    Horizons shorter than a period see the ramp-up only, which is
    exactly the "evening fills up" regime live platforms care about.
    """

    base_rate_per_min: float = 1.0
    peak_rate_per_min: float = 10.0
    period_sec: float = 86400.0

    kind = "diurnal"

    def __post_init__(self) -> None:
        if self.base_rate_per_min <= 0 or self.period_sec <= 0:
            raise ConfigurationError("diurnal base rate and period must be positive")
        if self.peak_rate_per_min < self.base_rate_per_min:
            raise ConfigurationError("diurnal peak rate must be >= base rate")

    def rate_per_min_at(self, t: float) -> float:
        """The instantaneous arrival rate at simulated time ``t``."""
        swing = self.peak_rate_per_min - self.base_rate_per_min
        frac = 0.5 - 0.5 * math.cos(2.0 * math.pi * t / self.period_sec)
        return self.base_rate_per_min + swing * frac

    def times(self, rand: DeterministicRandom, horizon: float) -> list[float]:
        """Thinning against the peak rate (Lewis–Shedler)."""
        peak = self.peak_rate_per_min / 60.0
        out: list[float] = []
        t = rand.expovariate(peak)
        while t < horizon:
            if rand.random() * self.peak_rate_per_min <= self.rate_per_min_at(t):
                out.append(t)
            t += rand.expovariate(peak)
        return _round_times(out, horizon)


@dataclass(frozen=True)
class FlashCrowdArrivals(ArrivalProcess):
    """A steady baseline plus a viral burst at one spike instant.

    ``spike_arrivals`` extra viewers pile in starting at
    ``spike_at_sec``, with exponentially-decaying offsets of mean
    ``spike_width_sec / 3`` — most of the crowd lands inside the width.
    Spike draws are a fixed count regardless of horizon, so truncating
    the horizon never shifts the baseline stream.
    """

    base_rate_per_min: float = 3.0
    spike_at_sec: float = 10.0
    spike_arrivals: int = 20
    spike_width_sec: float = 8.0

    kind = "flash_crowd"

    def __post_init__(self) -> None:
        if self.base_rate_per_min <= 0:
            raise ConfigurationError("flash-crowd base rate must be positive")
        if self.spike_at_sec < 0 or self.spike_arrivals < 0 or self.spike_width_sec <= 0:
            raise ConfigurationError("flash-crowd spike parameters out of range")

    def times(self, rand: DeterministicRandom, horizon: float) -> list[float]:
        """The baseline Poisson stream merged with the spike burst."""
        rate = self.base_rate_per_min / 60.0
        out: list[float] = []
        t = rand.expovariate(rate)
        while t < horizon:
            out.append(t)
            t += rand.expovariate(rate)
        decay = 3.0 / self.spike_width_sec
        for _ in range(self.spike_arrivals):
            out.append(self.spike_at_sec + rand.expovariate(decay))
        return _round_times(out, horizon)


def arrival_types() -> dict[str, type]:
    """The kind → class map, built fresh per call (no shared state)."""
    return {
        cls.kind: cls
        for cls in (PoissonArrivals, DiurnalArrivals, FlashCrowdArrivals)
    }


class LiveArrivals:
    """Open-ended Poisson arrival scheduling on an event loop.

    :class:`~repro.privacy.viewers.ViewerChurn` folds onto this: the
    harvest experiments need arrivals that keep flowing until told to
    stop, not a pre-sampled list. The first arrival is only scheduled
    when the window is still open — ``until`` at or before the loop's
    now schedules nothing (the boundary :class:`ViewerChurn` used to
    get wrong) — and the arrival counter increments exactly once per
    delivered callback, so it can never overcount at the window edge.
    """

    def __init__(
        self,
        loop: EventLoop,
        rand: DeterministicRandom,
        rate_per_sec: float,
        on_arrival,
        until: float | None = None,
    ) -> None:
        if rate_per_sec <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.loop = loop
        self.rand = rand
        self.rate_per_sec = rate_per_sec
        self.on_arrival = on_arrival
        self.until = until
        self.arrivals = 0
        self._running = False

    def start(self) -> "LiveArrivals":
        """Schedule the first arrival — unless the window already closed."""
        if self._running:
            return self
        if self.until is not None and self.loop.now >= self.until:
            return self
        self._running = True
        self.loop.schedule(self.rand.expovariate(self.rate_per_sec), self._fire)
        return self

    def _fire(self) -> None:
        """Deliver one arrival and schedule the next."""
        if not self._running or (self.until is not None and self.loop.now >= self.until):
            return
        self.arrivals += 1
        self.on_arrival()
        self.loop.schedule(self.rand.expovariate(self.rate_per_sec), self._fire)

    def stop(self) -> None:
        """Stop delivering arrivals; pending timers become no-ops."""
        self._running = False
