"""Declarative, seeded scenario layer: workloads as data.

Mirrors the chaos layer (:mod:`repro.net.faults`): a
:class:`~repro.scenarios.spec.ScenarioSpec` serialises to canonical
JSON with a SHA-256 digest, named presets live in
:data:`~repro.scenarios.planner.SCENARIO_PRESETS`, a seeded
:class:`~repro.scenarios.planner.RandomScenarioPlanner` fuzzes the
property suite, :func:`~repro.scenarios.timeline.materialize` turns a
spec into a concrete :class:`~repro.scenarios.timeline.Timeline`, and
:class:`~repro.scenarios.engine.ScenarioEngine` replays it live.

The engine is deliberately *not* imported here: it binds to the
analyzer stack (``repro.core``), which sits above this package in the
import graph — import :mod:`repro.scenarios.engine` directly.
"""

from repro.scenarios.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    LiveArrivals,
    PoissonArrivals,
    arrival_types,
)
from repro.scenarios.planner import (
    SCENARIO_PRESETS,
    RandomScenarioPlanner,
    load_scenario,
)
from repro.scenarios.spec import (
    NAT_KINDS,
    CatalogShape,
    PopulationMix,
    ScenarioSpec,
    SessionModel,
)
from repro.scenarios.timeline import (
    PlannedSession,
    SessionAction,
    Timeline,
    materialize,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "LiveArrivals",
    "arrival_types",
    "SCENARIO_PRESETS",
    "RandomScenarioPlanner",
    "load_scenario",
    "NAT_KINDS",
    "CatalogShape",
    "PopulationMix",
    "ScenarioSpec",
    "SessionModel",
    "PlannedSession",
    "SessionAction",
    "Timeline",
    "materialize",
]
