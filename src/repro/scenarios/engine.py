"""Driving a materialised :class:`~repro.scenarios.timeline.Timeline` live.

The :class:`ScenarioEngine` replays a timeline on an event loop: joins
create viewers through a factory callback, leaves (and effective zaps)
close them, seeks are forwarded mid-session. The engine itself knows
nothing about browsers or SDKs — :class:`SwarmViewerFactory` supplies
that binding for the analyzer stack — so the property suite can drive
the engine with stub factories and check the lifecycle invariant
(every created session is closed exactly once) without a network.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.core.analyzer import PdnAnalyzer, PeerContainer
from repro.core.testbed import TestBed
from repro.net.addresses import IpClass
from repro.net.clock import EventLoop
from repro.net.faults import FaultInjector, bind_viewer
from repro.net.nat import NatType
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.timeline import PlannedSession, SessionAction, Timeline
from repro.util.errors import ConfigurationError
from repro.web.browser import PageSession


class ScenarioEngine:
    """Replay a timeline: create on join, act mid-session, close on leave.

    ``create(planned)`` returns an opaque handle, or ``None`` when the
    viewer does not enter the measured swarm (background audience —
    e.g. a VoD viewer on a tail title). ``close(handle, planned,
    reason)`` releases it; ``on_action(handle, planned, action)``
    receives seeks. After :meth:`close_all`, ``joins == leaves`` always
    holds — the invariant the property suite pins.
    """

    def __init__(
        self,
        loop: EventLoop,
        timeline: Timeline,
        create: Callable[[PlannedSession], Any],
        close: Callable[[Any, PlannedSession, str], None],
        on_action: Callable[[Any, PlannedSession, SessionAction], None] | None = None,
        max_peers: int | None = None,
    ) -> None:
        if max_peers is not None and max_peers < 0:
            raise ConfigurationError("max_peers must be >= 0")
        self.loop = loop
        self.timeline = timeline
        self.create = create
        self.close = close
        self.on_action = on_action
        self.max_peers = max_peers
        self.active: dict[int, Any] = {}
        self.joins = 0
        self.leaves = 0
        self.background = 0
        self.overflow = 0
        self.events: list[tuple[float, str, int, str]] = []
        self._started = False

    def start(self) -> "ScenarioEngine":
        """Schedule every planned join/action/leave relative to now."""
        if self._started:
            return self
        self._started = True
        origin = self.loop.now
        for planned in self.timeline.sessions:
            self.loop.schedule(origin + planned.join_at - self.loop.now, self._join, planned)
            for action in planned.actions:
                if action.kind == "seek":
                    self.loop.schedule(
                        origin + action.at - self.loop.now, self._act, planned, action
                    )
            self.loop.schedule(origin + planned.leave_at - self.loop.now, self._leave, planned)
        return self

    def _log(self, kind: str, viewer_id: int, detail: str) -> None:
        """Append one lifecycle event to the engine's event log."""
        self.events.append((self.loop.now, kind, viewer_id, detail))

    def _join(self, planned: PlannedSession) -> None:
        """Fire one planned join through the factory."""
        if self.max_peers is not None and len(self.active) >= self.max_peers:
            self.overflow += 1
            self._log("overflow", planned.viewer_id, planned.country)
            return
        handle = self.create(planned)
        if handle is None:
            self.background += 1
            self._log("background", planned.viewer_id, f"title={planned.title}")
            return
        self.active[planned.viewer_id] = handle
        self.joins += 1
        self._log("join", planned.viewer_id, f"{planned.country}/{planned.nat}")

    def _act(self, planned: PlannedSession, action: SessionAction) -> None:
        """Forward one mid-session action to the factory, if still active."""
        handle = self.active.get(planned.viewer_id)
        if handle is None or self.on_action is None:
            return
        self.on_action(handle, planned, action)
        self._log(action.kind, planned.viewer_id, str(action.arg))

    def _leave(self, planned: PlannedSession) -> None:
        """Fire one planned leave; a no-op if the session never joined."""
        handle = self.active.pop(planned.viewer_id, None)
        if handle is None:
            return
        self.close(handle, planned, planned.leave_reason)
        self.leaves += 1
        self._log("leave", planned.viewer_id, planned.leave_reason)

    def close_all(self, reason: str = "shutdown") -> None:
        """Close every still-active session (end-of-run drain)."""
        for viewer_id in sorted(self.active):
            handle = self.active.pop(viewer_id)
            self.close(handle, self._planned_by_id(viewer_id), reason)
            self.leaves += 1
            self._log("leave", viewer_id, reason)

    def _planned_by_id(self, viewer_id: int) -> PlannedSession:
        """Look up the planned session for an active viewer id."""
        for planned in self.timeline.sessions:
            if planned.viewer_id == viewer_id:
                return planned
        raise ConfigurationError(f"unknown viewer id {viewer_id}")


#: Map from spec-layer NAT kinds to simulator NAT behaviour. CGNAT
#: behaves like a symmetric NAT; its distinguishing mark is the
#: RFC 6598 external address assigned at creation time.
_NAT_BY_KIND = {
    "full_cone": NatType.FULL_CONE,
    "restricted_cone": NatType.RESTRICTED_CONE,
    "port_restricted_cone": NatType.PORT_RESTRICTED_CONE,
    "symmetric": NatType.SYMMETRIC,
    "cgnat": NatType.SYMMETRIC,
}


class SwarmViewerFactory:
    """Bind planned sessions to real analyzer peers watching the test bed.

    Viewers on ``watch_title`` get a full peer container (browser, SDK,
    player, capture); viewers on other titles return ``None`` and are
    counted as background audience by the engine — the VoD long tail
    dilutes the measured swarm without paying for idle containers.
    """

    def __init__(
        self,
        analyzer: PdnAnalyzer,
        bed: TestBed,
        spec: ScenarioSpec,
        watch_title: int = 0,
        integrity=None,
        injector: FaultInjector | None = None,
        name_prefix: str = "sc",
    ) -> None:
        self.analyzer = analyzer
        self.bed = bed
        self.spec = spec
        self.watch_title = watch_title
        self.integrity = integrity
        self.injector = injector
        self.name_prefix = name_prefix
        #: (planned, peer, session) for every swarm viewer ever created,
        #: retained after close so end-of-run metrics see everyone.
        self.created: list[tuple[PlannedSession, PeerContainer, PageSession]] = []

    def _cgnat_ip(self, name: str) -> str:
        """Draw a collision-free RFC 6598 shared-space external address."""
        env = self.analyzer.env
        rand = env.rand.fork(f"cgnat:{name}")
        ip = env.geo.random_bogon(rand, IpClass.SHARED_NAT)
        attempts = 0
        while ip in env.network.hosts or env.network.is_routable(ip):
            ip = env.geo.random_bogon(env.rand.fork(f"cgnat:{name}:{attempts}"), IpClass.SHARED_NAT)
            attempts += 1
        return ip

    def create(self, planned: PlannedSession):
        """Create one swarm viewer, or ``None`` for background audience."""
        if planned.title != self.watch_title:
            return None
        name = f"{self.name_prefix}{planned.viewer_id}"
        external_ip = self._cgnat_ip(name) if planned.nat == "cgnat" else None
        peer = self.analyzer.create_peer(
            name=name,
            country=planned.country,
            nat_type=_NAT_BY_KIND[planned.nat],
            connection_type="cellular" if planned.cellular else "wifi",
            integrity=self.integrity,
            external_ip=external_ip,
        )
        session = peer.watch_test_stream(
            self.bed, buffer_target=self.spec.session.buffer_target
        )
        if session.player is not None:
            session.player.abr_upgrade_after = self.spec.session.abr_upgrade_after
        if planned.leech and session.sdk is not None:
            session.sdk.policy = dataclasses.replace(
                session.sdk.policy, max_upload_bytes_per_sec=0.0
            )
        if self.injector is not None:
            bind_viewer(self.injector, peer.browser.host, sdk=session.sdk, player=session.player)
        self.created.append((planned, peer, session))
        return (peer, session)

    def on_action(self, handle, planned: PlannedSession, action: SessionAction) -> None:
        """Apply one mid-session action to a live viewer (seeks only)."""
        _peer, session = handle
        if action.kind == "seek" and session.player is not None:
            session.player.seek(action.arg)

    def close(self, handle, planned: PlannedSession, reason: str) -> None:
        """Close a viewer's page session and release its container."""
        _peer, session = handle
        session.close()
        _peer.close()
        if _peer in self.analyzer.peers:
            self.analyzer.peers.remove(_peer)
