"""Scenario presets, random scenario generation, and spec loading.

Mirrors :mod:`repro.net.faults`'s planner layer: named presets cover
the regimes the paper's measurements point at, a seeded
:class:`RandomScenarioPlanner` feeds the property suite with arbitrary
valid specs, and :func:`load_scenario` resolves a CLI argument that is
either a preset name or a path to a ``spec.json``.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.scenarios.arrivals import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
)
from repro.scenarios.spec import (
    NAT_KINDS,
    CatalogShape,
    PopulationMix,
    ScenarioSpec,
    SessionModel,
)
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRandom

#: Regions presets draw from — all present in the privacy geo table.
PRESET_REGIONS = ("US", "DE", "JP", "BR", "IN")


def _steady() -> ScenarioSpec:
    """Steady-state live audience: memoryless arrivals, mild churn."""
    return ScenarioSpec(
        name="steady",
        horizon=60.0,
        arrivals=PoissonArrivals(rate_per_min=8.0),
        session=SessionModel(mean_watch_sec=45.0, min_watch_sec=8.0, abandon_prob=0.1),
        population=PopulationMix(
            nat_mix={"full_cone": 0.45, "port_restricted_cone": 0.35, "symmetric": 0.2},
            region_mix={"US": 0.5, "DE": 0.3, "JP": 0.2},
            cellular_share=0.1,
        ),
        catalog=CatalogShape(kind="live"),
    )


def _flash_crowd() -> ScenarioSpec:
    """A live event going viral: thin baseline, sharp spike early on."""
    return ScenarioSpec(
        name="flash-crowd",
        horizon=60.0,
        arrivals=FlashCrowdArrivals(
            base_rate_per_min=2.0, spike_at_sec=8.0, spike_arrivals=12, spike_width_sec=6.0
        ),
        session=SessionModel(mean_watch_sec=50.0, min_watch_sec=10.0, abandon_prob=0.15),
        population=PopulationMix(
            nat_mix={"full_cone": 0.4, "restricted_cone": 0.2, "port_restricted_cone": 0.25, "symmetric": 0.15},
            region_mix={"US": 0.4, "BR": 0.35, "IN": 0.25},
            cellular_share=0.25,
        ),
        catalog=CatalogShape(kind="live"),
    )


def _diurnal() -> ScenarioSpec:
    """A compressed day/night cycle: trough-to-peak ramp inside the horizon."""
    return ScenarioSpec(
        name="diurnal",
        horizon=60.0,
        arrivals=DiurnalArrivals(base_rate_per_min=2.0, peak_rate_per_min=14.0, period_sec=120.0),
        session=SessionModel(mean_watch_sec=40.0, min_watch_sec=6.0, abandon_prob=0.1),
        population=PopulationMix(
            nat_mix={"full_cone": 0.5, "port_restricted_cone": 0.3, "symmetric": 0.2},
            region_mix={"US": 0.45, "DE": 0.35, "JP": 0.2},
            cellular_share=0.15,
        ),
        catalog=CatalogShape(kind="live"),
    )


def _cgnat_heavy() -> ScenarioSpec:
    """Carrier-grade-NAT-dominated mobile audience with heavy free riding."""
    return ScenarioSpec(
        name="cgnat-heavy",
        horizon=60.0,
        arrivals=PoissonArrivals(rate_per_min=8.0),
        session=SessionModel(mean_watch_sec=40.0, min_watch_sec=6.0, abandon_prob=0.2),
        population=PopulationMix(
            nat_mix={"cgnat": 0.55, "symmetric": 0.25, "port_restricted_cone": 0.2},
            region_mix={"IN": 0.4, "BR": 0.35, "US": 0.25},
            cellular_share=0.4,
            leech_share=0.25,
        ),
        catalog=CatalogShape(kind="live"),
    )


def _vod_longtail() -> ScenarioSpec:
    """A VoD catalog with Zipf popularity: zapping and seeking, thin head swarm."""
    return ScenarioSpec(
        name="vod-longtail",
        horizon=60.0,
        arrivals=PoissonArrivals(rate_per_min=12.0),
        session=SessionModel(
            mean_watch_sec=35.0,
            min_watch_sec=6.0,
            abandon_prob=0.15,
            zap_prob=0.3,
            seek_rate_per_min=2.0,
        ),
        population=PopulationMix(
            nat_mix={"full_cone": 0.4, "port_restricted_cone": 0.35, "symmetric": 0.25},
            region_mix={"US": 0.5, "DE": 0.25, "JP": 0.25},
            cellular_share=0.2,
        ),
        catalog=CatalogShape(kind="vod", titles=8, zipf_s=1.1),
    )


#: Named scenario presets, mirroring ``faults.PLAN_PRESETS``. Each entry
#: is a zero-argument factory so presets stay immutable across callers.
SCENARIO_PRESETS: dict[str, Callable[[], ScenarioSpec]] = {
    "steady": _steady,
    "flash-crowd": _flash_crowd,
    "diurnal": _diurnal,
    "cgnat-heavy": _cgnat_heavy,
    "vod-longtail": _vod_longtail,
}


class RandomScenarioPlanner:
    """Generate arbitrary valid scenario specs from a seeded stream.

    The property suite's fuzzer: every spec it emits must satisfy the
    spec-layer validators, materialise cleanly, and round-trip through
    JSON to the same digest.
    """

    def __init__(self, rand: DeterministicRandom) -> None:
        self.rand = rand

    def _arrivals(self):
        """Draw one arrival process of a random kind."""
        kind = self.rand.choice(["poisson", "diurnal", "flash_crowd"])
        if kind == "poisson":
            return PoissonArrivals(rate_per_min=round(self.rand.uniform(2.0, 20.0), 3))
        if kind == "diurnal":
            base = round(self.rand.uniform(0.5, 5.0), 3)
            return DiurnalArrivals(
                base_rate_per_min=base,
                peak_rate_per_min=round(base + self.rand.uniform(1.0, 15.0), 3),
                period_sec=round(self.rand.uniform(40.0, 300.0), 3),
            )
        return FlashCrowdArrivals(
            base_rate_per_min=round(self.rand.uniform(1.0, 6.0), 3),
            spike_at_sec=round(self.rand.uniform(0.0, 30.0), 3),
            spike_arrivals=self.rand.randint(0, 25),
            spike_width_sec=round(self.rand.uniform(2.0, 15.0), 3),
        )

    def _mix(self, keys: list[str]) -> dict[str, float]:
        """Random positive weights over a sampled subset of ``keys``."""
        picked = self.rand.sample(keys, self.rand.randint(1, min(3, len(keys))))
        return {key: round(self.rand.uniform(0.1, 1.0), 3) for key in sorted(picked)}

    def plan(self, name: str = "random") -> ScenarioSpec:
        """Draw one complete random scenario spec."""
        vod = self.rand.random() < 0.5
        mean_watch = round(self.rand.uniform(10.0, 120.0), 3)
        return ScenarioSpec(
            name=name,
            horizon=round(self.rand.uniform(20.0, 120.0), 3),
            arrivals=self._arrivals(),
            session=SessionModel(
                mean_watch_sec=mean_watch,
                min_watch_sec=round(self.rand.uniform(0.5, min(8.0, mean_watch)), 3),
                abandon_prob=round(self.rand.uniform(0.0, 0.5), 3),
                zap_prob=round(self.rand.uniform(0.0, 0.5), 3) if vod else 0.0,
                seek_rate_per_min=round(self.rand.uniform(0.0, 4.0), 3),
                buffer_target=self.rand.randint(2, 5),
                abr_upgrade_after=self.rand.randint(2, 8),
            ),
            population=PopulationMix(
                nat_mix=self._mix(list(NAT_KINDS)),
                region_mix=self._mix(list(PRESET_REGIONS)),
                cellular_share=round(self.rand.uniform(0.0, 0.6), 3),
                leech_share=round(self.rand.uniform(0.0, 0.6), 3),
            ),
            catalog=(
                CatalogShape(
                    kind="vod",
                    titles=self.rand.randint(2, 12),
                    zipf_s=round(self.rand.uniform(0.5, 2.0), 3),
                )
                if vod
                else CatalogShape(kind="live")
            ),
            max_viewers=self.rand.randint(5, 40),
        )


def load_scenario(spec: str) -> ScenarioSpec:
    """Resolve ``--scenario`` input: a preset name or a path to spec JSON."""
    if spec.endswith(".json") or os.path.exists(spec):
        with open(spec, "r", encoding="utf-8") as handle:
            return ScenarioSpec.from_json(handle.read())
    factory = SCENARIO_PRESETS.get(spec)
    if factory is None:
        known = ", ".join(sorted(SCENARIO_PRESETS))
        raise ConfigurationError(f"unknown scenario preset {spec!r} (known: {known})")
    return factory()
