"""Materialising a :class:`~repro.scenarios.spec.ScenarioSpec` into a timeline.

:func:`materialize` is the only place scenario randomness is spent:
``spec + seeded stream → Timeline``, a plain-data schedule of
:class:`PlannedSession` rows (who joins when, from where, behind what
NAT, watching which title, leaving when and why, with which mid-session
actions). Keeping materialisation pure — no event loop, no network —
is what lets the property suite check invariants over thousands of
random specs cheaply, and what makes ``--jobs 1`` vs ``--jobs 4``
digest identity trivial: the timeline is fixed before any worker runs.

Draw-order contract (the replay suite pins it): arrival times come
from ``base.fork("arrivals")``; each viewer ``i`` then draws from its
own ``base.fork(f"v:{i}")`` in the fixed order country → NAT →
cellular → leech → title → intended duration → abandon branch → zap
branch → seeks. Per-viewer forks mean adding a draw to one viewer's
tail can never shift another viewer's attributes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.scenarios.spec import ScenarioSpec, weighted_pick
from repro.util.rand import DeterministicRandom


@dataclass(frozen=True)
class SessionAction:
    """One mid-session event: ``zap`` (arg = target title) or ``seek`` (arg = segments)."""

    at: float
    kind: str
    arg: int

    def to_dict(self) -> dict:
        """Serialise to plain JSON types."""
        return {"at": self.at, "kind": self.kind, "arg": self.arg}


@dataclass(frozen=True)
class PlannedSession:
    """One viewer's full lifecycle, fixed before the simulation starts."""

    viewer_id: int
    join_at: float
    leave_at: float
    leave_reason: str
    country: str
    nat: str
    cellular: bool
    leech: bool
    title: int
    actions: tuple[SessionAction, ...] = ()

    def to_dict(self) -> dict:
        """Serialise to plain JSON types."""
        return {
            "viewer_id": self.viewer_id,
            "join_at": self.join_at,
            "leave_at": self.leave_at,
            "leave_reason": self.leave_reason,
            "country": self.country,
            "nat": self.nat,
            "cellular": self.cellular,
            "leech": self.leech,
            "title": self.title,
            "actions": [action.to_dict() for action in self.actions],
        }


@dataclass
class Timeline:
    """The materialised audience: every planned session, in join order."""

    scenario: str
    spec_digest: str
    horizon: float
    sessions: list[PlannedSession] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Serialise to plain JSON types (the digest form)."""
        return {
            "scenario": self.scenario,
            "spec_digest": self.spec_digest,
            "horizon": self.horizon,
            "sessions": [session.to_dict() for session in self.sessions],
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def realized_nat_mix(self) -> dict[str, int]:
        """Session counts per NAT kind, sorted by kind."""
        counts: dict[str, int] = {}
        for session in self.sessions:
            counts[session.nat] = counts.get(session.nat, 0) + 1
        return dict(sorted(counts.items()))

    def realized_region_mix(self) -> dict[str, int]:
        """Session counts per country, sorted by country."""
        counts: dict[str, int] = {}
        for session in self.sessions:
            counts[session.country] = counts.get(session.country, 0) + 1
        return dict(sorted(counts.items()))

    def realized_title_mix(self) -> dict[int, int]:
        """Session counts per title index, sorted by title."""
        counts: dict[int, int] = {}
        for session in self.sessions:
            counts[session.title] = counts.get(session.title, 0) + 1
        return dict(sorted(counts.items()))

    def cellular_count(self) -> int:
        """How many sessions join on cellular links."""
        return sum(1 for session in self.sessions if session.cellular)

    def leech_count(self) -> int:
        """How many sessions are free riders."""
        return sum(1 for session in self.sessions if session.leech)


def _session_for(
    spec: ScenarioSpec, viewer_id: int, join_at: float, vr: DeterministicRandom
) -> PlannedSession:
    """Draw one viewer's attributes and lifecycle in the fixed order."""
    model = spec.session
    country = weighted_pick(vr, spec.population.region_mix)
    nat = weighted_pick(vr, spec.population.nat_mix)
    cellular = vr.random() < spec.population.cellular_share
    leech = vr.random() < spec.population.leech_share
    title = spec.catalog.pick_title(vr)

    intended = max(model.min_watch_sec, vr.expovariate(1.0 / model.mean_watch_sec))
    abandoned = vr.random() < model.abandon_prob
    if abandoned:
        intended = max(model.min_watch_sec, intended * vr.uniform(0.05, 0.5))
    leave_at = round(join_at + intended, 3)
    reason = "abandon" if abandoned else "leave"
    if leave_at >= spec.horizon:
        leave_at, reason = spec.horizon, "horizon"

    actions: list[SessionAction] = []
    if vr.random() < model.zap_prob:
        zap_at = round(join_at + (leave_at - join_at) * vr.uniform(0.2, 0.8), 3)
        target = spec.catalog.pick_title(vr)
        # Zapping to the title already playing is a no-op remote press;
        # only a genuine channel change cuts the session short.
        if target != title and join_at < zap_at < leave_at:
            actions.append(SessionAction(zap_at, "zap", target))
            leave_at, reason = zap_at, "zap"

    if model.seek_rate_per_min > 0:
        seek_rate = model.seek_rate_per_min / 60.0
        t = join_at + vr.expovariate(seek_rate)
        while t < leave_at:
            actions.append(SessionAction(round(t, 3), "seek", vr.randint(1, 3)))
            t += vr.expovariate(seek_rate)

    actions.sort(key=lambda action: (action.at, action.kind, action.arg))
    return PlannedSession(
        viewer_id=viewer_id,
        join_at=join_at,
        leave_at=leave_at,
        leave_reason=reason,
        country=country,
        nat=nat,
        cellular=cellular,
        leech=leech,
        title=title,
        actions=tuple(actions),
    )


def materialize(spec: ScenarioSpec, rand: DeterministicRandom) -> Timeline:
    """Sample a concrete :class:`Timeline` from a spec and a seeded stream."""
    base = rand.fork(f"scenario:{spec.name}")
    join_times = spec.arrivals.times(base.fork("arrivals"), spec.horizon)
    if spec.max_viewers is not None:
        join_times = join_times[: spec.max_viewers]
    timeline = Timeline(scenario=spec.name, spec_digest=spec.digest(), horizon=spec.horizon)
    for viewer_id, join_at in enumerate(join_times):
        vr = base.fork(f"v:{viewer_id}")
        timeline.sessions.append(_session_for(spec, viewer_id, join_at, vr))
    return timeline
