"""repro — a full reproduction of "Stealthy Peers" (DSN 2024).

The library implements every system the paper measures, attacks, and
defends: a WebRTC-like stack over a simulated internet, a CDN/HLS
delivery chain, the PDN services themselves (public and private), the
customer-detection pipeline, the PDN analyzer, the four attack families,
and the three defense families — plus experiment drivers that regenerate
every table and figure.

Start with :class:`repro.environment.Environment` and
:func:`repro.core.build_test_bed`, or run ``python -m repro all``.
"""

__version__ = "1.0.0"

from repro.environment import Environment

__all__ = ["Environment", "__version__"]
