"""Chaos run: a PDN swarm streaming through injected faults.

The paper's resilience story — CDN fallback when P2P delivery dies
(§IV-B), pollution containment under integrity checking, IP exposure
under churn — only exercises when the network misbehaves. This
experiment arms a :class:`~repro.net.faults.FaultPlan` (a named preset
or an explicit JSON file via ``--faults``) against a swarm of viewers
split across two regions, then checks the invariants that must hold no
matter what the plan did: datagram conservation, every player finishing
or degrading gracefully, and a manifest that records the exact plan
digest so the chaos is as reproducible as the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.harness.registry import DEFAULT_SEED, CliOption, experiment
from repro.harness.result import ResultBase
from repro.net.faults import RandomFaultPlanner, bind_viewer, load_plan
from repro.pdn.provider import PEER5, ProviderProfile
from repro.util.tables import render_kv

#: Regions the swarm is spread over (also the partition fault domain).
CHAOS_REGIONS = ("US", "DE")


@dataclass
class ChaosResult(ResultBase):
    """What one chaos run did to the network and to the viewers."""

    viewers: int
    plan_name: str
    plan_digest: str
    fault_events_applied: int
    datagrams_sent: int
    datagrams_delivered: int
    datagrams_dropped: int
    datagrams_in_flight: int
    drops_by_reason: dict = field(default_factory=dict)
    p2p_fetches: int = 0
    p2p_fallbacks: int = 0
    peer_churn_evictions: int = 0
    neighbors_banned: int = 0
    players_finished: int = 0
    players_stalled: int = 0
    segments_skipped: int = 0
    stalls: int = 0
    #: Set only when ``--scenario`` drives the audience; empty strings
    #: are dropped from ``to_dict`` so the classic run's digest is
    #: untouched by the scenario layer's existence.
    scenario_name: str = ""
    scenario_digest: str = ""
    timeline_digest: str = ""

    @property
    def conservation_ok(self) -> bool:
        """The core invariant: sent = delivered + dropped + in flight."""
        return self.datagrams_sent == (
            self.datagrams_delivered + self.datagrams_dropped + self.datagrams_in_flight
        )

    def manifest_extra(self) -> dict:
        """Provenance for the run manifest: which chaos (and scenario), exactly."""
        extra = {"plan_name": self.plan_name, "plan_digest": self.plan_digest}
        if self.scenario_name:
            extra["scenario_name"] = self.scenario_name
            extra["scenario_digest"] = self.scenario_digest
        return extra

    def to_dict(self) -> dict:
        """Dataclass fields plus the derived conservation verdict."""
        out = super().to_dict()
        out["conservation_ok"] = self.conservation_ok
        if not self.scenario_name:
            for key in ("scenario_name", "scenario_digest", "timeline_digest"):
                out.pop(key, None)
        return out

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        drops = ", ".join(f"{k}={v}" for k, v in sorted(self.drops_by_reason.items())) or "none"
        title = f"Chaos run — plan {self.plan_name!r} ({self.plan_digest[:12]})"
        if self.scenario_name:
            title += f", scenario {self.scenario_name!r} ({self.scenario_digest[:12]})"
        return render_kv(
            title,
            [
                ("viewers", self.viewers),
                ("fault events applied", self.fault_events_applied),
                ("datagrams sent", self.datagrams_sent),
                ("datagrams delivered", self.datagrams_delivered),
                ("datagrams dropped", self.datagrams_dropped),
                ("drops by reason", drops),
                ("conservation (sent = delivered + dropped + in flight)",
                 "ok" if self.conservation_ok else "VIOLATED"),
                ("p2p fetches / fallbacks", f"{self.p2p_fetches} / {self.p2p_fallbacks}"),
                ("neighbors evicted by churn", self.peer_churn_evictions),
                ("neighbors banned (integrity)", self.neighbors_banned),
                ("players finished / stalled-out", f"{self.players_finished} / {self.players_stalled}"),
                ("segments skipped", self.segments_skipped),
                ("stall events", self.stalls),
            ],
        )


@experiment(
    "chaos",
    help="fault-injected swarm run: churn, flaky links, partitions, outages",
    paper_ref="§IV-B",
    order=95,
    quick_params={"viewers": 3, "segments": 6},
    options=(
        CliOption(
            "--faults",
            "faults",
            str,
            "chaos-mix",
            "fault plan: preset name (calm, churn, flaky, partition, blackout, "
            "chaos-mix) or a JSON plan file",
        ),
        CliOption(
            "--scenario",
            "scenario",
            str,
            "",
            "drive the audience from a scenario preset or spec JSON instead of "
            "the fixed staggered-join swarm (empty = classic behaviour)",
        ),
    ),
)
def run(
    seed: int = DEFAULT_SEED,
    viewers: int = 6,
    faults: str = "chaos-mix",
    scenario: str = "",
    profile: ProviderProfile = PEER5,
    segments: int = 10,
    segment_seconds: float = 4.0,
    segment_bytes: int = 60_000,
    join_stagger: float = 2.0,
) -> ChaosResult:
    """Stream through a fault plan and measure what survived."""
    spec = timeline = None
    if scenario:
        from repro.scenarios.planner import load_scenario
        from repro.scenarios.timeline import materialize

        spec = load_scenario(scenario)
    env = Environment(seed=seed)
    bed = build_test_bed(
        env,
        profile,
        video_segments=segments,
        segment_seconds=segment_seconds,
        segment_bytes=segment_bytes,
        live=spec is not None and spec.catalog.kind == "live",
    )
    analyzer = PdnAnalyzer(env)

    sessions = []
    engine = None
    if spec is None:
        for i in range(viewers):
            peer = analyzer.create_peer(
                name=f"chaos-viewer-{i}", country=CHAOS_REGIONS[i % len(CHAOS_REGIONS)]
            )
            sessions.append((peer, peer.watch_test_stream(bed)))
            analyzer.run(join_stagger)
        horizon = segments * segment_seconds + 30.0
        fault_hosts = [peer.browser.host.name for peer, _ in sessions]
        fault_regions: tuple[str, ...] | list[str] = CHAOS_REGIONS
    else:
        timeline = materialize(spec, env.rand)
        horizon = spec.horizon
        fault_hosts = [
            f"sc{planned.viewer_id}" for planned in timeline.sessions if planned.title == 0
        ]
        fault_regions = spec.expected_regions()

    planner = RandomFaultPlanner(env.rand.fork("fault-plan"))
    plan = load_plan(
        faults,
        planner=planner,
        hosts=fault_hosts,
        horizon=horizon,
        regions=fault_regions,
        hostnames=[bed.cdn.hostname],
    )
    injector = env.inject_faults(plan)
    if spec is None:
        for peer, session in sessions:
            bind_viewer(injector, peer.browser.host, sdk=session.sdk, player=session.player)
    else:
        from repro.scenarios.engine import ScenarioEngine, SwarmViewerFactory

        factory = SwarmViewerFactory(analyzer, bed, spec, injector=injector)
        engine = ScenarioEngine(
            env.loop,
            timeline,
            factory.create,
            factory.close,
            on_action=factory.on_action,
            max_peers=viewers,
        ).start()

    analyzer.run(horizon)
    if engine is not None:
        engine.close_all("shutdown")
        sessions = [(peer, session) for _, peer, session in factory.created]

    network = env.network
    p2p_fetches = p2p_fallbacks = evictions = banned = 0
    finished = stalled = skipped = stalls = 0
    for _, session in sessions:
        if session.sdk is not None:
            stats = session.sdk.stats
            p2p_fetches += stats.p2p_fetches
            p2p_fallbacks += stats.p2p_fallbacks
            evictions += stats.peer_churn_evictions
            banned += stats.neighbors_banned
        if session.player is not None:
            if session.player.finished:
                finished += 1
            else:
                stalled += 1
            skipped += session.player.stats.segments_skipped
            stalls += session.player.stats.stalls
    analyzer.teardown()

    return ChaosResult(
        viewers=viewers if engine is None else engine.joins,
        plan_name=plan.name,
        plan_digest=plan.digest(),
        scenario_name=spec.name if spec is not None else "",
        scenario_digest=spec.digest() if spec is not None else "",
        timeline_digest=timeline.digest() if timeline is not None else "",
        fault_events_applied=injector.events_applied,
        datagrams_sent=network.datagrams_sent,
        datagrams_delivered=network.datagrams_delivered,
        datagrams_dropped=network.datagrams_dropped,
        datagrams_in_flight=network.datagrams_in_flight,
        drops_by_reason=dict(sorted(network.drops_by_reason.items())),
        p2p_fetches=p2p_fetches,
        p2p_fallbacks=p2p_fallbacks,
        peer_churn_evictions=evictions,
        neighbors_banned=banned,
        players_finished=finished,
        players_stalled=stalled,
        segments_skipped=skipped,
        stalls=stalls,
    )
