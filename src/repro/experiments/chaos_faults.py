"""Chaos run: a PDN swarm streaming through injected faults.

The paper's resilience story — CDN fallback when P2P delivery dies
(§IV-B), pollution containment under integrity checking, IP exposure
under churn — only exercises when the network misbehaves. This
experiment arms a :class:`~repro.net.faults.FaultPlan` (a named preset
or an explicit JSON file via ``--faults``) against a swarm of viewers
split across two regions, then checks the invariants that must hold no
matter what the plan did: datagram conservation, every player finishing
or degrading gracefully, and a manifest that records the exact plan
digest so the chaos is as reproducible as the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.harness.registry import DEFAULT_SEED, CliOption, experiment
from repro.harness.result import ResultBase
from repro.net.faults import RandomFaultPlanner, bind_viewer, load_plan
from repro.pdn.provider import PEER5, ProviderProfile
from repro.util.tables import render_kv

#: Regions the swarm is spread over (also the partition fault domain).
CHAOS_REGIONS = ("US", "DE")


@dataclass
class ChaosResult(ResultBase):
    """What one chaos run did to the network and to the viewers."""

    viewers: int
    plan_name: str
    plan_digest: str
    fault_events_applied: int
    datagrams_sent: int
    datagrams_delivered: int
    datagrams_dropped: int
    datagrams_in_flight: int
    drops_by_reason: dict = field(default_factory=dict)
    p2p_fetches: int = 0
    p2p_fallbacks: int = 0
    peer_churn_evictions: int = 0
    neighbors_banned: int = 0
    players_finished: int = 0
    players_stalled: int = 0
    segments_skipped: int = 0
    stalls: int = 0

    @property
    def conservation_ok(self) -> bool:
        """The core invariant: sent = delivered + dropped + in flight."""
        return self.datagrams_sent == (
            self.datagrams_delivered + self.datagrams_dropped + self.datagrams_in_flight
        )

    def manifest_extra(self) -> dict:
        """Provenance for the run manifest: which chaos, exactly."""
        return {"plan_name": self.plan_name, "plan_digest": self.plan_digest}

    def to_dict(self) -> dict:
        """Dataclass fields plus the derived conservation verdict."""
        out = super().to_dict()
        out["conservation_ok"] = self.conservation_ok
        return out

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        drops = ", ".join(f"{k}={v}" for k, v in sorted(self.drops_by_reason.items())) or "none"
        return render_kv(
            f"Chaos run — plan {self.plan_name!r} ({self.plan_digest[:12]})",
            [
                ("viewers", self.viewers),
                ("fault events applied", self.fault_events_applied),
                ("datagrams sent", self.datagrams_sent),
                ("datagrams delivered", self.datagrams_delivered),
                ("datagrams dropped", self.datagrams_dropped),
                ("drops by reason", drops),
                ("conservation (sent = delivered + dropped + in flight)",
                 "ok" if self.conservation_ok else "VIOLATED"),
                ("p2p fetches / fallbacks", f"{self.p2p_fetches} / {self.p2p_fallbacks}"),
                ("neighbors evicted by churn", self.peer_churn_evictions),
                ("neighbors banned (integrity)", self.neighbors_banned),
                ("players finished / stalled-out", f"{self.players_finished} / {self.players_stalled}"),
                ("segments skipped", self.segments_skipped),
                ("stall events", self.stalls),
            ],
        )


@experiment(
    "chaos",
    help="fault-injected swarm run: churn, flaky links, partitions, outages",
    paper_ref="§IV-B",
    order=95,
    quick_params={"viewers": 3, "segments": 6},
    options=(
        CliOption(
            "--faults",
            "faults",
            str,
            "chaos-mix",
            "fault plan: preset name (calm, churn, flaky, partition, blackout, "
            "chaos-mix) or a JSON plan file",
        ),
    ),
)
def run(
    seed: int = DEFAULT_SEED,
    viewers: int = 6,
    faults: str = "chaos-mix",
    profile: ProviderProfile = PEER5,
    segments: int = 10,
    segment_seconds: float = 4.0,
    segment_bytes: int = 60_000,
    join_stagger: float = 2.0,
) -> ChaosResult:
    """Stream through a fault plan and measure what survived."""
    env = Environment(seed=seed)
    bed = build_test_bed(
        env,
        profile,
        video_segments=segments,
        segment_seconds=segment_seconds,
        segment_bytes=segment_bytes,
    )
    analyzer = PdnAnalyzer(env)

    sessions = []
    for i in range(viewers):
        peer = analyzer.create_peer(
            name=f"chaos-viewer-{i}", country=CHAOS_REGIONS[i % len(CHAOS_REGIONS)]
        )
        sessions.append((peer, peer.watch_test_stream(bed)))
        analyzer.run(join_stagger)

    horizon = segments * segment_seconds + 30.0
    planner = RandomFaultPlanner(env.rand.fork("fault-plan"))
    plan = load_plan(
        faults,
        planner=planner,
        hosts=[peer.browser.host.name for peer, _ in sessions],
        horizon=horizon,
        regions=CHAOS_REGIONS,
        hostnames=[bed.cdn.hostname],
    )
    injector = env.inject_faults(plan)
    for peer, session in sessions:
        bind_viewer(injector, peer.browser.host, sdk=session.sdk, player=session.player)

    analyzer.run(horizon)

    network = env.network
    p2p_fetches = p2p_fallbacks = evictions = banned = 0
    finished = stalled = skipped = stalls = 0
    for _, session in sessions:
        if session.sdk is not None:
            stats = session.sdk.stats
            p2p_fetches += stats.p2p_fetches
            p2p_fallbacks += stats.p2p_fallbacks
            evictions += stats.peer_churn_evictions
            banned += stats.neighbors_banned
        if session.player is not None:
            if session.player.finished:
                finished += 1
            else:
                stalled += 1
            skipped += session.player.stats.segments_skipped
            stalls += session.player.stats.stalls
    analyzer.teardown()

    return ChaosResult(
        viewers=viewers,
        plan_name=plan.name,
        plan_digest=plan.digest(),
        fault_events_applied=injector.events_applied,
        datagrams_sent=network.datagrams_sent,
        datagrams_delivered=network.datagrams_delivered,
        datagrams_dropped=network.datagrams_dropped,
        datagrams_in_flight=network.datagrams_in_flight,
        drops_by_reason=dict(sorted(network.drops_by_reason.items())),
        p2p_fetches=p2p_fetches,
        p2p_fallbacks=p2p_fallbacks,
        peer_churn_evictions=evictions,
        neighbors_banned=banned,
        players_finished=finished,
        players_stalled=stalled,
        segments_skipped=skipped,
        stalls=stalls,
    )
