"""§IV-D in-the-wild IP leak, plus the §V-C geo-filter evaluation.

A collecting peer sits in one live channel per platform for a week,
harvesting two hours of candidate disclosures per day, while organic
viewers churn through the swarm. Paper numbers:

- 7,740 unique addresses total — 7,055 from Huya TV, 685 from RT News;
- 7,159 public, 581 bogons (543 private / 33 shared-NAT / 5 reserved);
- 98% of Huya's public IPs in China; RT's spread over 259 cities in 56
  countries, led by US 35%, GB 17%, CA 13%;
- ok.ru: only 8 Russian IPs (geolocation constraints).

The §V-C mitigation numbers fall out of the same data: with
same-country candidate filtering, only ~35% of RT leaks remain visible
to a US observer and none of Huya's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.harvesting import GhostViewer, HarvestingPeer
from repro.environment import Environment
from repro.harness.registry import CliOption, experiment
from repro.harness.result import ResultBase
from repro.net.addresses import IpClass, classify_ip
from repro.pdn.policy import ClientPolicy
from repro.pdn.provider import STREAMROOT, PdnProvider, private_profile
from repro.pdn.scheduler import GeoFilterMode
from repro.privacy.viewers import (
    PlatformAudience,
    ViewerChurn,
    ViewerDescriptor,
    huya_audience,
    rt_news_audience,
    single_country_audience,
)
from repro.util.tables import render_kv

DAY = 86_400.0

PAPER = {
    "total_unique": 7_740,
    "huya_unique": 7_055,
    "rt_unique": 685,
    "public": 7_159,
    "bogons": 581,
    "bogon_private": 543,
    "bogon_shared": 33,
    "bogon_reserved": 5,
    "huya_cn_share": 0.98,
    "rt_top": {"US": 0.35, "GB": 0.17, "CA": 0.13},
    "rt_countries": 56,
    "rt_cities": 259,
    "okru_collected": 8,
}


@dataclass
class PlatformLeak:
    """Every unique address one platform's harvest disclosed."""
    platform: str
    observer_country: str
    unique_ips: set[str] = field(default_factory=set)

    @property
    def total(self) -> int:
        """Count of unique harvested addresses."""
        return len(self.unique_ips)

    def public_ips(self) -> list[str]:
        """The harvested addresses that are publicly routable."""
        return [ip for ip in self.unique_ips if classify_ip(ip) is IpClass.PUBLIC]

    def bogon_breakdown(self) -> dict[str, int]:
        """Non-public addresses split into private / shared-NAT / reserved."""
        out = {"private": 0, "shared_nat": 0, "reserved": 0}
        for ip in self.unique_ips:
            cls = classify_ip(ip)
            if cls is IpClass.PRIVATE:
                out["private"] += 1
            elif cls is IpClass.SHARED_NAT:
                out["shared_nat"] += 1
            elif cls is IpClass.RESERVED:
                out["reserved"] += 1
        return out

    def country_distribution(self, geo) -> dict[str, float]:
        """Share of public addresses per country, largest first."""
        publics = self.public_ips()
        if not publics:
            return {}
        counts: dict[str, int] = {}
        for ip in publics:
            counts[geo.country_of(ip)] = counts.get(geo.country_of(ip), 0) + 1
        return {c: n / len(publics) for c, n in sorted(counts.items(), key=lambda kv: -kv[1])}

    def cities(self, geo) -> int:
        """How many distinct cities the public addresses geolocate to."""
        return len({geo.lookup(ip).city for ip in self.public_ips()})

    def same_country_share(self, geo) -> float:
        """What a same-country geo filter would still disclose (§V-C)."""
        publics = self.public_ips()
        if not publics:
            return 0.0
        same = sum(1 for ip in publics if geo.country_of(ip) == self.observer_country)
        return same / len(publics)


@dataclass
class IpLeakWildResult(ResultBase):
    """Per-platform harvests plus the geo database that locates them."""
    platforms: dict[str, PlatformLeak]
    geo: object
    #: Set only when ``--scenario`` drives the audience; empty strings
    #: and an empty dict otherwise, and then omitted from the digest
    #: form so classic-run digests stay untouched by the scenario
    #: layer's existence (same contract as ``repro chaos --scenario``).
    scenario_name: str = ""
    scenario_digest: str = ""
    timeline_digests: dict[str, str] = field(default_factory=dict)

    _serialize_exclude = ("geo",)

    @property
    def total_unique(self) -> int:
        """Unique addresses across every platform."""
        return sum(p.total for p in self.platforms.values())

    def to_dict(self) -> dict:
        """Export each platform's addresses and derived geo statistics."""
        platforms = {}
        for name, leak in self.platforms.items():
            platforms[name] = {
                "platform": leak.platform,
                "observer_country": leak.observer_country,
                "unique_ips": sorted(leak.unique_ips),
                "total": leak.total,
                "public": len(leak.public_ips()),
                "bogons": leak.bogon_breakdown(),
                "country_distribution": leak.country_distribution(self.geo),
                "cities": leak.cities(self.geo),
                "same_country_share": leak.same_country_share(self.geo),
            }
        out = {"total_unique": self.total_unique, "platforms": platforms}
        if self.scenario_name:
            out["scenario_name"] = self.scenario_name
            out["scenario_digest"] = self.scenario_digest
            out["timeline_digests"] = dict(sorted(self.timeline_digests.items()))
        return out

    def manifest_extra(self) -> dict:
        """Scenario provenance for the run manifest, when one drove the run."""
        if not self.scenario_name:
            return {}
        return {
            "scenario_name": self.scenario_name,
            "scenario_digest": self.scenario_digest,
            "timeline_digests": dict(sorted(self.timeline_digests.items())),
        }

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        blocks = []
        total_public = sum(len(p.public_ips()) for p in self.platforms.values())
        total_bogons = self.total_unique - total_public
        split = {"private": 0, "shared_nat": 0, "reserved": 0}
        for platform in self.platforms.values():
            for key, value in platform.bogon_breakdown().items():
                split[key] += value
        title = "§IV-D IP leak in the wild (paper values in parentheses)"
        if self.scenario_name:
            title += f", scenario {self.scenario_name!r} ({self.scenario_digest[:12]})"
        blocks.append(
            render_kv(
                title,
                [
                    ("total unique IPs (7,740)", self.total_unique),
                    ("public (7,159)", total_public),
                    ("bogons (581)", total_bogons),
                    ("  private (543)", split["private"]),
                    ("  shared NAT (33)", split["shared_nat"]),
                    ("  reserved (5)", split["reserved"]),
                ],
            )
        )
        for name, platform in self.platforms.items():
            dist = platform.country_distribution(self.geo)
            top = list(dist.items())[:3]
            blocks.append(
                render_kv(
                    f"platform {name} (observer in {platform.observer_country})",
                    [
                        ("unique IPs", platform.total),
                        ("countries", len(dist)),
                        ("cities", platform.cities(self.geo)),
                        ("top countries", ", ".join(f"{c} {p * 100:.0f}%" for c, p in top)),
                        (
                            "leaks surviving same-country filter (§V-C)",
                            f"{platform.same_country_share(self.geo) * 100:.0f}%",
                        ),
                    ],
                )
            )
        return "\n\n".join(blocks)


@experiment(
    "ip-leak",
    help="§IV-D: in-the-wild IP harvest",
    paper_ref="§IV-D",
    order=70,
    options=(
        CliOption("--days", "days", float, 1.0, "harvest days (without --full)"),
        CliOption(
            "--scenario",
            "scenario",
            str,
            "",
            "drive each platform's audience from a scenario preset or spec "
            "JSON instead of the Poisson churn windows (empty = classic "
            "behaviour; the harvest then covers the scenario horizon)",
        ),
    ),
    full_params={"days": 7.0},
    quick_params={"days": 0.05, "window_hours": 0.25},
)
def run(
    seed: int = 99,
    days: float = 7.0,
    window_hours: float = 2.0,
    huya_rate_per_min: float = 11.3,
    rt_rate_per_min: float = 0.75,
    okru_rate_per_min: float = 0.012,
    include_okru: bool = True,
    scenario: str = "",
) -> IpLeakWildResult:
    """Run the harvest on Huya-like, RT-like, and ok.ru-like platforms."""
    scenario_spec = None
    if scenario:
        from repro.scenarios.planner import load_scenario

        scenario_spec = load_scenario(scenario)
    platforms: dict[str, PlatformLeak] = {}
    timeline_digests: dict[str, str] = {}
    geo_ref = None
    specs = [
        ("huya.com", True, None, huya_rate_per_min, "US", GeoFilterMode.NONE),
        ("rt-news-app", False, None, rt_rate_per_min, "US", GeoFilterMode.NONE),
    ]
    if include_okru:
        specs.append(("ok.ru", True, "RU", okru_rate_per_min, "RU", GeoFilterMode.SAME_COUNTRY))
    for name, is_private, audience_country, rate, observer_country, geo_mode in specs:
        env = Environment(seed=f"{seed}:{name}")
        geo_ref = env.geo
        if audience_country:
            audience = single_country_audience(name, audience_country)
        elif name.startswith("huya"):
            audience = huya_audience()
        else:
            audience = rt_news_audience(env.geo)
        platforms[name] = _harvest_platform(
            env, name, is_private, audience, rate, observer_country, geo_mode,
            days, window_hours,
            scenario_spec=scenario_spec, timeline_digests=timeline_digests,
        )
    return IpLeakWildResult(
        platforms=platforms,
        geo=geo_ref,
        scenario_name=scenario_spec.name if scenario_spec is not None else "",
        scenario_digest=scenario_spec.digest() if scenario_spec is not None else "",
        timeline_digests=timeline_digests,
    )


def _scenario_descriptor(planned, audience: PlatformAudience, geo, rand) -> ViewerDescriptor:
    """Turn one :class:`PlannedSession` into the churn-layer descriptor.

    The scenario layer plans *who joins when*; this maps its population
    attributes onto what a harvesting peer observes. A CGNAT session's
    external address sits in the RFC 6598 shared space by definition;
    every other NAT kind still runs the audience's failed-traversal
    bogon trial, same odds as the classic churn path.
    """
    if planned.nat == "cgnat":
        ip = geo.random_bogon(rand, IpClass.SHARED_NAT)
        is_artifact = True
    elif rand.random() < audience.bogon_rate:
        kind = rand.weighted_pick(list(audience.bogon_split))
        ip = geo.random_bogon(rand, kind)
        is_artifact = True
    else:
        ip = geo.random_ip(rand, planned.country)
        is_artifact = False
    session_length = max(30.0, planned.leave_at - planned.join_at)
    return ViewerDescriptor(
        planned.viewer_id, ip, planned.country, session_length, is_artifact
    )


def _harvest_platform(
    env: Environment,
    name: str,
    is_private: bool,
    audience: PlatformAudience,
    arrival_rate_per_min: float,
    observer_country: str,
    geo_mode: GeoFilterMode,
    days: float,
    window_hours: float,
    scenario_spec=None,
    timeline_digests: dict[str, str] | None = None,
) -> PlatformLeak:
    if is_private:
        profile = private_profile(name, f"signal.{name}", video_bound_tokens=False)
    else:
        profile = STREAMROOT
    provider = PdnProvider(env.loop, env.rand, profile)
    provider.install(env.urlspace)
    provider.signup_customer(name, None, ClientPolicy())
    provider.scheduler.geo_filter = geo_mode
    provider.signaling.geo_resolver = env.geo.resolver()
    # Ghost viewers are lightweight stand-ins for real SDKs (which send
    # keepalives); disable idle reaping rather than simulate 10^6 pings.
    provider.signaling.session_ttl = 10 * days * DAY

    video_url = f"https://cdn.{name}/live/channel-1/playlist.m3u8"
    credential = (
        provider.issue_session_token(name, video_url)
        if is_private
        else provider.authenticator.issue_key(name).key
    )

    def on_arrival(descriptor):
        """Spawn one ghost viewer for a churn arrival."""
        viewer_credential = (
            provider.issue_session_token(name, video_url) if is_private else credential
        )
        GhostViewer(env, provider, viewer_credential, video_url, descriptor, f"https://{name}")

    if scenario_spec is not None:
        # Scenario mode: the audience comes from a materialised timeline
        # instead of Poisson churn — every planned join becomes one
        # ghost-viewer arrival at its planned instant, and the harvester
        # watches the whole scenario horizon as a single window. The
        # timeline digest is recorded so run manifests pin exactly
        # which audience was realised (as `repro chaos --scenario` does).
        from repro.scenarios.timeline import materialize

        timeline = materialize(scenario_spec, env.rand.fork(f"scenario:{name}"))
        if timeline_digests is not None:
            timeline_digests[name] = timeline.digest()
        horizon = scenario_spec.horizon
        windows = [(0.0, scenario_spec.horizon)]
        descriptor_rand = env.rand.fork(f"scenario-audience:{name}")
        for planned in timeline.sessions:
            descriptor = _scenario_descriptor(planned, audience, env.geo, descriptor_rand)
            env.loop.schedule(planned.join_at, on_arrival, descriptor)
    else:
        # The paper harvests 2 hours per day for a week. Viewer churn
        # matters only while it can be observed, so arrivals run from
        # shortly before each window (to populate the swarm) to its end.
        horizon = max(days * DAY, window_hours * 3600.0)
        num_windows = max(1, int(round(days)))
        windows = [(d * DAY, d * DAY + window_hours * 3600.0) for d in range(num_windows)]
        warmup = 30 * 60.0
        for day, (t0, t1) in enumerate(windows):
            churn = ViewerChurn(
                env.loop,
                env.rand.fork(f"churn:{name}:{day}"),
                env.geo,
                audience,
                arrival_rate_per_min=arrival_rate_per_min,
                mean_session_min=12.0,
            )
            start_at = max(0.0, t0 - warmup)
            env.loop.schedule(start_at, churn.start, on_arrival, t1)

    observer_ip = env.geo.random_ip(env.rand.fork("observer"), observer_country)
    harvester_credential = (
        provider.issue_session_token(name, video_url) if is_private else credential
    )
    harvester = HarvestingPeer(
        env, provider, harvester_credential, video_url,
        origin=f"https://{name}", observer_ip=observer_ip, windows=windows,
    )
    started = harvester.start()
    if not started:
        raise RuntimeError(f"harvester failed to join {name}")

    env.run(horizon)
    harvester.stop()
    leak = PlatformLeak(platform=name, observer_country=observer_country)
    leak.unique_ips = harvester.unique_ips()
    leak.unique_ips.discard(harvester.observer_ip)
    return leak
