"""Experiment drivers: one module per table/figure in the paper.

Each module exposes a ``run(...)`` returning a result object with the
measured quantities and a ``render()`` producing the same rows/series
the paper reports. The benchmark harness under ``benchmarks/`` calls
these and prints paper-vs-measured comparisons; EXPERIMENTS.md records
one canonical run.

| Paper artifact    | Module |
|-------------------|--------|
| Table I–IV        | :mod:`repro.experiments.detection_tables` |
| Table V           | :mod:`repro.experiments.risk_matrix` |
| Table VI          | :mod:`repro.experiments.im_checking` |
| Fig. 4            | :mod:`repro.experiments.resource_fig4` |
| Fig. 5            | :mod:`repro.experiments.bandwidth_fig5` |
| §IV-B wild        | :mod:`repro.experiments.free_riding_wild` |
| §IV-C propagation | :mod:`repro.experiments.pollution_propagation` |
| §IV-D wild        | :mod:`repro.experiments.ip_leak_wild` |
| §IV-D consent     | :mod:`repro.experiments.consent_and_config` |
| §V-A eval         | :mod:`repro.experiments.token_defense` |
| §VI eCDN          | :mod:`repro.experiments.ecdn_discussion` |
| methodology       | :mod:`repro.experiments.detection_quality` |
"""
