"""Fig. 5: bandwidth consumption when serving multiple peers.

Peer A joins first (and so holds the content); then k ∈ {1, 2, 3}
late-joining peers leech from it. CPU, memory, and *download* stay
roughly flat — WebRTC scales — but A's *upload* grows with the neighbor
count, reaching ≈200% of its download at 3 peers (the paper's headline
shape).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.harness.registry import experiment
from repro.harness.result import ResultBase
from repro.pdn.provider import PEER5, ProviderProfile
from repro.util.tables import fmt_mb, render_table


@dataclass
class BandwidthPoint:
    """The seeder's traffic and resources at one served-peer count."""
    neighbor_peers: int
    download_bytes: int
    upload_bytes: int
    cpu_mean: float
    memory_mean: float

    @property
    def upload_over_download(self) -> float:
        """Upload as a fraction of download (the paper's headline ratio)."""
        return self.upload_bytes / self.download_bytes if self.download_bytes else 0.0


@dataclass
class Fig5Result(ResultBase):
    """Fig. 5: one BandwidthPoint per neighbor count."""
    points: list[BandwidthPoint]

    def rows(self) -> list[list]:
        """The table rows for rendering."""
        return [
            [
                p.neighbor_peers,
                fmt_mb(p.download_bytes),
                fmt_mb(p.upload_bytes),
                f"{p.upload_over_download * 100:.0f}%",
                f"{p.cpu_mean:.1f}%",
            ]
            for p in self.points
        ]

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        return render_table(
            ["# peers served", "download", "upload", "upload/download (paper: ->200% @3)", "mean CPU"],
            self.rows(),
            title="Fig. 5: Bandwidth consumption of serving multiple peers",
        )

    def upload_monotone(self) -> bool:
        """True when upload strictly grows with every added neighbor."""
        uploads = [p.upload_bytes for p in self.points]
        return all(a < b for a, b in zip(uploads, uploads[1:]))


@experiment(
    "bandwidth",
    help="Fig. 5: upload growth with served peers",
    paper_ref="Fig. 5",
    order=60,
    quick_params={"max_neighbors": 2, "segments": 6},
)
def run(
    seed: int = 55,
    profile: ProviderProfile = PEER5,
    max_neighbors: int = 3,
    segment_bytes: int = 1_000_000,
    segment_seconds: float = 4.0,
    segments: int = 12,
    stagger: float = 10.0,
    seeder_uplink: float | None = None,
) -> Fig5Result:
    """Sweep served-peer counts and measure the seeder's bandwidth."""
    points = []
    for k in range(1, max_neighbors + 1):
        points.append(
            _run_point(seed + k, profile, k, segment_bytes, segment_seconds, segments,
                       stagger, seeder_uplink)
        )
    return Fig5Result(points)


def run_saturation(
    seed: int = 56,
    seeder_uplink: float = 600_000.0,  # ~0.6 MB/s: saturates near 2 leechers
    max_neighbors: int = 5,
    segment_bytes: int = 1_000_000,
) -> Fig5Result:
    """The paper's footnote effect: "adding more peers (over 5 peers)
    will significantly lower the download traffic of peers" — with a
    finite seeder uplink, upload growth flattens and leechers fall back
    to the CDN instead of scaling P2P forever."""
    return run(
        seed=seed,
        max_neighbors=max_neighbors,
        segment_bytes=segment_bytes,
        seeder_uplink=seeder_uplink,
    )


def _run_point(
    seed: int,
    profile: ProviderProfile,
    neighbors: int,
    segment_bytes: int,
    segment_seconds: float,
    segments: int,
    stagger: float,
    seeder_uplink: float | None = None,
) -> BandwidthPoint:
    env = Environment(seed=seed)
    bed = build_test_bed(
        env,
        profile,
        video_segments=segments,
        segment_seconds=segment_seconds,
        segment_bytes=segment_bytes,
    )
    analyzer = PdnAnalyzer(env)
    duration = segments * segment_seconds

    peer_a = analyzer.create_peer(name="peer-a", uplink_bytes_per_sec=seeder_uplink)
    t0 = env.loop.now
    session_a = peer_a.watch_test_stream(bed)
    analyzer.run(stagger)
    leechers = []
    for i in range(neighbors):
        leecher = analyzer.create_peer(name=f"leecher-{i}")
        leecher.watch_test_stream(bed)
        leechers.append(leecher)
    analyzer.run(duration + stagger + 5.0)

    sdk = session_a.sdk
    download = (sdk.stats.bytes_cdn + sdk.stats.bytes_p2p_down) if sdk else 0
    upload = sdk.stats.bytes_p2p_up if sdk else 0
    point = BandwidthPoint(
        neighbor_peers=neighbors,
        download_bytes=download,
        upload_bytes=upload,
        cpu_mean=peer_a.monitor.cpu.mean_between(t0, t0 + duration),
        memory_mean=peer_a.monitor.memory.mean_between(t0, t0 + duration),
    )
    analyzer.teardown()
    return point
