"""§IV-D user consent and resource-squatting configuration, in the wild.

Two corpus-wide audits the paper performed manually:

- **User consent**: across all potential PDN customers (134 websites +
  38 apps + 10 private services), none shows a consent dialog, none
  mentions the P2P network in its terms, and none lets viewers disable
  the PDN.
- **Cellular configuration**: Peer5 ships each customer's configuration
  in an unprotected JavaScript variable. Reading it across customers,
  exactly three high-download apps (com.bongo.bioscope,
  com.portonics.mygp, com.arenacloudtv.android — >15M installs in
  total) allow the SDK to use viewers' *cellular* data for both upload
  and download; the rest are leech-only on cellular.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.attacks.squatting import audit_consent
from repro.environment import Environment
from repro.harness.registry import experiment
from repro.harness.result import ResultBase
from repro.streaming.http import HttpClient
from repro.util.tables import render_kv, render_table
from repro.web.corpus import CELLULAR_FULL_APPS, Corpus, CorpusConfig, build_corpus, quick_corpus_config

PAPER = {
    "customers_checked": 134 + 38 + 10,
    "informing_viewers": 0,
    "allowing_disable": 0,
    "cellular_full_apps": sorted(CELLULAR_FULL_APPS),
}


@dataclass
class ConsentAndConfigResult(ResultBase):
    """The consent-audit counters and the cellular-config read-out."""
    customers_checked: int = 0
    informing_viewers: int = 0
    allowing_disable: int = 0
    configs_read: int = 0
    cellular_full: list[str] = field(default_factory=list)
    cellular_leech: int = 0
    cellular_none: int = 0
    flagged_total_downloads: int = 0

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        consent = render_kv(
            "§IV-D user consent audit (paper: none of 182 inform viewers)",
            [
                ("customers checked", self.customers_checked),
                ("show consent dialog / mention P2P", self.informing_viewers),
                ("allow viewers to disable the PDN", self.allowing_disable),
            ],
        )
        config = render_table(
            ["app allowing cellular upload+download", "paper flags it"],
            [[package, package in PAPER["cellular_full_apps"]] for package in self.cellular_full],
            title=(
                "§IV-D cellular configuration, read from the unprotected SDK config "
                f"variable ({self.configs_read} configs; leech-only: {self.cellular_leech})"
            ),
        )
        downloads = render_kv(
            "impact",
            [("combined Google Play downloads of flagged apps (paper: >15M)",
              f"{self.flagged_total_downloads / 1e6:.1f}M")],
        )
        return "\n\n".join([consent, config, downloads])


@experiment(
    "consent",
    help="§IV-D: consent audit + cellular configs",
    paper_ref="§IV-D",
    order=80,
    quick_params={"config": quick_corpus_config()},
)
def run(seed: int = 909, config: CorpusConfig | None = None) -> ConsentAndConfigResult:
    """Audit the corpus for consent and cellular configuration."""
    env = Environment(seed=seed)
    corpus = build_corpus(env, config)
    result = ConsentAndConfigResult()
    _audit_consent(corpus, result)
    _read_configs(env, corpus, result)
    return result


def _audit_consent(corpus: Corpus, result: ConsentAndConfigResult) -> None:
    for record in corpus.records:
        provider = (
            corpus.private_providers.get(record.name)
            if record.kind == "private"
            else corpus.providers.get(record.provider)
        )
        if provider is None:
            continue
        policy = provider.customer_policy(record.name)
        site = corpus.website(record.name) if record.kind != "app" else None
        audit = audit_consent(record.name, policy, site)
        result.customers_checked += 1
        if audit.informs_viewers:
            result.informing_viewers += 1
        if audit.allows_user_disable:
            result.allowing_disable += 1


def _read_configs(env: Environment, corpus: Corpus, result: ConsentAndConfigResult) -> None:
    """Fetch each confirmed customer's SDK JS and parse the config var."""
    http = HttpClient(env.urlspace, client_ip="198.18.0.9")
    downloads_by_app = {}
    for record in corpus.records:
        if record.api_key is None or not record.confirmed_expected:
            continue
        provider = corpus.providers[record.provider]
        response = http.get(provider.profile.sdk_url(record.api_key))
        if not response.ok:
            continue
        config = _parse_config_variable(response.body.decode())
        if config is None:
            continue
        result.configs_read += 1
        mode = config.get("cellularMode")
        if mode == "full":
            result.cellular_full.append(record.name)
            if record.kind == "app":
                downloads_by_app[record.name] = record.downloads or 0
        elif mode == "leech":
            result.cellular_leech += 1
        else:
            result.cellular_none += 1
    result.cellular_full.sort()
    result.flagged_total_downloads = sum(downloads_by_app.values())


def _parse_config_variable(js_source: str) -> dict | None:
    """Extract ``var _pdnConfig = {...};`` from the SDK JavaScript."""
    marker = "var _pdnConfig = "
    start = js_source.find(marker)
    if start < 0:
        return None
    end = js_source.find(";\n", start)
    if end < 0:
        return None
    try:
        return json.loads(js_source[start + len(marker) : end])
    except ValueError:
        return None
