"""Scenario × fault matrix: Table-V/VI outcomes per workload shape.

The paper's in-the-wild findings (free-riding shares, IP leakage,
pollution reach) were measured against *one* audience each. This
experiment crosses every declarative scenario preset
(:mod:`repro.scenarios`) with chaos fault presets
(:mod:`repro.net.faults`) and reports, per cell: did peer-assisted
integrity checking still contain pollution, how many bogon (CGNAT)
addresses leaked into harvests, how much P2P delivery degraded to CDN
fallback, and whether datagram conservation held. Each cell runs in a
fresh environment seeded from ``seed × scenario × fault``, so cells are
deterministic independently of which subset of the matrix is run — and
every scenario digest, fault-plan digest, and timeline digest lands in
the run manifest.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.defenses.integrity import ClientIntegrity, IntegrityCoordinator
from repro.environment import Environment
from repro.harness.registry import DEFAULT_SEED, CliOption, experiment
from repro.harness.result import ResultBase
from repro.net.addresses import is_bogon
from repro.net.faults import RandomFaultPlanner, load_plan
from repro.pdn.provider import PEER5, ProviderProfile
from repro.proxy.fake_cdn import FakeCdn, pollute_after_slow_start, pollute_bytes
from repro.proxy.mitm import MitmProxy
from repro.scenarios.engine import ScenarioEngine, SwarmViewerFactory
from repro.scenarios.planner import SCENARIO_PRESETS, load_scenario
from repro.scenarios.timeline import materialize
from repro.util.errors import ConfigurationError
from repro.util.tables import render_table


@dataclass
class ScenarioCell:
    """One scenario × fault cell's outcomes."""

    scenario: str
    scenario_digest: str
    fault_plan: str
    fault_digest: str
    timeline_digest: str
    audience: int
    swarm_joins: int
    swarm_leaves: int
    background: int
    overflow: int
    fault_events_applied: int
    infected: int
    polluted_plays: int
    contained: bool
    p2p_fetches: int
    p2p_fallbacks: int
    neighbors_banned: int
    players_finished: int
    stalls: int
    seeks: int
    harvested_ips: int
    leaked_bogons: int
    conservation_ok: bool


@dataclass
class ScenarioMatrixResult(ResultBase):
    """Every cell of the scenario × fault cross."""

    cells: list[ScenarioCell] = field(default_factory=list)

    def manifest_extra(self) -> dict:
        """Provenance: scenario, fault-plan, and timeline digests per cell."""
        return {
            "scenarios": {
                cell.scenario: cell.scenario_digest
                for cell in sorted(self.cells, key=lambda c: c.scenario)
            },
            "fault_plans": {
                cell.fault_plan: cell.fault_digest
                for cell in sorted(self.cells, key=lambda c: c.fault_plan)
            },
            "timelines": {
                f"{cell.scenario}x{cell.fault_plan}": cell.timeline_digest
                for cell in self.cells
            },
        }

    def contained_everywhere(self) -> bool:
        """True when no cell let pollution reach a benign screen."""
        return all(cell.contained for cell in self.cells)

    def render(self) -> str:
        """Render the matrix as one row per scenario × fault cell."""
        rows = []
        for cell in self.cells:
            rows.append(
                [
                    cell.scenario,
                    cell.fault_plan,
                    f"{cell.swarm_joins}/{cell.audience}",
                    cell.background,
                    cell.overflow,
                    cell.fault_events_applied,
                    f"{cell.infected} ({'ok' if cell.contained else 'BREACHED'})",
                    f"{cell.p2p_fetches}/{cell.p2p_fallbacks}",
                    cell.players_finished,
                    cell.stalls,
                    cell.seeks,
                    f"{cell.leaked_bogons}/{cell.harvested_ips}",
                    "ok" if cell.conservation_ok else "VIOLATED",
                ]
            )
        return render_table(
            [
                "scenario",
                "faults",
                "swarm/audience",
                "bg",
                "ovfl",
                "events",
                "infected",
                "p2p/fallback",
                "done",
                "stalls",
                "seeks",
                "bogon/ips",
                "conserved",
            ],
            rows,
            title="Scenario × fault matrix — containment, leakage, resilience per workload",
        )


def _split_axis(raw: str, known: dict, label: str) -> list[str]:
    """Parse a comma-separated axis spec; ``all`` means every preset."""
    if raw.strip() == "all":
        return sorted(known)
    names = [name.strip() for name in raw.split(",") if name.strip()]
    if not names:
        raise ConfigurationError(f"empty {label} axis")
    return names


def _run_cell(
    seed: int,
    scenario_name: str,
    fault_name: str,
    max_peers: int,
    horizon: float | None,
    profile: ProviderProfile,
    segments: int,
    segment_seconds: float,
    segment_bytes: int,
) -> ScenarioCell:
    """Run one scenario × fault cell in a fresh, cell-seeded environment."""
    spec = load_scenario(scenario_name)
    if horizon is not None:
        spec = dataclasses.replace(spec, horizon=horizon)
    env = Environment(seed=f"{seed}:scenario:{spec.name}:{fault_name}")
    bed = build_test_bed(
        env,
        profile,
        video_segments=segments,
        segment_seconds=segment_seconds,
        segment_bytes=segment_bytes,
        live=spec.catalog.kind == "live",
    )
    coordinator = IntegrityCoordinator(
        env.loop, env.rand.fork("im"), bed.provider, env.urlspace, quorum=2
    ).install()
    integrity = ClientIntegrity(env.loop, coordinator)

    # One polluting peer per cell: integrity checking (IM/SIM) must keep
    # its altered segments off benign screens in *every* workload shape.
    fake = FakeCdn(
        env.urlspace,
        real_cdn_host=bed.cdn.hostname,
        should_pollute=pollute_after_slow_start(profile.slow_start_segments),
        hostname=f"fake-{bed.cdn.hostname}",
    )
    fake.install()
    polluted_digests = {
        hashlib.sha256(pollute_bytes(s.data, fake.marker)).hexdigest()
        for s in bed.video.segments
    }
    analyzer = PdnAnalyzer(env)
    attacker_proxy = MitmProxy("pollution")
    attacker_proxy.redirect_host(bed.cdn.hostname, fake.hostname)
    attacker = analyzer.create_peer(name="polluter", proxy=attacker_proxy)
    attacker_session = attacker.watch_test_stream(bed)
    if attacker_session.sdk is not None:
        base = bed.video_url.rsplit("/", 1)[0] + "/"
        for segment in bed.video.segments:
            attacker_session.sdk.fetch_segment(
                base, segment.filename, segment.index, lambda data, source: None
            )
    analyzer.run(2.0)

    timeline = materialize(spec, env.rand)
    planned_hosts = [
        f"sc{planned.viewer_id}" for planned in timeline.sessions if planned.title == 0
    ]
    plan = load_plan(
        fault_name,
        planner=RandomFaultPlanner(env.rand.fork("fault-plan")),
        hosts=planned_hosts + [attacker.browser.host.name],
        horizon=spec.horizon,
        regions=spec.expected_regions(),
        hostnames=[bed.cdn.hostname],
    )
    injector = env.inject_faults(plan)

    factory = SwarmViewerFactory(
        analyzer, bed, spec, integrity=integrity, injector=injector
    )
    engine = ScenarioEngine(
        env.loop,
        timeline,
        factory.create,
        factory.close,
        on_action=factory.on_action,
        max_peers=max_peers,
    ).start()
    analyzer.run(spec.horizon + 10.0)
    engine.close_all("shutdown")

    infected = polluted_plays = 0
    p2p_fetches = p2p_fallbacks = banned = finished = stalls = seeks = 0
    harvested: set[str] = set()
    for planned, _peer, session in factory.created:
        if session.player is not None:
            hits = sum(
                1 for digest in session.player.stats.played_digests()
                if digest in polluted_digests
            )
            polluted_plays += hits
            infected += 1 if hits else 0
            finished += 1 if session.player.finished else 0
            stalls += session.player.stats.stalls
            seeks += session.player.stats.seeks
        if session.sdk is not None:
            p2p_fetches += session.sdk.stats.p2p_fetches
            p2p_fallbacks += session.sdk.stats.p2p_fallbacks
            banned += session.sdk.stats.neighbors_banned
            harvested.update(ip for _, ip in session.sdk.harvested_ips())
    analyzer.teardown()

    network = env.network
    return ScenarioCell(
        scenario=spec.name,
        scenario_digest=spec.digest(),
        fault_plan=plan.name,
        fault_digest=plan.digest(),
        timeline_digest=timeline.digest(),
        audience=len(timeline.sessions),
        swarm_joins=engine.joins,
        swarm_leaves=engine.leaves,
        background=engine.background,
        overflow=engine.overflow,
        fault_events_applied=injector.events_applied,
        infected=infected,
        polluted_plays=polluted_plays,
        contained=infected == 0,
        p2p_fetches=p2p_fetches,
        p2p_fallbacks=p2p_fallbacks,
        neighbors_banned=banned,
        players_finished=finished,
        stalls=stalls,
        seeks=seeks,
        harvested_ips=len(harvested),
        leaked_bogons=sum(1 for ip in sorted(harvested) if is_bogon(ip)),
        conservation_ok=network.datagrams_sent
        == network.datagrams_delivered + network.datagrams_dropped + network.datagrams_in_flight,
    )


@experiment(
    "scenario-matrix",
    help="scenario presets × fault presets: containment/leakage/resilience grid",
    paper_ref="Tables V-VI",
    order=96,
    quick_params={"max_peers": 3, "horizon": 24.0, "segments": 6},
    options=(
        CliOption(
            "--scenarios",
            "scenarios",
            str,
            "all",
            "comma-separated scenario presets (steady, flash-crowd, diurnal, "
            "cgnat-heavy, vod-longtail) or 'all'",
        ),
        CliOption(
            "--faults",
            "faults",
            str,
            "calm,churn",
            "comma-separated fault presets to cross with (calm, churn, flaky, "
            "partition, blackout, chaos-mix)",
        ),
    ),
)
def run(
    seed: int = DEFAULT_SEED,
    scenarios: str = "all",
    faults: str = "calm,churn",
    max_peers: int = 6,
    horizon: float | None = None,
    profile: ProviderProfile = PEER5,
    segments: int = 8,
    segment_seconds: float = 4.0,
    segment_bytes: int = 60_000,
) -> ScenarioMatrixResult:
    """Run the full scenario × fault cross and collect the grid."""
    scenario_names = _split_axis(scenarios, SCENARIO_PRESETS, "scenario")
    fault_names = [name.strip() for name in faults.split(",") if name.strip()]
    if not fault_names:
        raise ConfigurationError("empty fault axis")
    result = ScenarioMatrixResult()
    for scenario_name in scenario_names:
        for fault_name in fault_names:
            result.cells.append(
                _run_cell(
                    seed,
                    scenario_name,
                    fault_name,
                    max_peers,
                    horizon,
                    profile,
                    segments,
                    segment_seconds,
                    segment_bytes,
                )
            )
    return result
