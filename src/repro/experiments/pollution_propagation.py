"""Swarm-scale pollution propagation (§IV-C's impact argument).

The paper argues impact from two observations: during its experiments
"over 10 concurrent connections" tried to download from the controlled
peer, and prior work [75] measured pollution reaching 47% of viewers in
the initial stage. This experiment puts one polluting peer in a swarm of
N benign viewers and measures how far the altered segments travel —
including *second-hop* infection, where benign peers unknowingly re-serve
polluted segments they cached.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.harness.registry import experiment
from repro.harness.result import ResultBase
from repro.pdn.provider import PEER5, ProviderProfile
from repro.proxy.fake_cdn import FakeCdn, pollute_after_slow_start, pollute_bytes
from repro.proxy.mitm import MitmProxy
from repro.util.tables import render_kv

import hashlib


@dataclass
class PropagationResult(ResultBase):
    """How far one polluter's segments travelled through the swarm."""
    viewers: int
    infected: int
    polluted_segments_played: int
    attacker_direct_serves: int
    secondary_serves: int  # polluted bytes re-served by benign peers

    @property
    def infection_rate(self) -> float:
        """Fraction of benign viewers that played polluted content."""
        return self.infected / self.viewers if self.viewers else 0.0

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        return render_kv(
            "Pollution propagation in a swarm (paper cites 47% initial-stage reach)",
            [
                ("benign viewers", self.viewers),
                ("viewers that played polluted content", self.infected),
                ("infection rate", f"{self.infection_rate * 100:.0f}%"),
                ("polluted segments played (total)", self.polluted_segments_played),
                ("segments served by the attacker directly", self.attacker_direct_serves),
                ("polluted re-serves by benign peers", self.secondary_serves),
            ],
        )


@experiment(
    "propagation",
    help="§IV-C: swarm-scale pollution propagation",
    paper_ref="§IV-C",
    order=90,
    quick_params={"viewers": 4},
)
def run(
    seed: int = 808,
    viewers: int = 12,
    profile: ProviderProfile = PEER5,
    segments: int = 12,
    segment_seconds: float = 4.0,
    segment_bytes: int = 100_000,
    join_stagger: float = 3.0,
) -> PropagationResult:
    """Run one polluter against a benign swarm and measure spread."""
    env = Environment(seed=seed)
    bed = build_test_bed(
        env,
        profile,
        video_segments=segments,
        segment_seconds=segment_seconds,
        segment_bytes=segment_bytes,
    )
    fake = FakeCdn(
        env.urlspace,
        real_cdn_host=bed.cdn.hostname,
        should_pollute=pollute_after_slow_start(profile.slow_start_segments),
        hostname=f"fake-{bed.cdn.hostname}",
    )
    fake.install()
    polluted_digests = {
        hashlib.sha256(pollute_bytes(s.data, fake.marker)).hexdigest()
        for s in bed.video.segments
    }

    analyzer = PdnAnalyzer(env)
    attacker_proxy = MitmProxy("pollution")
    attacker_proxy.redirect_host(bed.cdn.hostname, fake.hostname)
    attacker = analyzer.create_peer(name="polluter", proxy=attacker_proxy)
    attacker_session = attacker.watch_test_stream(bed)
    if attacker_session.sdk is not None:
        base = bed.video_url.rsplit("/", 1)[0] + "/"
        for segment in bed.video.segments:
            attacker_session.sdk.fetch_segment(
                base, segment.filename, segment.index, lambda data, source: None
            )
    analyzer.run(2.0)

    benign = []
    for i in range(viewers):
        peer = analyzer.create_peer(name=f"viewer-{i}")
        benign.append(peer.watch_test_stream(bed))
        analyzer.run(join_stagger)
    analyzer.run(segments * segment_seconds + 20.0)

    infected = 0
    polluted_played = 0
    secondary_serves = 0
    for session in benign:
        played = session.player.stats.played_digests() if session.player else []
        hits = sum(1 for digest in played if digest in polluted_digests)
        polluted_played += hits
        if hits:
            infected += 1
        if session.sdk is not None and hits:
            # a benign peer that cached polluted segments re-serves them
            secondary_serves += session.sdk.stats.p2p_requests_served
    attacker_serves = (
        attacker_session.sdk.stats.p2p_requests_served if attacker_session.sdk else 0
    )
    analyzer.teardown()
    return PropagationResult(
        viewers=viewers,
        infected=infected,
        polluted_segments_played=polluted_played,
        attacker_direct_serves=attacker_serves,
        secondary_serves=secondary_serves,
    )
