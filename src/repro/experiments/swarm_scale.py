"""Swarm at production scale: the sharded million-viewer run.

The ROADMAP north star is a simulation that scales like the audiences
the paper measured — Peer5-class PDNs serve millions of concurrent
viewers — and the single-process core caps out near 140k events/sec.
This experiment drives :mod:`repro.net.shard`'s conservative-PDES
coordinator: an indexed swarm partitioned by region across
``--shard-workers`` processes, exchanging cross-region datagrams at
lookahead window barriers. Its result digest is **worker-count
invariant by construction**, which turns every seed pin into a
cross-process correctness oracle: ``repro verify swarm-scale`` with
``REPRO_SHARD_WORKERS`` varied between runs must agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.harness.registry import DEFAULT_SEED, CliOption, experiment
from repro.harness.result import ResultBase
from repro.net.shard import SwarmWorkload, build_fault_plan, run_workload
from repro.util.tables import render_kv


@dataclass
class SwarmScaleResult(ResultBase):
    """The merged, K-invariant outcome of one sharded swarm run.

    Worker count, coordinator mode, window count and the per-shard event
    totals are *how* the run was computed, not *what* it computed — they
    are excluded from serialization (and therefore from the verify
    digest) and surfaced through :meth:`manifest_extra` instead.
    """

    _serialize_exclude: ClassVar[tuple[str, ...]] = (
        "shard_workers", "mode", "windows", "events_fired",
    )

    viewers: int
    datagrams: int
    arrivals: str
    plan_name: str
    plan_digest: str
    swarm_digest: str
    sent: int
    delivered: int
    dropped: int
    in_flight: int
    host_checksum: int
    drops_by_reason: dict = field(default_factory=dict)
    per_region: dict = field(default_factory=dict)
    shard_workers: int = 1
    mode: str = "inline"
    windows: int = 0
    events_fired: int = 0

    @property
    def conservation_ok(self) -> bool:
        """The core invariant: sent = delivered + dropped + in flight."""
        return self.sent == self.delivered + self.dropped + self.in_flight

    def to_dict(self) -> dict:
        """Dataclass fields plus the derived conservation verdict."""
        out = super().to_dict()
        out["conservation_ok"] = self.conservation_ok
        return out

    def manifest_extra(self) -> dict:
        """Provenance + the K-dependent diagnostics kept off the digest."""
        return {
            "plan_name": self.plan_name,
            "plan_digest": self.plan_digest,
            "swarm_digest": self.swarm_digest,
            "shard_workers": self.shard_workers,
            "mode": self.mode,
            "windows": self.windows,
            "events_fired": self.events_fired,
        }

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        drops = ", ".join(f"{k}={v}" for k, v in sorted(self.drops_by_reason.items())) or "none"
        regions = ", ".join(
            f"{region}:{cell['bytes_received']:,}B/{cell['hosts']}h"
            for region, cell in sorted(self.per_region.items())
        )
        return render_kv(
            f"Sharded swarm — {self.viewers:,} viewers, "
            f"{self.shard_workers} worker(s), {self.mode}",
            [
                ("datagrams sent", self.sent),
                ("datagrams delivered", self.delivered),
                ("datagrams dropped", self.dropped),
                ("drops by reason", drops),
                ("conservation (sent = delivered + dropped + in flight)",
                 "ok" if self.conservation_ok else "VIOLATED"),
                ("arrivals", self.arrivals),
                ("fault plan", f"{self.plan_name} ({self.plan_digest[:12]})"),
                ("per-region delivery", regions or "none"),
                ("swarm digest (K-invariant)", self.swarm_digest[:16]),
                ("barrier windows", self.windows),
                ("events fired", self.events_fired),
            ],
        )


@experiment(
    "swarm-scale",
    help="region-sharded swarm scale run (conservative PDES, K-invariant digest)",
    paper_ref="§II-B",
    order=97,
    quick_params={"viewers": 400, "datagrams": 2_000},
    full_params={"viewers": 1_000_000, "datagrams": 2_000_000, "shard_workers": 4},
    options=(
        CliOption("--viewers", "viewers", int, 5_000, "swarm size (indexed viewers)"),
        CliOption("--datagrams", "datagrams", int, 25_000, "total datagrams to exchange"),
        CliOption(
            "--shard-workers",
            "shard_workers",
            int,
            1,
            "worker processes to shard the swarm across (clamped to the "
            "region count; the digest is identical at any value)",
        ),
        CliOption(
            "--faults",
            "faults",
            str,
            "calm",
            "fault plan: preset name (calm, churn, flaky, partition, blackout, "
            "chaos-mix) or a JSON plan file",
        ),
        CliOption(
            "--arrivals",
            "arrivals",
            str,
            "uniform",
            "send-time process: uniform ramp or flash-crowd "
            "(repro.scenarios.arrivals burst)",
        ),
    ),
)
def run(
    seed: int = DEFAULT_SEED,
    viewers: int = 5_000,
    datagrams: int = 25_000,
    shard_workers: int = 1,
    faults: str = "calm",
    arrivals: str = "uniform",
    locality: float = 0.95,
    horizon: float = 60.0,
) -> SwarmScaleResult:
    """Run the sharded swarm and fold the shards into one result."""
    workload = SwarmWorkload(
        viewers=viewers,
        datagrams=datagrams,
        seed=seed,
        locality=locality,
        arrivals=arrivals,
        faults=faults,
        horizon=horizon,
    )
    plan = build_fault_plan(workload)
    report = run_workload(workload, shard_workers)
    return SwarmScaleResult(
        viewers=viewers,
        datagrams=datagrams,
        arrivals=arrivals,
        plan_name=plan.name,
        plan_digest=plan.digest(),
        swarm_digest=report.digest,
        sent=report.totals["sent"],
        delivered=report.totals["delivered"],
        dropped=report.totals["dropped"],
        in_flight=report.totals["in_flight"],
        host_checksum=report.host_checksum,
        drops_by_reason=report.drops_by_reason,
        per_region=report.per_region,
        shard_workers=report.workers,
        mode=report.mode,
        windows=report.windows,
        events_fired=report.events_fired,
    )
