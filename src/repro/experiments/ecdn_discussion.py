"""§VI Discussion: do the risks survive in Microsoft eCDN?

Paper findings reproduced here:

- **free riding prevented** — the tenant id is not publicly visible, so
  there is nothing to scrape and a guessed credential is rejected;
- **direct content pollution**: no (sustained) peer connection observed;
- **video segment pollution**: still works — polluted segments flow from
  the malicious silent peer to the victim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.free_riding import ApiKeyProbe
from repro.attacks.pollution import DirectContentPollutionTest, VideoSegmentPollutionTest
from repro.core.analyzer import PdnAnalyzer
from repro.detection.signatures import extract_api_keys
from repro.environment import Environment
from repro.harness.registry import experiment
from repro.harness.result import ResultBase
from repro.pdn.ecdn import build_ecdn_test_bed, tenant_id_exposed
from repro.streaming.http import HttpClient
from repro.util.tables import render_kv


@dataclass
class EcdnResult(ResultBase):
    """§VI: which PDN risks survive in Microsoft eCDN."""
    tenant_id_in_page: bool
    keys_scraped: int
    guessed_key_accepted: bool
    direct_pollution_triggered: bool
    segment_pollution_triggered: bool
    segment_pollution_polluted_played: int

    @property
    def free_riding_prevented(self) -> bool:
        """True when nothing scrapes and guessed credentials are rejected."""
        return not self.tenant_id_in_page and self.keys_scraped == 0 and not self.guessed_key_accepted

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        return render_kv(
            "§VI Microsoft eCDN (paper findings in parentheses)",
            [
                ("tenant id visible in page (no)", self.tenant_id_in_page),
                ("API keys scraped from page (0)", self.keys_scraped),
                ("guessed credential accepted (no)", self.guessed_key_accepted),
                ("free riding prevented (yes)", self.free_riding_prevented),
                ("direct pollution succeeded (no)", self.direct_pollution_triggered),
                ("segment pollution succeeded (yes)", self.segment_pollution_triggered),
                ("polluted segments played", self.segment_pollution_polluted_played),
            ],
        )


@experiment(
    "ecdn",
    help="§VI: Microsoft eCDN discussion",
    paper_ref="§VI",
    order=120,
)
def run(seed: int = 606) -> EcdnResult:
    # Free-riding surface: scrape the page, then probe a guessed key.
    """Run the §VI eCDN checks and return the findings."""
    env = Environment(seed=seed)
    bed = build_ecdn_test_bed(env)
    html = HttpClient(env.urlspace).get(f"https://{bed.site.domain}/").body.decode()
    exposed = tenant_id_exposed(bed, html)
    scraped = extract_api_keys(html)
    guessed_ok, _ = ApiKeyProbe(env, bed.provider).probe("0123456789abcdef0123")

    # Content integrity against the silent simulator.
    env2 = Environment(seed=seed + 1)
    bed2 = build_ecdn_test_bed(env2)
    analyzer = PdnAnalyzer(env2)
    direct = analyzer.run_test(DirectContentPollutionTest(bed2))
    analyzer.teardown()

    env3 = Environment(seed=seed + 2)
    bed3 = build_ecdn_test_bed(env3)
    analyzer = PdnAnalyzer(env3)
    segment = analyzer.run_test(VideoSegmentPollutionTest(bed3))
    analyzer.teardown()

    return EcdnResult(
        tenant_id_in_page=exposed,
        keys_scraped=len(scraped),
        guessed_key_accepted=guessed_ok,
        direct_pollution_triggered=direct.verdicts[0].triggered,
        segment_pollution_triggered=segment.verdicts[0].triggered,
        segment_pollution_polluted_played=segment.verdicts[0].details["polluted_played"],
    )
