"""Tables I–IV: the detection pipeline's outputs.

Runs the full §III-C methodology over the seeded corpus and formats the
four tables the paper reports. Paper values are embedded for
side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.pipeline import DetectionPipeline, PipelineReport
from repro.environment import Environment
from repro.util.tables import render_table
from repro.web.corpus import (
    CONFIRMED_APPS,
    CONFIRMED_WEBSITES,
    PRIVATE_SERVICES,
    Corpus,
    CorpusConfig,
    build_corpus,
)

PAPER_TABLE1 = {
    "peer5": {"sites": (16, 60), "apps": (15, 31), "apks": (199, 548)},
    "streamroot": {"sites": (1, 53), "apps": (3, 6), "apks": (53, 68)},
    "viblast": {"sites": (0, 21), "apps": (0, 1), "apks": (0, 11)},
}


@dataclass
class DetectionTablesResult:
    """DetectionTablesResult."""
    report: PipelineReport
    corpus: Corpus

    # -- Table I ---------------------------------------------------------

    def table1_rows(self) -> list[list]:
        """Table1 rows."""
        rows = []
        totals = [0] * 6
        for provider in ("peer5", "streamroot", "viblast"):
            counts = self.report.provider_counts(provider)
            row = [
                provider,
                f"{counts.confirmed_sites}/{counts.potential_sites}",
                f"{counts.confirmed_apps}/{counts.potential_apps}",
                f"{counts.confirmed_apks}/{counts.potential_apks}",
            ]
            paper = PAPER_TABLE1[provider]
            row.append(
                f"{paper['sites'][0]}/{paper['sites'][1]} | "
                f"{paper['apps'][0]}/{paper['apps'][1]} | "
                f"{paper['apks'][0]}/{paper['apks'][1]}"
            )
            rows.append(row)
            for i, value in enumerate(
                [
                    counts.confirmed_sites,
                    counts.potential_sites,
                    counts.confirmed_apps,
                    counts.potential_apps,
                    counts.confirmed_apks,
                    counts.potential_apks,
                ]
            ):
                totals[i] += value
        rows.append(
            [
                "Total",
                f"{totals[0]}/{totals[1]}",
                f"{totals[2]}/{totals[3]}",
                f"{totals[4]}/{totals[5]}",
                "17/134 | 18/38 | 252/627",
            ]
        )
        return rows

    def render_table1(self) -> str:
        """Render table1."""
        return render_table(
            ["provider", "websites (conf/pot)", "apps", "APKs", "paper"],
            self.table1_rows(),
            title="Table I: Detected PDN customers",
        )

    # -- Table II --------------------------------------------------------

    def table2_rows(self) -> list[list]:
        """Table2 rows."""
        confirmed = set(self.report.confirmed_sites())
        rows = []
        for domain, provider, visits in CONFIRMED_WEBSITES:
            rows.append(
                [
                    domain,
                    provider,
                    _visits(visits),
                    "confirmed" if domain in confirmed else "MISSED",
                ]
            )
        extra = confirmed - {d for d, _, _ in CONFIRMED_WEBSITES}
        for domain in sorted(extra):
            rows.append([domain, "?", "-", "FALSE POSITIVE"])
        return rows

    def render_table2(self) -> str:
        """Render table2."""
        return render_table(
            ["PDN website", "provider", "monthly visits", "status"],
            self.table2_rows(),
            title="Table II: Confirmed PDN websites",
        )

    # -- Table III -------------------------------------------------------

    def table3_rows(self) -> list[list]:
        """Table3 rows."""
        confirmed = set(self.report.confirmed_apps())
        rows = []
        for package, provider, downloads in CONFIRMED_APPS:
            rows.append(
                [
                    package,
                    provider,
                    _visits(downloads),
                    "confirmed" if package in confirmed else "MISSED",
                ]
            )
        return rows

    def render_table3(self) -> str:
        """Render table3."""
        return render_table(
            ["PDN app", "provider", "downloads", "status"],
            self.table3_rows(),
            title="Table III: Confirmed PDN apps",
        )

    # -- Table IV --------------------------------------------------------

    def table4_rows(self) -> list[list]:
        """Table4 rows."""
        confirmed = set(self.report.confirmed_private())
        rows = []
        for domain, signaling, visits in PRIVATE_SERVICES:
            rows.append(
                [
                    domain,
                    signaling,
                    _visits(visits),
                    "confirmed" if domain in confirmed else "MISSED",
                ]
            )
        return rows

    def render_table4(self) -> str:
        """Render table4."""
        return render_table(
            ["PDN website", "PDN server", "monthly visits", "status"],
            self.table4_rows(),
            title="Table IV: Confirmed private PDN services",
        )

    def render_all(self) -> str:
        """Render all."""
        header = (
            f"Corpus: {self.report.virtual_total_domains} domains "
            f"({self.report.virtual_video_related} video-related, virtual), "
            f"{self.report.video_related_scanned} sites materialised+scanned, "
            f"{len(self.report.extracted_keys)} API keys extracted, "
            f"relay platforms: {', '.join(self.report.relay_sites) or 'none'}"
        )
        return "\n\n".join(
            [header, self.render_table1(), self.render_table2(), self.render_table3(), self.render_table4()]
        )


def _visits(value: int | None) -> str:
    if value is None:
        return "-"
    if value >= 1_000_000:
        return f"{value / 1_000_000:.0f}M"
    return f"{value / 1_000:.0f}K"


def run(
    seed: int = 2024,
    config: CorpusConfig | None = None,
    watch_seconds: float = 30.0,
) -> DetectionTablesResult:
    """Build the corpus, run the pipeline, return the four tables."""
    env = Environment(seed=seed)
    corpus = build_corpus(env, config)
    pipeline = DetectionPipeline(env, corpus, watch_seconds=watch_seconds)
    report = pipeline.run()
    return DetectionTablesResult(report=report, corpus=corpus)
