"""Tables I–IV: the detection pipeline's outputs.

Runs the full §III-C methodology over the seeded corpus and formats the
four tables the paper reports. Paper values are embedded for
side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.pipeline import PipelineReport
from repro.detection.streaming import StreamingDetectionPipeline
from repro.harness.registry import CliOption, experiment
from repro.harness.result import ResultBase
from repro.util.tables import fmt_count, render_table
from repro.web.corpus import (
    CONFIRMED_APPS,
    CONFIRMED_WEBSITES,
    PRIVATE_SERVICES,
    Corpus,
    CorpusConfig,
    quick_corpus_config,
)

#: The sharding/resume options both detection experiments expose.
STREAMING_OPTIONS = (
    CliOption("--shards", "shards", int, 1, "split the corpus scan into N strided shards"),
    CliOption("--scan-jobs", "scan_jobs", int, 1, "scan shards across a process pool this wide"),
    CliOption("--resume", "resume", str, None, "persist completed shards under DIR; skip them on re-run"),
)

PAPER_TABLE1 = {
    "peer5": {"sites": (16, 60), "apps": (15, 31), "apks": (199, 548)},
    "streamroot": {"sites": (1, 53), "apps": (3, 6), "apks": (53, 68)},
    "viblast": {"sites": (0, 21), "apps": (0, 1), "apks": (0, 11)},
}


@dataclass
class DetectionTablesResult(ResultBase):
    """Tables I–IV plus the pipeline report and corpus they came from."""
    report: PipelineReport
    corpus: Corpus

    _serialize_exclude = ("report", "corpus")

    # -- Table I ---------------------------------------------------------

    def table1_rows(self) -> list[list]:
        """Table I rows: per-provider confirmed/potential counts + totals."""
        rows = []
        totals = [0] * 6
        for provider in ("peer5", "streamroot", "viblast"):
            counts = self.report.provider_counts(provider)
            row = [
                provider,
                f"{counts.confirmed_sites}/{counts.potential_sites}",
                f"{counts.confirmed_apps}/{counts.potential_apps}",
                f"{counts.confirmed_apks}/{counts.potential_apks}",
            ]
            paper = PAPER_TABLE1[provider]
            row.append(
                f"{paper['sites'][0]}/{paper['sites'][1]} | "
                f"{paper['apps'][0]}/{paper['apps'][1]} | "
                f"{paper['apks'][0]}/{paper['apks'][1]}"
            )
            rows.append(row)
            for i, value in enumerate(
                [
                    counts.confirmed_sites,
                    counts.potential_sites,
                    counts.confirmed_apps,
                    counts.potential_apps,
                    counts.confirmed_apks,
                    counts.potential_apks,
                ]
            ):
                totals[i] += value
        rows.append(
            [
                "Total",
                f"{totals[0]}/{totals[1]}",
                f"{totals[2]}/{totals[3]}",
                f"{totals[4]}/{totals[5]}",
                "17/134 | 18/38 | 252/627",
            ]
        )
        return rows

    def render_table1(self) -> str:
        """Table I as an aligned text table with the paper column."""
        return render_table(
            ["provider", "websites (conf/pot)", "apps", "APKs", "paper"],
            self.table1_rows(),
            title="Table I: Detected PDN customers",
        )

    # -- Table II --------------------------------------------------------

    def table2_rows(self) -> list[list]:
        """Table II rows: every confirmed website's detection status."""
        confirmed = set(self.report.confirmed_sites())
        rows = []
        for domain, provider, visits in CONFIRMED_WEBSITES:
            rows.append(
                [
                    domain,
                    provider,
                    fmt_count(visits),
                    "confirmed" if domain in confirmed else "MISSED",
                ]
            )
        extra = confirmed - {d for d, _, _ in CONFIRMED_WEBSITES}
        for domain in sorted(extra):
            rows.append([domain, "?", "-", "FALSE POSITIVE"])
        return rows

    def render_table2(self) -> str:
        """Table II as an aligned text table."""
        return render_table(
            ["PDN website", "provider", "monthly visits", "status"],
            self.table2_rows(),
            title="Table II: Confirmed PDN websites",
        )

    # -- Table III -------------------------------------------------------

    def table3_rows(self) -> list[list]:
        """Table III rows: every confirmed app's detection status."""
        confirmed = set(self.report.confirmed_apps())
        rows = []
        for package, provider, downloads in CONFIRMED_APPS:
            rows.append(
                [
                    package,
                    provider,
                    fmt_count(downloads),
                    "confirmed" if package in confirmed else "MISSED",
                ]
            )
        return rows

    def render_table3(self) -> str:
        """Table III as an aligned text table."""
        return render_table(
            ["PDN app", "provider", "downloads", "status"],
            self.table3_rows(),
            title="Table III: Confirmed PDN apps",
        )

    # -- Table IV --------------------------------------------------------

    def table4_rows(self) -> list[list]:
        """Table IV rows: private PDN services and their status."""
        confirmed = set(self.report.confirmed_private())
        rows = []
        for domain, signaling, visits in PRIVATE_SERVICES:
            rows.append(
                [
                    domain,
                    signaling,
                    fmt_count(visits),
                    "confirmed" if domain in confirmed else "MISSED",
                ]
            )
        return rows

    def render_table4(self) -> str:
        """Table IV as an aligned text table."""
        return render_table(
            ["PDN website", "PDN server", "monthly visits", "status"],
            self.table4_rows(),
            title="Table IV: Confirmed private PDN services",
        )

    def render_all(self) -> str:
        """The corpus header plus all four tables, paper order."""
        header = (
            f"Corpus: {self.report.virtual_total_domains} domains "
            f"({self.report.virtual_video_related} video-related, virtual), "
            f"{self.report.video_related_scanned} sites materialised+scanned, "
            f"{len(self.report.extracted_keys)} API keys extracted, "
            f"relay platforms: {', '.join(self.report.relay_sites) or 'none'}"
        )
        return "\n\n".join(
            [header, self.render_table1(), self.render_table2(), self.render_table3(), self.render_table4()]
        )

    def render(self) -> str:
        """Alias for :meth:`render_all`, satisfying the Result protocol."""
        return self.render_all()

    def to_dict(self) -> dict:
        """Export the corpus header figures and all four tables' rows."""
        return {
            "corpus": {
                "virtual_total_domains": self.report.virtual_total_domains,
                "virtual_video_related": self.report.virtual_video_related,
                "video_related_scanned": self.report.video_related_scanned,
                "extracted_keys": sorted(self.report.extracted_keys),
                "relay_sites": list(self.report.relay_sites),
            },
            "table1": self.table1_rows(),
            "table2": self.table2_rows(),
            "table3": self.table3_rows(),
            "table4": self.table4_rows(),
        }


@experiment(
    "detect",
    help="Tables I-IV: the PDN customer detection pipeline",
    paper_ref="Tables I-IV",
    order=10,
    quick_params={"config": quick_corpus_config(), "watch_seconds": 25.0},
    options=STREAMING_OPTIONS,
)
def run(
    seed: int = 2024,
    config: CorpusConfig | None = None,
    watch_seconds: float = 30.0,
    shards: int = 1,
    scan_jobs: int = 1,
    resume: str | None = None,
) -> DetectionTablesResult:
    """Stream the corpus through the pipeline, return the four tables.

    The streaming driver produces reports bit-identical to the old
    monolithic walk at any ``shards``/``scan_jobs`` decomposition, so
    the tables (and the experiment digest) do not depend on how the
    scan was split.
    """
    pipeline = StreamingDetectionPipeline(
        seed=seed,
        config=config,
        shards=shards,
        scan_jobs=scan_jobs,
        resume_dir=resume,
        watch_seconds=watch_seconds,
    )
    outcome = pipeline.run()
    return DetectionTablesResult(report=outcome.report, corpus=outcome.corpus)
