"""Table VI: overhead of peer-assisted integrity (IM) checking.

Three control groups, as in §V-B's evaluation: 6 peers each (3 senders,
3 receivers), each receiver streaming 10-second segments for the
experiment duration:

1. plain CDN streaming (no PDN) — the normalisation baseline;
2. PDN delivery, no IM checking;
3. PDN delivery with IM calculation (senders) and verification
   (receivers).

Reported: relative CPU and memory (receivers' means, normalised to
group 1) and the mean segment delivery latency (:math:`T_{recv} -
T_{send}`). Paper: CPU 1 / 1.11 / 1.14, memory 1 / 1.21 / 1.24, latency
67 ms / 140 ms for 3 MB segments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.defenses.integrity import ClientIntegrity, IntegrityCoordinator
from repro.environment import Environment
from repro.harness.registry import experiment
from repro.harness.result import ResultBase
from repro.pdn.provider import PEER5
from repro.util.tables import render_table
from repro.web.page import WebPage, Website

PAPER_ROWS = [
    ("no PDN, no IM", 1.00, 1.00, None),
    ("PDN, no IM", 1.11, 1.21, 67.0),
    ("PDN + IM checking", 1.14, 1.24, 140.0),
]


@dataclass
class GroupMeasurement:
    """One control group's mean CPU/memory, delivery latency, and stalls."""
    label: str
    cpu: float
    memory: float
    latency_ms: float | None
    stalls: int


@dataclass
class ImCheckingResult(ResultBase):
    """Table VI: the three control groups' measurements."""
    groups: list[GroupMeasurement]

    def normalised_rows(self) -> list[list]:
        """Rows normalised to the no-PDN group, with the paper column."""
        base_cpu = self.groups[0].cpu or 1.0
        base_mem = self.groups[0].memory or 1.0
        rows = []
        for group, (label, p_cpu, p_mem, p_lat) in zip(self.groups, PAPER_ROWS):
            rows.append(
                [
                    label,
                    f"{group.cpu / base_cpu:.2f}",
                    f"{group.memory / base_mem:.2f}",
                    "-" if group.latency_ms is None else f"{group.latency_ms:.0f}ms",
                    f"{p_cpu:.2f} | {p_mem:.2f} | " + ("-" if p_lat is None else f"{p_lat:.0f}ms"),
                ]
            )
        return rows

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        return render_table(
            ["group", "CPU", "memory", "latency", "paper (cpu|mem|latency)"],
            self.normalised_rows(),
            title="Table VI: Evaluation for IM checking",
        )

    def latency_delta_ms(self) -> float | None:
        """IM checking's added delivery latency (group 3 minus group 2)."""
        with_im = self.groups[2].latency_ms
        without = self.groups[1].latency_ms
        if with_im is None or without is None:
            return None
        return with_im - without


@experiment(
    "im-checking",
    help="Table VI: IM-checking overhead",
    paper_ref="Table VI",
    order=110,
    defaults={"duration": 200.0},
    full_params={"duration": 600.0},
    quick_params={"duration": 40.0},
)
def run(
    seed: int = 66,
    segment_bytes: int = 3_000_000,
    segment_seconds: float = 10.0,
    duration: float = 600.0,
    senders: int = 3,
    receivers: int = 3,
    quorum: int = 2,
) -> ImCheckingResult:
    """Run the three control groups and report Table VI."""
    groups = [
        _run_group(seed + 1, "no PDN", False, False, segment_bytes, segment_seconds, duration, senders, receivers, quorum),
        _run_group(seed + 2, "PDN", True, False, segment_bytes, segment_seconds, duration, senders, receivers, quorum),
        _run_group(seed + 3, "PDN+IM", True, True, segment_bytes, segment_seconds, duration, senders, receivers, quorum),
    ]
    return ImCheckingResult(groups)


def _run_group(
    seed: int,
    label: str,
    pdn: bool,
    im_checking: bool,
    segment_bytes: int,
    segment_seconds: float,
    duration: float,
    senders: int,
    receivers: int,
    quorum: int,
) -> GroupMeasurement:
    env = Environment(seed=seed)
    # The paper's peers sit on residential links; ~30 ms one-way puts the
    # no-IM delivery latency near their 67 ms measurement.
    env.network.base_latency = 0.03
    num_segments = max(3, int(duration / segment_seconds))
    bed = build_test_bed(
        env,
        PEER5,
        video_segments=num_segments,
        segment_seconds=segment_seconds,
        segment_bytes=segment_bytes,
    )
    integrity = None
    if im_checking:
        coordinator = IntegrityCoordinator(
            env.loop, env.rand.fork("im"), bed.provider, env.urlspace, quorum=quorum
        ).install()
        integrity = ClientIntegrity(env.loop, coordinator)

    # A plain CDN-only mirror of the page for the no-PDN group.
    baseline = Website(f"plain.{bed.site.domain}", category="video")
    baseline.add_page(WebPage("/", "plain", has_video=True, video_url=bed.video_url))
    env.urlspace.register(baseline.domain, baseline)

    analyzer = PdnAnalyzer(env)
    url = f"https://{bed.site.domain}/" if pdn else f"https://{baseline.domain}/"

    sender_peers = []
    if pdn:
        for i in range(senders):
            peer = analyzer.create_peer(name=f"sender-{i}", integrity=integrity)
            peer.open(url)
            sender_peers.append(peer)
        analyzer.run(2 * segment_seconds)  # senders get ahead of receivers

    receiver_peers = []
    windows = []
    for i in range(receivers):
        peer = analyzer.create_peer(name=f"receiver-{i}", integrity=integrity)
        start = env.loop.now
        peer.open(url)
        windows.append((start, start + duration))
        receiver_peers.append(peer)
    analyzer.run(duration + 4 * segment_seconds)

    cpus, mems, latencies, stalls = [], [], [], 0
    for peer, (t0, t1) in zip(receiver_peers, windows):
        cpus.append(peer.monitor.cpu.mean_between(t0, t1))
        mems.append(peer.monitor.memory.mean_between(t0, t1))
        if peer.session is not None and peer.session.sdk is not None:
            latencies.extend(peer.session.sdk.stats.p2p_latencies)
        if peer.session is not None and peer.session.player is not None:
            stalls += peer.session.player.stats.stalls
    analyzer.teardown()

    latency_ms = (sum(latencies) / len(latencies) * 1000.0) if latencies else None
    return GroupMeasurement(
        label=label,
        cpu=sum(cpus) / len(cpus),
        memory=sum(mems) / len(mems),
        latency_ms=latency_ms,
        stalls=stalls,
    )
