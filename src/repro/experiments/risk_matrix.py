"""Table V: the security & privacy risk matrix.

For every public provider profile (and a Mango-TV-style private
service), run the full battery through the PDN analyzer:

- peer authentication: cross-domain (reported as vulnerable-keys/valid-
  keys from the in-the-wild probe) and domain spoofing;
- content integrity: direct content pollution and video segment
  pollution;
- peer privacy: IP leak and resource squatting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.free_riding import DomainSpoofingAttackTest
from repro.attacks.harvesting import IpLeakTest
from repro.attacks.pollution import DirectContentPollutionTest, VideoSegmentPollutionTest
from repro.attacks.squatting import ResourceSquattingTest
from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.experiments import free_riding_wild
from repro.harness.registry import experiment
from repro.harness.result import ResultBase
from repro.pdn.provider import PEER5, STREAMROOT, VIBLAST, private_profile
from repro.util.tables import render_table

PAPER_MATRIX = {
    "cross_domain": {"peer5": "11/36", "streamroot": "0/1", "viblast": "0/3", "private": "vuln"},
    "domain_spoofing": {"peer5": "vuln", "streamroot": "vuln", "viblast": "vuln", "private": "vuln"},
    "direct_pollution": {"peer5": "safe", "streamroot": "safe", "viblast": "safe", "private": "safe"},
    "segment_pollution": {"peer5": "vuln", "streamroot": "vuln", "viblast": "vuln", "private": "blocked (DRM)"},
    "ip_leak": {"peer5": "vuln", "streamroot": "vuln", "viblast": "vuln", "private": "vuln"},
    "resource_squatting": {"peer5": "vuln", "streamroot": "vuln", "viblast": "vuln", "private": "vuln"},
}

_RISK_LABELS = [
    ("cross_domain", "cross-domain attack"),
    ("domain_spoofing", "domain-spoofing attack"),
    ("direct_pollution", "direct content pollution"),
    ("segment_pollution", "video segment pollution"),
    ("ip_leak", "IP leak"),
    ("resource_squatting", "resource squatting"),
]


@dataclass
class RiskMatrixResult(ResultBase):
    """Table V's cells (risk x provider) plus per-cell evidence details."""
    cells: dict[str, dict[str, str]] = field(default_factory=dict)
    details: dict[str, dict[str, dict]] = field(default_factory=dict)

    def set(self, risk: str, provider: str, value: str, detail: dict | None = None) -> None:
        """Record one matrix cell, optionally with its evidence detail."""
        self.cells.setdefault(risk, {})[provider] = value
        if detail is not None:
            self.details.setdefault(risk, {})[provider] = detail

    def rows(self) -> list[list[str]]:
        """The table rows for rendering."""
        providers = ["peer5", "streamroot", "viblast", "private"]
        rows = []
        for risk, label in _RISK_LABELS:
            row = [label]
            for provider in providers:
                measured = self.cells.get(risk, {}).get(provider, "?")
                row.append(measured)
            row.append(" | ".join(PAPER_MATRIX[risk][p] for p in providers))
            rows.append(row)
        return rows

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        return render_table(
            ["risk", "peer5", "streamroot", "viblast", "private", "paper (p5|sr|vb|priv)"],
            self.rows(),
            title="Table V: Security and privacy risks of PDN services",
        )


def _mark(triggered: bool) -> str:
    return "vuln" if triggered else "safe"


@experiment(
    "risk-matrix",
    help="Table V: the security & privacy risk matrix",
    paper_ref="Table V",
    order=40,
    defaults={"quick": True},
    full_params={"quick": False},
)
def run(seed: int = 5150, quick: bool = False) -> RiskMatrixResult:
    """Run the whole matrix. ``quick`` shrinks watch times for tests."""
    result = RiskMatrixResult()
    watch = 40.0 if quick else 80.0

    # Row 1: cross-domain, from the in-the-wild key probe.
    key_stats = free_riding_wild.run(seed=seed)
    for provider in ("peer5", "streamroot", "viblast"):
        vulnerable, total = key_stats.cross_domain_vulnerable(provider)
        result.set("cross_domain", provider, f"{vulnerable}/{total}")

    profiles = [PEER5, STREAMROOT, VIBLAST]
    for profile in profiles:
        name = profile.name

        env = Environment(seed=seed + 1)
        bed = build_test_bed(env, profile)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(DomainSpoofingAttackTest(bed, watch=watch))
        result.set("domain_spoofing", name, _mark(report.any_triggered), report.verdicts[0].details)
        analyzer.teardown()

        env = Environment(seed=seed + 2)
        bed = build_test_bed(env, profile)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(DirectContentPollutionTest(bed, watch=watch))
        result.set("direct_pollution", name, _mark(report.any_triggered), report.verdicts[0].details)
        analyzer.teardown()

        env = Environment(seed=seed + 3)
        bed = build_test_bed(env, profile)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(VideoSegmentPollutionTest(bed, watch=watch))
        result.set("segment_pollution", name, _mark(report.any_triggered), report.verdicts[0].details)
        analyzer.teardown()

        env = Environment(seed=seed + 4)
        bed = build_test_bed(env, profile)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(IpLeakTest(bed, watch=30.0))
        result.set("ip_leak", name, _mark(report.any_triggered), report.verdicts[0].details)
        analyzer.teardown()

        env = Environment(seed=seed + 5)
        bed = build_test_bed(env, profile, segment_bytes=1_000_000)
        analyzer = PdnAnalyzer(env)
        report = analyzer.run_test(ResourceSquattingTest(bed, watch=45.0))
        result.set("resource_squatting", name, _mark(report.any_triggered), report.verdicts[0].details)
        analyzer.teardown()

    _run_private_column(result, seed, watch)
    return result


def _run_private_column(result: RiskMatrixResult, seed: int, watch: float) -> None:
    """The Mango-TV-style hooked private SDK, integrated on our test site."""
    profile = private_profile("mgtv.example", "signal.mgtv.example", video_bound_tokens=False)

    # Free riding: the hooked SDK joins from our own site with a token the
    # platform minted for *its* video — unbound tokens accept it anyway.
    env = Environment(seed=seed + 6)
    bed = build_test_bed(env, profile)
    from repro.web.browser import Browser

    viewer = Browser(env, "hooked-viewer")
    session = viewer.open(f"https://{bed.site.domain}/")
    env.run(20.0)
    result.set(
        "cross_domain",
        "private",
        _mark(session.pdn_loaded),
        {"joined": session.pdn_loaded, "reason": session.skip_reason},
    )
    result.set("domain_spoofing", "private", _mark(session.pdn_loaded))
    viewer.close()

    # Pollution: DRM-protected platform, custom source not registered.
    env = Environment(seed=seed + 7)
    bed = build_test_bed(env, profile)
    analyzer = PdnAnalyzer(env)
    report = analyzer.run_test(DirectContentPollutionTest(bed, watch=watch))
    result.set("direct_pollution", "private", _mark(report.any_triggered))
    analyzer.teardown()

    env = Environment(seed=seed + 8)
    bed = build_test_bed(env, profile)
    analyzer = PdnAnalyzer(env)
    report = analyzer.run_test(VideoSegmentPollutionTest(bed, watch=watch))
    detail = report.verdicts[0].details
    transmitted = detail.get("victim_p2p_bytes", 0) > 0
    if report.any_triggered:
        cell = "vuln"
    elif transmitted:
        cell = "blocked (DRM)"  # DTLS transfer observed, never played
    else:
        cell = "safe"
    result.set("segment_pollution", "private", cell, detail)
    analyzer.teardown()

    env = Environment(seed=seed + 9)
    bed = build_test_bed(env, profile)
    analyzer = PdnAnalyzer(env)
    report = analyzer.run_test(IpLeakTest(bed, watch=30.0))
    result.set("ip_leak", "private", _mark(report.any_triggered))
    analyzer.teardown()

    env = Environment(seed=seed + 10)
    bed = build_test_bed(env, profile, segment_bytes=1_000_000)
    analyzer = PdnAnalyzer(env)
    report = analyzer.run_test(ResourceSquattingTest(bed, watch=45.0))
    result.set("resource_squatting", "private", _mark(report.any_triggered))
    analyzer.teardown()
