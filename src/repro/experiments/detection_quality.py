"""Detector quality: precision/recall against corpus ground truth.

The paper can only report what its detector found; the simulation knows
the ground truth, so it can also score the methodology itself — which
§VI's limitations discuss qualitatively: signature scanning misses
dynamically-loaded embeds beyond the crawl depth, and dynamic analysis
misses geo-gated/subscription-gated customers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.streaming import StreamingDetectionPipeline
from repro.experiments.detection_tables import STREAMING_OPTIONS
from repro.harness.registry import experiment
from repro.harness.result import ResultBase
from repro.util.tables import render_table
from repro.web.corpus import Corpus, CorpusConfig, quick_corpus_config


@dataclass
class QualityRow:
    """One pipeline stage scored against the corpus ground truth."""
    stage: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when the stage flagged nothing."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there was nothing to find."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    def to_dict(self) -> dict:
        """The counts plus the derived precision/recall."""
        return {
            "stage": self.stage,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
        }


@dataclass
class DetectionQualityResult(ResultBase):
    """Precision/recall per detection stage vs ground truth."""
    rows: list[QualityRow]

    def row(self, stage: str) -> QualityRow:
        """Look up one stage's row by name (KeyError if absent)."""
        for row in self.rows:
            if row.stage == stage:
                return row
        raise KeyError(stage)

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        return render_table(
            ["stage", "TP", "FP", "FN", "precision", "recall"],
            [
                [r.stage, r.true_positives, r.false_positives, r.false_negatives,
                 f"{r.precision * 100:.0f}%", f"{r.recall * 100:.0f}%"]
                for r in self.rows
            ],
            title="Detector quality vs corpus ground truth",
        )


@experiment(
    "detection-quality",
    help="detector precision/recall vs ground truth",
    paper_ref="§III-C / §VI",
    order=20,
    quick_params={"config": quick_corpus_config()},
    options=STREAMING_OPTIONS,
)
def run(
    seed: int = 1101,
    config: CorpusConfig | None = None,
    shards: int = 1,
    scan_jobs: int = 1,
    resume: str | None = None,
) -> DetectionQualityResult:
    """Score the detector against the corpus ground truth."""
    outcome = StreamingDetectionPipeline(
        seed=seed, config=config, shards=shards, scan_jobs=scan_jobs,
        resume_dir=resume, watch_seconds=30.0,
    ).run()
    report, corpus = outcome.report, outcome.corpus

    rows = []
    # Stage 1: potential-customer detection (public providers), websites.
    truth_sites = {r.name for r in corpus.records if r.kind == "website"}
    found_sites = set(report.potential_sites())
    rows.append(_score("signature scan (websites)", found_sites, truth_sites))
    # Stage 1, apps.
    truth_apps = {r.name for r in corpus.records if r.kind == "app"}
    found_apps = set(report.potential_apps())
    rows.append(_score("signature scan (apps)", found_apps, truth_apps))
    # Stage 2: dynamic confirmation vs actually-active ground truth.
    truth_confirmed_sites = corpus.expected_confirmed("website")
    rows.append(
        _score("dynamic confirmation (websites)", set(report.confirmed_sites()), truth_confirmed_sites)
    )
    truth_confirmed_apps = corpus.expected_confirmed("app")
    rows.append(
        _score("dynamic confirmation (apps)", set(report.confirmed_apps()), truth_confirmed_apps)
    )
    # Private services.
    truth_private = corpus.expected_confirmed("private")
    rows.append(_score("private services", set(report.confirmed_private()), truth_private))
    return DetectionQualityResult(rows)


def _score(stage: str, found: set[str], truth: set[str]) -> QualityRow:
    return QualityRow(
        stage=stage,
        true_positives=len(found & truth),
        false_positives=len(found - truth),
        false_negatives=len(truth - found),
    )
