"""§IV-B in-the-wild free-riding study.

Extract API keys from the corpus the way the paper did (regex over
detected customers), then probe each extracted key — authentication
only, no data transfer — under the cross-domain and domain-spoofing
attacks. Paper numbers: 44 extracted, 40 valid, 4 expired; 11/36 Peer5
keys vulnerable cross-domain (0/1 Streamroot, 0/3 Viblast); 40/40
vulnerable to domain spoofing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.free_riding import ApiKeyProbe
from repro.detection.pipeline import DetectionPipeline
from repro.environment import Environment
from repro.harness.registry import experiment
from repro.harness.result import ResultBase
from repro.util.tables import render_kv, render_table
from repro.web.corpus import Corpus, CorpusConfig, build_corpus, quick_corpus_config

PAPER = {
    "extracted": 44,
    "valid": 40,
    "expired": 4,
    "cross_domain_vulnerable": {"peer5": (11, 36), "streamroot": (0, 1), "viblast": (0, 3)},
}


@dataclass
class KeyProbeOutcome:
    """One extracted API key's validity and attack susceptibility."""
    key: str
    provider: str
    owner_domain: str | None
    valid: bool
    cross_domain_ok: bool
    spoofing_ok: bool


@dataclass
class FreeRidingWildResult(ResultBase):
    """Every probed key's outcome, with the paper's summary views."""
    outcomes: list[KeyProbeOutcome] = field(default_factory=list)

    @property
    def extracted(self) -> int:
        """How many API keys the corpus scan extracted."""
        return len(self.outcomes)

    @property
    def valid(self) -> int:
        """Keys the provider still accepts."""
        return sum(1 for o in self.outcomes if o.valid)

    @property
    def expired(self) -> int:
        """Keys the provider has expired or revoked."""
        return self.extracted - self.valid

    def cross_domain_vulnerable(self, provider: str) -> tuple[int, int]:
        """(vulnerable, valid) cross-domain counts for one provider."""
        valid = [o for o in self.outcomes if o.provider == provider and o.valid]
        return sum(1 for o in valid if o.cross_domain_ok), len(valid)

    def spoofing_vulnerable(self) -> tuple[int, int]:
        """(vulnerable, valid) counts under domain spoofing, all providers."""
        valid = [o for o in self.outcomes if o.valid]
        return sum(1 for o in valid if o.spoofing_ok), len(valid)

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        rows = []
        for provider in ("peer5", "streamroot", "viblast"):
            vulnerable, total = self.cross_domain_vulnerable(provider)
            paper_v, paper_t = PAPER["cross_domain_vulnerable"][provider]
            rows.append([provider, f"{vulnerable}/{total}", f"{paper_v}/{paper_t}"])
        spoof_v, spoof_t = self.spoofing_vulnerable()
        summary = render_kv(
            "§IV-B free riding in the wild",
            [
                ("keys extracted (paper: 44)", self.extracted),
                ("valid (paper: 40)", self.valid),
                ("expired (paper: 4)", self.expired),
                (f"domain-spoofing vulnerable (paper: 40/40)", f"{spoof_v}/{spoof_t}"),
            ],
        )
        table = render_table(
            ["provider", "cross-domain vulnerable", "paper"],
            rows,
            title="Cross-domain attack on extracted keys",
        )
        return summary + "\n\n" + table


@experiment(
    "free-riding",
    help="§IV-B: in-the-wild API-key study",
    paper_ref="§IV-B",
    order=30,
    quick_params={"config": quick_corpus_config()},
)
def run(seed: int = 77, config: CorpusConfig | None = None) -> FreeRidingWildResult:
    """Scan the corpus for keys, then probe each one (auth only)."""
    env = Environment(seed=seed)
    corpus = build_corpus(env, config)
    # Signature scan only: key extraction needs no dynamic confirmation.
    pipeline = DetectionPipeline(env, corpus, confirm=False)
    report = pipeline.run()

    result = FreeRidingWildResult()
    for key in sorted(report.extracted_keys):
        provider_name, owner = _attribute_key(corpus, key)
        if provider_name is None:
            continue
        provider = corpus.providers[provider_name]
        probe = ApiKeyProbe(env, provider)
        cross_ok, _ = probe.probe(key)
        spoof_ok, _ = (
            probe.probe(key, spoof_domain=owner) if owner else (False, "no owner domain")
        )
        api_key = provider.authenticator.lookup(key)
        result.outcomes.append(
            KeyProbeOutcome(
                key=key,
                provider=provider_name,
                owner_domain=owner,
                valid=bool(api_key and api_key.active),
                cross_domain_ok=cross_ok,
                spoofing_ok=spoof_ok,
            )
        )
    return result


def _attribute_key(corpus: Corpus, key: str) -> tuple[str | None, str | None]:
    """Which provider issued this key, and which customer owns it?"""
    for record in corpus.records:
        if record.api_key == key:
            return record.provider, record.name
    for name, provider in corpus.providers.items():
        if provider.authenticator.lookup(key) is not None:
            return name, None
    return None, None
