"""Fig. 4: resource consumption of serving as a PDN peer.

Three viewers on the same content: *no peer* (plain CDN), *Peer A*
(first PDN viewer, ends up seeding), *Peer B* (joins later, leeches).
Per-second CPU, memory, and network I/O are sampled Docker-stats style.
Paper: PDN peers cost ≈ +15% CPU and ≈ +10% memory over the no-peer
baseline, with the cost concentrated in DTLS encryption/decryption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import PdnAnalyzer
from repro.core.testbed import build_test_bed
from repro.environment import Environment
from repro.harness.registry import experiment
from repro.harness.result import ResultBase
from repro.pdn.provider import PEER5, ProviderProfile
from repro.util.tables import fmt_mb, render_kv, render_table
from repro.web.page import WebPage, Website

PAPER = {"cpu_overhead": 0.15, "memory_overhead": 0.10}


@dataclass
class ViewerSeries:
    """One viewer's sampled resource series and I/O totals."""
    name: str
    cpu_mean: float
    memory_mean: float
    downloaded_bytes: float
    uploaded_bytes: float
    cpu_series: list[tuple[float, float]]
    memory_series: list[tuple[float, float]]


@dataclass
class Fig4Result(ResultBase):
    """Fig. 4: per-viewer resource series and the PDN overhead summary."""
    viewers: dict[str, ViewerSeries]

    @property
    def cpu_overhead(self) -> float:
        """Mean PDN-peer CPU relative to the no-peer baseline, minus 1."""
        base = self.viewers["no-peer"].cpu_mean
        pdn = (self.viewers["peer-a"].cpu_mean + self.viewers["peer-b"].cpu_mean) / 2
        return pdn / base - 1.0 if base else 0.0

    @property
    def memory_overhead(self) -> float:
        """Mean PDN-peer memory relative to the no-peer baseline, minus 1."""
        base = self.viewers["no-peer"].memory_mean
        pdn = (self.viewers["peer-a"].memory_mean + self.viewers["peer-b"].memory_mean) / 2
        return pdn / base - 1.0 if base else 0.0

    def rows(self) -> list[list]:
        """The table rows for rendering."""
        return [
            [
                v.name,
                f"{v.cpu_mean:.1f}%",
                f"{v.memory_mean:.0f}MB",
                fmt_mb(v.downloaded_bytes),
                fmt_mb(v.uploaded_bytes),
            ]
            for v in self.viewers.values()
        ]

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        table = render_table(
            ["viewer", "mean CPU", "mean memory", "downloaded", "uploaded"],
            self.rows(),
            title="Fig. 4: Resource consumption of serving as a PDN peer",
        )
        summary = render_kv(
            "overheads vs no-peer",
            [
                ("CPU overhead (paper ~ +15%)", f"+{self.cpu_overhead * 100:.1f}%"),
                ("memory overhead (paper ~ +10%)", f"+{self.memory_overhead * 100:.1f}%"),
            ],
        )
        return table + "\n\n" + summary


@experiment(
    "resources",
    help="Fig. 4: PDN peer resource consumption",
    paper_ref="Fig. 4",
    order=50,
    quick_params={"segments": 6},
)
def run(
    seed: int = 44,
    profile: ProviderProfile = PEER5,
    segment_bytes: int = 1_000_000,
    segment_seconds: float = 4.0,
    segments: int = 12,
    stagger: float = 10.0,
) -> Fig4Result:
    """Measure Fig. 4's per-viewer resource series."""
    env = Environment(seed=seed)
    bed = build_test_bed(
        env,
        profile,
        video_segments=segments,
        segment_seconds=segment_seconds,
        segment_bytes=segment_bytes,
    )
    baseline = Website(f"baseline.{bed.site.domain}", category="video")
    baseline.add_page(WebPage("/", "baseline", has_video=True, video_url=bed.video_url))
    env.urlspace.register(baseline.domain, baseline)

    analyzer = PdnAnalyzer(env)
    duration = segments * segment_seconds

    windows: dict[str, tuple[float, float]] = {}
    no_peer = analyzer.create_peer(name="no-peer")
    windows["no-peer"] = (env.loop.now, env.loop.now + duration)
    no_peer.open(f"https://{baseline.domain}/")
    peer_a = analyzer.create_peer(name="peer-a")
    windows["peer-a"] = (env.loop.now, env.loop.now + duration)
    peer_a.watch_test_stream(bed)
    analyzer.run(stagger)
    peer_b = analyzer.create_peer(name="peer-b")
    windows["peer-b"] = (env.loop.now, env.loop.now + duration)
    peer_b.watch_test_stream(bed)
    analyzer.run(duration + stagger)

    viewers: dict[str, ViewerSeries] = {}
    for peer in (no_peer, peer_a, peer_b):
        t0, t1 = windows[peer.name]
        monitor = peer.monitor
        viewers[peer.name] = ViewerSeries(
            name=peer.name,
            cpu_mean=monitor.cpu.mean_between(t0, t1),
            memory_mean=monitor.memory.mean_between(t0, t1),
            downloaded_bytes=monitor.total_net_in(),
            uploaded_bytes=monitor.total_net_out(),
            cpu_series=list(monitor.cpu.points),
            memory_series=list(monitor.memory.points),
        )
    analyzer.teardown()
    return Fig4Result(viewers)
