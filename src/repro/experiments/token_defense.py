"""§V-A evaluation of the disposable video-binding token defense.

Checks, on a defended test bed:

- legitimate viewers still join (the defense is transparent);
- a stolen token cannot offload the attacker's own stream (video
  binding), cannot be replayed (usage limit), and expires (TTL);
- the Listing 1 token encodes to the paper's 283-byte JWT, an
  acceptable per-join transmission overhead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.testbed import build_test_bed
from repro.defenses.tokens import TokenIssuer, TokenValidator, VideoToken
from repro.defenses.jwtmin import jwt_encode
from repro.environment import Environment
from repro.harness.registry import experiment
from repro.harness.result import ResultBase
from repro.pdn.provider import PEER5
from repro.streaming.http import HttpClient
from repro.util.tables import render_kv
from repro.web.browser import Browser

PAPER_TOKEN_BYTES = 283


@dataclass
class TokenDefenseResult(ResultBase):
    """§V-A: what the token defense blocked, allowed, and cost."""
    listing1_bytes: int
    legit_join_ok: bool
    stolen_token_own_video_rejected: bool
    replay_rejected: bool
    expired_rejected: bool
    static_key_bytes: int
    per_join_overhead_bytes: int

    @property
    def defense_effective(self) -> bool:
        """All four properties hold: transparent, bound, single-use, expiring."""
        return (
            self.legit_join_ok
            and self.stolen_token_own_video_rejected
            and self.replay_rejected
            and self.expired_rejected
        )

    def render(self) -> str:
        """Render the result as the paper-style text block."""
        return render_kv(
            "§V-A disposable video-binding token defense",
            [
                ("Listing 1 JWT size (paper: 283 B)", f"{self.listing1_bytes} B"),
                ("legitimate viewer joins", self.legit_join_ok),
                ("stolen token on attacker video rejected", self.stolen_token_own_video_rejected),
                ("token replay rejected", self.replay_rejected),
                ("expired token rejected", self.expired_rejected),
                ("per-join overhead vs static key", f"+{self.per_join_overhead_bytes} B"),
                ("defense effective", self.defense_effective),
            ],
        )


def listing1_token_bytes(secret: bytes = b"listing1-secret") -> int:
    """Encode exactly the paper's Listing 1 token and measure it."""
    token = VideoToken(
        customer_id="xx.yy",
        pdn_peer_id="1",
        video_ids=("https://xx.yy/zz.m3u8", "https://xx.yy/hh.m3u8"),
        timestamp=1619814238,
        ttl=60,
        usage_limit=1,
    )
    return len(jwt_encode(token.to_payload(), secret).encode())


@experiment(
    "token-defense",
    help="§V-A: disposable video-binding tokens",
    paper_ref="§V-A",
    order=100,
)
def run(seed: int = 33) -> TokenDefenseResult:
    """Evaluate the token defense end to end."""
    env = Environment(seed=seed)
    bed = build_test_bed(env, PEER5)
    secret = env.rand.fork("token-secret").bytes(32)
    validator = TokenValidator(clock=lambda: env.loop.now)
    validator.register_customer(bed.customer_id, secret)
    bed.provider.token_defense = validator
    issuer = TokenIssuer(bed.customer_id, secret, clock=lambda: env.loop.now)
    bed.site.landing.embed.token_issuer = issuer

    viewer = Browser(env, "legit-viewer")
    session = viewer.open(f"https://{bed.site.domain}/")
    legit_ok = session.pdn_loaded
    viewer.close()

    signaling_url = f"https://{bed.provider.profile.signaling_host}/v2/join"
    attacker_http = HttpClient(env.urlspace, client_ip="198.51.100.66")

    def join(credential: str, video_url: str) -> bool:
        """POST a join to the signaling endpoint; True if accepted."""
        response = attacker_http.post(
            signaling_url,
            json.dumps({"credential": credential, "video_url": video_url}).encode(),
        )
        return response.ok

    stolen = issuer.issue([bed.video_url])
    own_video_ok = join(stolen, "https://attacker.example/own.m3u8")

    replay_token = issuer.issue([bed.video_url])
    first_ok = join(replay_token, bed.video_url)
    replay_ok = join(replay_token, bed.video_url)

    expiring = issuer.issue([bed.video_url], ttl=30)
    env.run(120.0)
    expired_ok = join(expiring, bed.video_url)

    token_bytes = listing1_token_bytes()
    key_bytes = len(bed.api_key.encode())
    return TokenDefenseResult(
        listing1_bytes=token_bytes,
        legit_join_ok=legit_ok,
        stolen_token_own_video_rejected=not own_video_ok,
        replay_rejected=first_ok and not replay_ok,
        expired_rejected=not expired_ok,
        static_key_bytes=key_bytes,
        per_join_overhead_bytes=token_bytes - key_bytes,
    )
