"""OAuth-style temporary tokens, and why they fail here (§V-A).

The paper considers OAuth as an alternative to persistent API keys:
temporary tokens reduce credential exposure, *but* "an attacker can
perform a man-in-the-middle attack to redirect viewers' requests to a
legitimate PDN customer and get valid tokens to access the PDN
service". Token binding doesn't help either, because it relies on
trusting the client — which a PDN peer is not.

This module implements exactly that strawman: an authorization server
minting short-lived bearer tokens to anyone who presents a request that
*appears* to come from the customer's page, and the MITM harvest that
defeats it. The contrast with :mod:`repro.defenses.tokens` is the point:
only binding the token to the *video content* removes the attacker's
economic incentive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.pdn.auth import _registrable_domain
from repro.util.rand import DeterministicRandom


@dataclass
class BearerToken:
    """BearerToken."""
    token: str
    customer_id: str
    issued_at: float
    ttl: float


class OAuthAuthorizationServer:
    """Issues short-lived bearer tokens for a customer's viewers.

    The grant check is the same Origin-based heuristic the static-key
    allowlists use — because the authorization request originates from
    an untrusted browser, there is nothing stronger available.
    """

    def __init__(self, clock: Callable[[], float], rand: DeterministicRandom, ttl: float = 300.0) -> None:
        self.clock = clock
        self.rand = rand
        self.ttl = ttl
        self._customers: dict[str, str] = {}  # domain -> customer id
        self._tokens: dict[str, BearerToken] = {}
        self.grants = 0

    def register_customer(self, customer_id: str, domain: str) -> None:
        """Register a customer and its shared secret."""
        self._customers[_registrable_domain(domain)] = customer_id

    def grant(self, origin: str) -> BearerToken | None:
        """The authorization-code dance, collapsed to its trust decision."""
        customer_id = self._customers.get(_registrable_domain(origin))
        if customer_id is None:
            return None
        self.grants += 1
        token = BearerToken(
            token=self.rand.bytes(16).hex(),
            customer_id=customer_id,
            issued_at=self.clock(),
            ttl=self.ttl,
        )
        self._tokens[token.token] = token
        return token

    def validate(self, token_str: str) -> tuple[bool, str | None]:
        """Validate a credential; returns the outcome with a reason."""
        token = self._tokens.get(token_str)
        if token is None:
            return False, None
        if self.clock() > token.issued_at + token.ttl:
            return False, token.customer_id
        return True, token.customer_id


class OAuthMitmAttack:
    """§V-A: redirect a viewer's grant request and pocket the token.

    The attacker's proxy sits between a (proxied) viewer and the
    authorization server; it forwards the grant with the *victim's*
    origin — indistinguishable from the real thing — and records the
    bearer token, which is not bound to any video and therefore offloads
    the attacker's own streams just fine.
    """

    def __init__(self, auth_server: OAuthAuthorizationServer, victim_domain: str) -> None:
        self.auth_server = auth_server
        self.victim_domain = victim_domain
        self.harvested: list[BearerToken] = []

    def harvest_token(self) -> BearerToken | None:
        """Obtain one bearer token via the MITM redirect."""
        token = self.auth_server.grant(f"https://{self.victim_domain}")
        if token is not None:
            self.harvested.append(token)
        return token

    def attack_succeeds(self) -> bool:
        """Can a harvested token authenticate the attacker's session?"""
        token = self.harvest_token()
        if token is None:
            return False
        valid, _customer = self.auth_server.validate(token.token)
        return valid
