"""The paper's §V mitigations, implemented and pluggable.

- :mod:`repro.defenses.jwtmin` — a minimal HS256 JSON Web Token codec
  (the paper transmits its token as a JWT; the Listing 1 example encodes
  to 283 bytes);
- :mod:`repro.defenses.tokens` — the disposable, video-binding
  authentication token defeating service free riding (§V-A);
- :mod:`repro.defenses.integrity` — peer-assisted integrity checking:
  IM reports, server-side conflict resolution against the CDN, signed
  integrity metadata (SIM), and the peer blacklist (§V-B, Table VI);
- :mod:`repro.defenses.privacy_mitigations` — geo-constrained candidate
  disclosure, TURN relaying, upload caps, and consent (§V-C).
"""

from repro.defenses.jwtmin import jwt_decode, jwt_encode
from repro.defenses.tokens import TokenIssuer, TokenValidator, VideoToken
from repro.defenses.integrity import ClientIntegrity, IntegrityCoordinator, SimRecord
from repro.defenses.hash_manifest import ClientHashManifest, install_hash_manifest
from repro.defenses.adblock import PdnBlocker
from repro.defenses.oauth import OAuthAuthorizationServer, OAuthMitmAttack
from repro.defenses.privacy_mitigations import (
    apply_consent_policy,
    enable_geo_filter,
    enable_upload_cap,
)

__all__ = [
    "jwt_decode",
    "jwt_encode",
    "TokenIssuer",
    "TokenValidator",
    "VideoToken",
    "ClientIntegrity",
    "IntegrityCoordinator",
    "SimRecord",
    "ClientHashManifest",
    "install_hash_manifest",
    "PdnBlocker",
    "OAuthAuthorizationServer",
    "OAuthMitmAttack",
    "apply_consent_policy",
    "enable_geo_filter",
    "enable_upload_cap",
]
