"""A minimal JSON Web Token (HS256) implementation.

Only what the §V-A defense needs: compact serialization
(``base64url(header).base64url(payload).base64url(hmac-sha256)``),
signature verification, and tamper detection. Payload key order is
preserved (insertion order), matching how the paper's Listing 1 token
reaches its reported 283-byte encoding.
"""

from __future__ import annotations

import hashlib
import hmac
import json

from repro.util.encoding import b64url_decode, b64url_encode
from repro.util.errors import TokenError

_HEADER = {"alg": "HS256", "typ": "JWT"}


def _segment(data: dict) -> str:
    return b64url_encode(json.dumps(data, separators=(",", ":")).encode())


def jwt_encode(payload: dict, secret: bytes) -> str:
    """Encode and sign a payload as a compact JWT."""
    signing_input = f"{_segment(_HEADER)}.{_segment(payload)}"
    signature = hmac.new(secret, signing_input.encode(), hashlib.sha256).digest()
    return f"{signing_input}.{b64url_encode(signature)}"


def jwt_decode(token: str, secret: bytes) -> dict:
    """Verify a compact JWT and return its payload.

    Raises :class:`TokenError` on structural problems or a bad signature.
    """
    parts = token.split(".")
    if len(parts) != 3:
        raise TokenError(f"malformed JWT: expected 3 segments, got {len(parts)}")
    header_b64, payload_b64, signature_b64 = parts
    try:
        header = json.loads(b64url_decode(header_b64))
        payload = json.loads(b64url_decode(payload_b64))
        signature = b64url_decode(signature_b64)
    except (ValueError, UnicodeDecodeError) as exc:
        raise TokenError(f"undecodable JWT segment: {exc}") from exc
    if header.get("alg") != "HS256":
        raise TokenError(f"unsupported algorithm {header.get('alg')!r}")
    expected = hmac.new(
        secret, f"{header_b64}.{payload_b64}".encode(), hashlib.sha256
    ).digest()
    if not hmac.compare_digest(signature, expected):
        raise TokenError("JWT signature verification failed")
    return payload
