"""Disposable, video-binding authentication tokens (§V-A, Listing 1).

Replaces the static API key with a short-lived JWT minted by the PDN
customer's backend on each page load. The token binds to the peer, the
exact video manifests of the page, an issuance timestamp + TTL, and a
usage limit — so a stolen token cannot offload the attacker's *own*
streams (wrong video ids), cannot be replayed (usage limit), and rots
quickly (TTL). The validator plugs into the provider's signaling join
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.defenses.jwtmin import jwt_decode, jwt_encode
from repro.util.errors import TokenError


@dataclass(frozen=True)
class VideoToken:
    """The Listing 1 token structure."""

    customer_id: str
    pdn_peer_id: str
    video_ids: tuple[str, ...]
    timestamp: int
    ttl: int = 60
    usage_limit: int = 1

    def to_payload(self) -> dict:
        # Field order matches Listing 1 so encodings are comparable.
        """To payload."""
        return {
            "customer_id": self.customer_id,
            "pdn_peer_id": self.pdn_peer_id,
            "video_ids": list(self.video_ids),
            "timestamp": self.timestamp,
            "ttl": self.ttl,
            "usage_limit": self.usage_limit,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "VideoToken":
        """From payload."""
        try:
            return cls(
                customer_id=payload["customer_id"],
                pdn_peer_id=payload["pdn_peer_id"],
                video_ids=tuple(payload["video_ids"]),
                timestamp=int(payload["timestamp"]),
                ttl=int(payload["ttl"]),
                usage_limit=int(payload["usage_limit"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TokenError(f"token payload missing/invalid field: {exc}") from exc


class TokenIssuer:
    """Runs at the PDN customer's backend; shares a secret with the provider."""

    def __init__(self, customer_id: str, secret: bytes, clock: Callable[[], float]) -> None:
        self.customer_id = customer_id
        self.secret = secret
        self.clock = clock
        self._peer_counter = 0
        self.issued = 0

    def issue(
        self,
        video_ids: list[str],
        ttl: int = 60,
        usage_limit: int = 1,
        peer_id: str | None = None,
    ) -> str:
        """Issue."""
        self._peer_counter += 1
        self.issued += 1
        token = VideoToken(
            customer_id=self.customer_id,
            pdn_peer_id=peer_id or str(self._peer_counter),
            video_ids=tuple(video_ids),
            timestamp=int(self.clock()),
            ttl=ttl,
            usage_limit=usage_limit,
        )
        return jwt_encode(token.to_payload(), self.secret)


@dataclass
class ValidationOutcome:
    """ValidationOutcome."""
    accepted: bool
    customer_id: str | None = None
    reason: str = "ok"


class TokenValidator:
    """Runs at the PDN provider; enforces all four binding dimensions."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self._secrets: dict[str, bytes] = {}
        self._usage: dict[str, int] = {}
        self.validations = 0
        self.rejections = 0

    def register_customer(self, customer_id: str, secret: bytes) -> None:
        """Register a customer and its shared secret."""
        self._secrets[customer_id] = secret

    def validate(self, token_str: str, video_url: str) -> ValidationOutcome:
        """Check signature, expiry, usage budget, and video binding."""
        self.validations += 1
        outcome = self._validate(token_str, video_url)
        if not outcome.accepted:
            self.rejections += 1
        return outcome

    def _validate(self, token_str: str, video_url: str) -> ValidationOutcome:
        claimed_customer = self._peek_customer(token_str)
        secret = self._secrets.get(claimed_customer or "")
        if secret is None:
            return ValidationOutcome(False, None, "unknown customer")
        try:
            payload = jwt_decode(token_str, secret)
            token = VideoToken.from_payload(payload)
        except TokenError as exc:
            return ValidationOutcome(False, claimed_customer, str(exc))
        now = self.clock()
        if now > token.timestamp + token.ttl:
            return ValidationOutcome(False, token.customer_id, "token expired")
        if video_url not in token.video_ids:
            return ValidationOutcome(
                False, token.customer_id, "token not bound to this video"
            )
        used = self._usage.get(token_str, 0)
        if used >= token.usage_limit:
            return ValidationOutcome(False, token.customer_id, "token usage limit reached")
        self._usage[token_str] = used + 1
        return ValidationOutcome(True, token.customer_id)

    @staticmethod
    def _peek_customer(token_str: str) -> str | None:
        """Read the (unverified) customer id to select the HMAC secret."""
        import json

        from repro.util.encoding import b64url_decode

        parts = token_str.split(".")
        if len(parts) != 3:
            return None
        try:
            return json.loads(b64url_decode(parts[1])).get("customer_id")
        except (ValueError, UnicodeDecodeError):
            return None
