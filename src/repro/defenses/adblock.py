"""Viewer-side PDN blocking (the AdblockPlus / douyu-p2p-block pattern).

§IV-D: "resource squatting behavior has also motivated viewers to
disable or filter PDN services. For example, viewers have utilized
AdblockPlus to block the domain of PDN servers" [16]. This module is
that browser-extension defense: a filter list of PDN SDK and signaling
hosts, applied as a request blocker on the viewer's own browser. The
PDN fails closed — the SDK never loads or never joins — and playback
degrades gracefully to plain CDN delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.streaming.http import HttpRequest, HttpResponse, UrlSpace

# The community filter list: SDK + signaling hosts of the known public
# providers (what lists like douyu-p2p-block ship for private ones).
DEFAULT_FILTER_LIST = [
    "api.peer5.com",
    "signal.peer5.com",
    "cdn.streamroot.io",
    "backend.dna.streamroot.io",
    "cdn.viblast.com",
    "pdn.viblast.com",
]


@dataclass
class PdnBlocker:
    """An AdblockPlus-style request blocker, usable as a browser proxy."""

    blocked_hosts: set[str] = field(default_factory=lambda: set(DEFAULT_FILTER_LIST))
    blocked_requests: int = 0
    passed_requests: int = 0

    @classmethod
    def from_providers(cls, providers) -> "PdnBlocker":
        """Build a filter list covering the given provider objects."""
        hosts: set[str] = set()
        for provider in providers:
            hosts.add(provider.profile.sdk_host.lower())
            hosts.add(provider.profile.signaling_host.lower())
        return cls(blocked_hosts=hosts)

    def blocks(self, host: str) -> bool:
        """True if requests to this host are filtered."""
        host = host.lower()
        return any(host == h or host.endswith("." + h) for h in self.blocked_hosts)

    def handle(self, request: HttpRequest, urlspace: UrlSpace) -> HttpResponse:
        """Proxy hook: rewrite, forward, and log one HTTP exchange."""
        if self.blocks(request.host):
            self.blocked_requests += 1
            return HttpResponse(403, b"blocked by filter list")
        self.passed_requests += 1
        return urlspace.dispatch(request)
