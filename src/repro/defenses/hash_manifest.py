"""CDN-distributed integrity manifests — the prior-work defense (§V-B).

Previous pollution defenses ([39], [42], [62], [82]) and the vendors'
own premium options (Peer5's custom HTTP delivery, Viblast's MD5 player
plugin) all "require the video source to distribute every video chunk
with an extra integrity attribute". That works, but *every* viewer —
including the ones streaming straight from the CDN — downloads the
attributes, so the defense costs exactly the CDN bandwidth a PDN exists
to save, and verification can't start until the attributes arrive.

The peer-assisted IM mechanism (:mod:`repro.defenses.integrity`) is the
paper's answer: no extra CDN object, the server fetches from the CDN
only to resolve conflicts. ``benchmarks/bench_defense_comparison.py``
quantifies the difference.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass
from typing import Callable

from repro.streaming.video import VideoSource

HASH_MANIFEST_FILENAME = "hashes.json"


def build_hash_manifest(video: VideoSource, signing_key: bytes) -> bytes:
    """The integrity-attributes object the CDN must additionally serve."""
    entries = []
    for segment in video.segments:
        digest = segment.digest
        signature = hmac.new(
            signing_key, f"{video.video_id}|{segment.index}|{digest}".encode(), hashlib.sha256
        ).hexdigest()
        entries.append({"index": segment.index, "sha256": digest, "sig": signature})
    return json.dumps({"video": video.video_id, "segments": entries}).encode()


def install_hash_manifest(origin, video: VideoSource, signing_key: bytes) -> None:
    """Publish the manifest next to the video on the origin (and thus
    through every CDN edge in front of it)."""
    origin.add_extra_file(video.video_id, HASH_MANIFEST_FILENAME, build_hash_manifest(video, signing_key))


class ClientHashManifest:
    """Client-side verifier: fetch the manifest, check every segment.

    Implements the same hook interface as
    :class:`repro.defenses.integrity.ClientIntegrity`, so it plugs into
    :class:`repro.pdn.sdk.PdnClient` unchanged. Each client fetches the
    manifest over HTTP once — that is the per-viewer CDN cost the paper
    objects to.
    """

    def __init__(self, verify_signature: Callable[[str, int, str, str], bool] | None = None) -> None:
        self.verify_signature = verify_signature
        self.manifests_fetched = 0
        self.verifications = 0
        self.rejections = 0
        # Cached per client: every viewer fetches its own copy — that is
        # precisely the per-viewer CDN cost this defense carries.
        self._cache: dict[tuple[str, str], dict[int, dict]] = {}

    def _manifest_for(self, sdk, rendition: str = "") -> dict[int, dict] | None:
        base = rendition or (sdk.video_url.rsplit("/", 1)[0] + "/")
        key = (sdk.name, base)
        if key in self._cache:
            return self._cache[key]
        response = sdk.http.get(base + HASH_MANIFEST_FILENAME)
        if not response.ok:
            return None
        self.manifests_fetched += 1
        payload = json.loads(response.body.decode())
        table = {entry["index"]: entry for entry in payload["segments"]}
        self._cache[key] = table
        return table

    # -- the PdnClient integrity hook interface -----------------------------

    def on_cdn_segment(self, sdk, index: int, data: bytes, rendition: str = "") -> None:
        # Prefetch the manifest so verification never waits on it.
        """Integrity hook: a segment arrived from the CDN."""
        self._manifest_for(sdk, rendition)

    def verify_p2p_segment(
        self, sdk, index: int, data: bytes, deliver: Callable[[bool], None], rendition: str = ""
    ) -> None:
        """Integrity hook: vet a P2P-delivered segment."""
        self.verifications += 1
        table = self._manifest_for(sdk, rendition)
        entry = table.get(index) if table else None
        ok = entry is not None and hashlib.sha256(data).hexdigest() == entry["sha256"]
        if not ok:
            self.rejections += 1
        deliver(ok)
