"""Peer-privacy mitigations (§V-C).

Three layers, weakest to strongest:

- **informing viewers**: consent dialogs, opt-outs, upload caps —
  :func:`apply_consent_policy` / :func:`enable_upload_cap` (addresses
  resource squatting, not the IP leak);
- **geo-constrained candidates**: the signaling server only disclosed
  peers sharing the observer's country (or ISP) —
  :func:`enable_geo_filter`. Cuts leak volume (§V-C: only 35% of RT
  News leaks share a country with the observer; none of Huya's would
  reach a US observer) but a proxy peer inside the region bypasses it;
- **TURN relaying**: peers publish only relayed candidates
  (``relay_only`` on the embed or browser) — eliminates the leak at
  relay-bandwidth cost, the trade-off the ablation bench quantifies.
"""

from __future__ import annotations

from dataclasses import replace

from repro.pdn.policy import ClientPolicy
from repro.pdn.provider import PdnProvider
from repro.pdn.scheduler import GeoFilterMode
from repro.privacy.geo import GeoDatabase


def enable_geo_filter(
    provider: PdnProvider,
    geo: GeoDatabase,
    mode: GeoFilterMode = GeoFilterMode.SAME_COUNTRY,
) -> None:
    """Constrain candidate disclosure to same-country (or same-ISP) peers."""
    provider.scheduler.geo_filter = mode
    provider.signaling.geo_resolver = geo.resolver()


def enable_upload_cap(policy: ClientPolicy, max_bytes_per_sec: float) -> ClientPolicy:
    """Limit the upstream bandwidth the SDK may consume for P2P serving."""
    return replace(policy, max_upload_bytes_per_sec=max_bytes_per_sec)


def apply_consent_policy(policy: ClientPolicy) -> ClientPolicy:
    """Ask viewers before enrolling them, and let them opt out."""
    return replace(policy, show_consent_dialog=True, allow_user_disable=True)
