"""Peer-assisted integrity checking (§V-B).

Randomly selected peers compute integrity metadata (IM) for segments
they downloaded *directly from the CDN* and report it to the PDN
server. The server:

- treats an IM as authentic when all selected reporters agree;
- on conflict, downloads the segment from the CDN itself, computes the
  authentic IM, and **blacklists** every peer that reported a fake;
- signs the authentic IM (→ SIM) and serves it to peers, who must
  verify any P2P-received segment against it.

The IM is the hash of ``(segment content, video id, position)`` so a
recorded segment+SIM cannot be replayed as a different segment or into
a different video. As long as one benign reporter exists, the authentic
IM wins.

Costs are modeled where the paper measures them (Table VI): IM hashing
adds CPU (via the ``hash_bytes`` counter) and per-segment latency
(compute delay before delivery).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Callable

from repro.net.clock import EventLoop
from repro.streaming.http import HttpClient
from repro.util.rand import DeterministicRandom


def content_id(video_url: str, base: str) -> str:
    """One string identifying (video, rendition); '' base = single-rendition."""
    return f"{video_url}|{base}"


def compute_im(data: bytes, video_id: str, position: int) -> str:
    """Integrity metadata: hash over (content, video id, position)."""
    h = hashlib.sha256()
    h.update(data)
    h.update(video_id.encode())
    h.update(position.to_bytes(8, "big"))
    return h.hexdigest()


@dataclass(frozen=True)
class SimRecord:
    """Signed integrity metadata for one segment."""

    video_id: str
    index: int
    digest: str
    signature: str


@dataclass
class _SegmentReports:
    reports: dict[str, set[str]] = field(default_factory=dict)  # digest -> peer ids
    resolved: bool = False


class IntegrityCoordinator:
    """The server half, attached to a provider's signaling server."""

    def __init__(
        self,
        loop: EventLoop,
        rand: DeterministicRandom,
        provider,
        urlspace,
        quorum: int = 3,
    ) -> None:
        self.loop = loop
        self.rand = rand
        self.provider = provider
        self.quorum = quorum
        self._http = HttpClient(urlspace, client_ip="203.0.113.250")  # the PDN server
        self._secret = rand.bytes(32)
        self._segments: dict[tuple[str, int], _SegmentReports] = {}
        self._sims: dict[tuple[str, int], SimRecord] = {}
        self.conflicts_resolved = 0
        self.cdn_fetches = 0
        self.peers_blacklisted: set[str] = set()

    def install(self) -> "IntegrityCoordinator":
        """Attach to the provider's signaling server."""
        self.provider.signaling.integrity = self
        return self

    # -- report intake ---------------------------------------------------------

    def receive_report(
        self, peer_id: str, video_url: str, index: int, digest: str, base: str = ""
    ) -> None:
        """``base`` is the rendition base URL for multi-bitrate streams
        (empty for single-rendition flows)."""
        key = (content_id(video_url, base), index)
        if key in self._sims:
            # Already signed; late fake reports still get peers banned.
            if digest != self._sims[key].digest:
                self._ban(peer_id)
            return
        state = self._segments.setdefault(key, _SegmentReports())
        state.reports.setdefault(digest, set()).add(peer_id)
        if len(state.reports) > 1:
            self._resolve_conflict(key, state)
            return
        reporters = sum(len(peers) for peers in state.reports.values())
        if reporters >= self.quorum:
            self._sign(key, digest)

    def _resolve_conflict(self, key: tuple[str, int], state: _SegmentReports) -> None:
        """Fetch from the CDN, sign the authentic IM, ban fake reporters."""
        if state.resolved:
            return
        state.resolved = True
        self.conflicts_resolved += 1
        video_url, index = key
        authentic = self._authentic_im(video_url, index)
        if authentic is None:
            return  # CDN unavailable: no SIM can be issued
        self._sign(key, authentic)
        for digest, peers in state.reports.items():
            if digest != authentic:
                for peer_id in peers:
                    self._ban(peer_id)

    def _authentic_im(self, content_id: str, index: int) -> str | None:
        video_url, _, base = content_id.partition("|")
        fetch_base = base or (video_url.rsplit("/", 1)[0] + "/")
        response = self._http.get(f"{fetch_base}seg-{index}.ts")
        self.cdn_fetches += 1
        if not response.ok:
            return None
        return compute_im(response.body, content_id, index)

    def _ban(self, peer_id: str) -> None:
        if peer_id in self.peers_blacklisted:
            return
        self.peers_blacklisted.add(peer_id)
        self.provider.signaling.ban_peer(peer_id)

    # -- SIM distribution -------------------------------------------------------

    def _sign(self, key: tuple[str, int], digest: str) -> None:
        video_url, index = key
        signature = self._signature_for(video_url, index, digest)
        self._sims[key] = SimRecord(video_url, index, digest, signature)

    def _signature_for(self, video_url: str, index: int, digest: str) -> str:
        message = f"{video_url}|{index}|{digest}".encode()
        return hmac.new(self._secret, message, hashlib.sha256).hexdigest()

    def get_sim(self, video_url: str, index: int, base: str = "") -> SimRecord | None:
        """Look up the signed integrity metadata for a segment."""
        return self._sims.get((content_id(video_url, base), index))

    def verifier(self) -> Callable[[str, int, str, str], bool]:
        """The client-side signature check (stands in for a public key)."""

        def verify(video_url: str, index: int, digest: str, signature: str) -> bool:
            """Return True if the signature checks out."""
            return hmac.compare_digest(
                signature, self._signature_for(video_url, index, digest)
            )

        return verify


class ClientIntegrity:
    """The client half: IM computation, reporting, and SIM verification.

    One instance is shared by the peers of an experiment (it is
    stateless per peer apart from cost accounting hooks). Plug it into
    :class:`~repro.pdn.sdk.PdnClient` via the ``integrity`` parameter.
    """

    def __init__(
        self,
        loop: EventLoop,
        coordinator: IntegrityCoordinator,
        compute_seconds_per_mb: float = 0.012,
    ) -> None:
        self.loop = loop
        self.coordinator = coordinator
        self.verify_signature = coordinator.verifier()
        self.compute_seconds_per_mb = compute_seconds_per_mb
        self.verifications = 0
        self.rejections = 0

    def _compute_delay(self, size: int) -> float:
        return max(0.001, size / 1e6 * self.compute_seconds_per_mb)

    # -- hooks invoked by the SDK -------------------------------------------------

    def on_cdn_segment(self, sdk, index: int, data: bytes, rendition: str = "") -> None:
        """CDN download: compute the IM and report it to the server."""
        sdk.stats.hash_bytes += len(data)
        digest = compute_im(data, content_id(sdk.video_url, rendition), index)
        self.loop.schedule(
            self._compute_delay(len(data)),
            lambda: sdk._post(
                "/v2/im_report", {"index": index, "digest": digest, "r": rendition}
            ),
        )

    def verify_p2p_segment(
        self,
        sdk,
        index: int,
        data: bytes,
        deliver: Callable[[bool], None],
        rendition: str = "",
    ) -> None:
        """P2P download: must match a SIM before it may be played.

        Sender-side IM computation and receiver-side verification both
        cost hashing time; the delay covers the pair, which is what the
        paper's :math:`T_{recv} - T_{send}` measures.
        """
        self.verifications += 1
        sdk.stats.hash_bytes += len(data)

        def check() -> None:
            """Fetch the SIM and deliver the verification outcome."""
            payload = sdk._post("/v2/sim", {"index": index, "r": rendition})
            cid = content_id(sdk.video_url, rendition)
            digest = compute_im(data, cid, index)
            sim_digest = payload.get("digest")
            signature = payload.get("sig", "")
            ok = (
                sim_digest is not None
                and sim_digest == digest
                and self.verify_signature(cid, index, digest, signature)
            )
            if not ok:
                self.rejections += 1
            deliver(ok)

        self.loop.schedule(2 * self._compute_delay(len(data)), check)
