"""DetSan — the runtime determinism sanitizer.

The static rules catch what they can resolve; DetSan catches the rest
at the moment it happens. It has two halves:

**Guards** (:func:`install_guards` / :class:`sanitized_run`) patch the
wall-clock functions in :mod:`time` / :mod:`datetime` and the draw
functions of the *global* :mod:`random` stream. A patched function
called from simulation code (any ``repro.*`` module outside the
sanctioned harness-timing allowlist) raises :class:`DetSanViolation`
carrying the offending file and line — the exact stack the digest
mismatch would otherwise force you to bisect for. Callers outside the
project (stdlib, ``multiprocessing`` plumbing, pytest) pass through
untouched, so guards are safe to hold across worker processes.
Seeded :class:`~repro.util.rand.DeterministicRandom` instances bind
their draw methods to a private ``random.Random`` at construction, so
they are — by design — unaffected by the module-level patch.

**Dispatch tracing** (:class:`DispatchTrace`) hooks the event loop's
pre-fire trace seam (:meth:`EventLoop.set_trace`) and folds every
fired event ``(when, callback site)`` into a running SHA-256
fingerprint, keeping a bounded tail window of recent events. Two runs
of the same seed must produce identical fingerprints;
:func:`first_divergence` compares two trace snapshots and names the
*first* event where they disagree — time, site, and event index — so a
cross-run or cross-jobs digest mismatch turns into a line number
instead of a bisection. Snapshots are plain picklable data and travel
back from ``ProcessPoolExecutor`` workers inside each run record.

Everything here runs on the *host* side of the simulation boundary:
patching the clock it polices is this module's job, so its DET001 /
DET002 references are allowlisted in ``pyproject.toml`` rather than
pragma'd line by line.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Module prefixes whose frames may touch the real clock while guards
#: are installed: the harness's own timing/measurement plumbing.
SANCTIONED_PREFIXES = ("repro.util.perf", "repro.analysis", "repro.harness")

#: ``time`` module functions DetSan intercepts (the runtime mirror of
#: the static rule's ``WALL_CLOCK_TARGETS``).
GUARDED_TIME_FNS = (
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
)

#: Global-stream ``random`` module functions DetSan intercepts. Draws
#: through a seeded ``random.Random`` instance (``DeterministicRandom``)
#: bind the instance methods directly and are deliberately not guarded.
GUARDED_RANDOM_FNS = (
    "random", "uniform", "randint", "randrange", "gauss", "expovariate",
    "choice", "choices", "sample", "shuffle", "betavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
    "normalvariate", "getrandbits", "randbytes",
)


class DetSanViolation(AssertionError):
    """A nondeterministic primitive was used from simulation code."""


def _caller_module(depth: int = 2) -> str:
    """``__name__`` of the frame ``depth`` levels up ('' when unknown)."""
    frame = sys._getframe(depth)
    return frame.f_globals.get("__name__", "") or ""


def _caller_site(depth: int = 2) -> str:
    """``file:line in function`` of the offending frame, for the report."""
    frame = sys._getframe(depth)
    code = frame.f_code
    return f"{code.co_filename}:{frame.f_lineno} in {code.co_name}"


def _guarded_by_project(module: str) -> bool:
    """Should a call from ``module`` trip the guard?

    Only project simulation code is policed: stdlib machinery (worker
    pools, logging, pytest) legitimately reads the host clock, and the
    harness's own timing utilities are sanctioned by prefix.
    """
    if not (module == "repro" or module.startswith("repro.")):
        return False
    return not any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in SANCTIONED_PREFIXES
    )


def _make_guard(target: str, original: Callable) -> Callable:
    """Wrap ``original`` to raise when called from simulation code."""

    def guard(*args: Any, **kwargs: Any):
        module = _caller_module()
        if _guarded_by_project(module):
            raise DetSanViolation(
                f"DetSan: `{target}` called from simulation code at "
                f"{_caller_site()} — use EventLoop.now / a seeded "
                "DeterministicRandom (module "
                f"{module})"
            )
        return original(*args, **kwargs)

    guard.__name__ = getattr(original, "__name__", target)
    guard.__detsan_original__ = original
    return guard


class _Guards:
    """The installed patch set; tracks originals for exact restore."""

    def __init__(self) -> None:
        self._patched: list[tuple[Any, str, Any]] = []

    def install(self) -> None:
        """Patch time.* and global random.* entry points in place."""
        import random as random_mod
        import time as time_mod

        for name in GUARDED_TIME_FNS:
            original = getattr(time_mod, name, None)
            if original is None or hasattr(original, "__detsan_original__"):
                continue
            setattr(time_mod, name, _make_guard(f"time.{name}", original))
            self._patched.append((time_mod, name, original))
        for name in GUARDED_RANDOM_FNS:
            original = getattr(random_mod, name, None)
            if original is None or hasattr(original, "__detsan_original__"):
                continue
            setattr(random_mod, name, _make_guard(f"random.{name}", original))
            self._patched.append((random_mod, name, original))

    def uninstall(self) -> None:
        """Restore every patched function to its original."""
        while self._patched:
            mod, name, original = self._patched.pop()
            setattr(mod, name, original)


#: Events kept verbatim in the trace tail; earlier history lives only
#: in the folded fingerprint. Big enough to show context around a
#: divergence, small enough to pickle back from every worker.
TRACE_WINDOW = 512


@dataclass
class TraceSnapshot:
    """A picklable summary of one run's dispatch trace."""

    count: int
    fingerprint: str
    #: Rolling fingerprint sampled every ``stride`` events, so two
    #: snapshots can locate a divergence without keeping every event.
    checkpoints: list[str]
    stride: int
    #: The last ``TRACE_WINDOW`` events as ``(index, when, site)``.
    tail: list[tuple[int, float, str]]


class DispatchTrace:
    """Fold every fired event into a deterministic fingerprint.

    Installed via :meth:`EventLoop.set_trace`; called before each
    callback with the raw queue entry. The fingerprint chains
    ``sha256(prev_digest | when | site)`` so it commits to order, time,
    and callback identity; memory stays bounded by the checkpoint
    stride and the tail window regardless of run length.
    """

    def __init__(self, stride: int = 4096) -> None:
        self.count = 0
        self.stride = stride
        self._digest = hashlib.sha256()
        self.checkpoints: list[str] = []
        self._tail: list[tuple[int, float, str]] = []

    def __call__(self, loop: Any, entry: Any) -> None:
        """Record one pre-fire event from the loop's trace seam."""
        # Late import keeps sanitizer importable without the net stack.
        from repro.harness.profile import callback_of, callsite_of

        site = callsite_of(callback_of(entry))
        when = loop.now
        self._digest.update(f"{when!r}|{site}\n".encode())
        self.count += 1
        self._tail.append((self.count - 1, when, site))
        if len(self._tail) > TRACE_WINDOW:
            del self._tail[0]
        if self.count % self.stride == 0:
            self.checkpoints.append(self._digest.hexdigest())

    def snapshot(self) -> TraceSnapshot:
        """Freeze the trace into picklable comparison data."""
        return TraceSnapshot(
            count=self.count,
            fingerprint=self._digest.hexdigest(),
            checkpoints=list(self.checkpoints),
            stride=self.stride,
            tail=list(self._tail),
        )


@dataclass
class Divergence:
    """The first observed difference between two dispatch traces."""

    index: int  # event index, 0-based; -1 when only counts differ
    left: tuple[float, str] | None  # (when, site) or None past the end
    right: tuple[float, str] | None
    detail: str

    def render(self) -> str:
        """One-line human-readable description for verify reports."""
        return f"first divergent event #{self.index}: {self.detail}"


def first_divergence(a: TraceSnapshot, b: TraceSnapshot) -> Divergence | None:
    """Compare two trace snapshots; ``None`` when they agree.

    Identical fingerprints (and counts) mean the dispatch sequences
    were bit-identical. On mismatch the tails are aligned by event
    index and scanned for the first differing ``(when, site)`` pair;
    when the divergence predates both tails, the checkpoint streams
    bound the window it happened in.
    """
    if a.count == b.count and a.fingerprint == b.fingerprint:
        return None

    tail_a = {i: (when, site) for i, when, site in a.tail}
    tail_b = {i: (when, site) for i, when, site in b.tail}
    for index in sorted(tail_a.keys() & tail_b.keys()):
        if tail_a[index] != tail_b[index]:
            when_a, site_a = tail_a[index]
            when_b, site_b = tail_b[index]
            return Divergence(
                index=index,
                left=tail_a[index],
                right=tail_b[index],
                detail=(
                    f"run A fired {site_a} at t={when_a:.6f}, "
                    f"run B fired {site_b} at t={when_b:.6f}"
                ),
            )

    # Tails agree (or don't overlap): fall back to the checkpoint
    # streams to bound where history diverged.
    stride = min(a.stride, b.stride)
    for pos, (ca, cb) in enumerate(zip(a.checkpoints, b.checkpoints)):
        if ca != cb:
            lo, hi = pos * stride, (pos + 1) * stride
            return Divergence(
                index=lo,
                left=None,
                right=None,
                detail=(
                    f"dispatch histories diverge between events #{lo} and "
                    f"#{hi} (before the retained tail window); re-run with "
                    "a smaller trace stride to pin the line"
                ),
            )

    if a.count != b.count:
        shorter, longer = (a, b) if a.count < b.count else (b, a)
        extra = next(
            ((when, site) for i, when, site in longer.tail if i == shorter.count),
            None,
        )
        site_hint = f" — first extra event: {extra[1]} at t={extra[0]:.6f}" if extra else ""
        return Divergence(
            index=shorter.count,
            left=None,
            right=extra,
            detail=(
                f"run lengths differ ({a.count} vs {b.count} events); one run "
                f"fired {longer.count - shorter.count} more{site_hint}"
            ),
        )

    return Divergence(
        index=-1,
        left=None,
        right=None,
        detail="fingerprints differ but the retained windows agree; "
        "divergence predates both tails and checkpoints",
    )


class sanitized_run:
    """Context manager arming DetSan for one experiment execution.

    Installs the wall-clock/global-RNG guards and, when ``trace`` is
    true, a fresh :class:`DispatchTrace` on the event loop's pre-fire
    seam. The trace snapshot is read off :attr:`trace` after the block.
    """

    def __init__(self, trace: bool = True, stride: int = 4096) -> None:
        self._guards = _Guards()
        self._want_trace = trace
        self.trace: DispatchTrace | None = DispatchTrace(stride) if trace else None

    def __enter__(self) -> "sanitized_run":
        from repro.net.clock import EventLoop

        self._guards.install()
        if self.trace is not None:
            EventLoop.set_trace(self.trace)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        from repro.net.clock import EventLoop

        if self.trace is not None:
            EventLoop.clear_trace()
        self._guards.uninstall()

    def snapshot(self) -> TraceSnapshot | None:
        """The dispatch-trace snapshot, or ``None`` when not tracing."""
        return self.trace.snapshot() if self.trace is not None else None
