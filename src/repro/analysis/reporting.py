"""Render a :class:`LintRun` as text or JSON.

Text output is the grep-able ``path:line:col RULE message`` form plus a
per-rule summary table in the house ``util.tables`` style, so lint
output diffs as cleanly as the benchmark tables do. JSON carries the
same data for tooling.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintRun
from repro.analysis.findings import Severity
from repro.analysis.rules import RULES_BY_ID
from repro.util.tables import render_kv, render_table


def render_text(run: LintRun, verbose: bool = False) -> str:
    """Human-readable report: findings, summary table, verdict line."""
    lines: list[str] = []
    for relpath, message in run.parse_errors:
        lines.append(f"{relpath}: PARSE ERROR {message}")
    for finding in run.findings:
        marker = "" if finding.severity is Severity.ERROR else " (soft)"
        lines.append(f"{finding.location} {finding.rule_id}{marker} {finding.message}")
    for fingerprint in run.stale_fingerprints:
        lines.append(
            f"baseline: STALE fingerprint {fingerprint} matches no finding; "
            "run --prune to rewrite the baseline"
        )
    if verbose:
        for finding in run.baselined:
            lines.append(f"{finding.location} {finding.rule_id} [baselined] {finding.message}")
        for finding in run.suppressed:
            lines.append(f"{finding.location} {finding.rule_id} [suppressed] {finding.message}")
    if lines:
        lines.append("")

    per_rule: dict[str, list[int]] = {}
    for bucket, index in ((run.findings, 0), (run.baselined, 1), (run.suppressed, 2)):
        for finding in bucket:
            per_rule.setdefault(finding.rule_id, [0, 0, 0])[index] += 1
    if per_rule:
        rows = [
            [rule_id, RULES_BY_ID[rule_id].title, new, baselined, suppressed]
            for rule_id, (new, baselined, suppressed) in sorted(per_rule.items())
        ]
        lines.append(render_table(["rule", "title", "new", "baselined", "suppressed"], rows))
        lines.append("")

    lines.append(
        render_kv(
            "reprolint",
            [
                ("files scanned", run.files_scanned),
                ("new errors", len(run.errors)),
                ("new soft findings", len(run.infos)),
                ("baselined", len(run.baselined)),
                ("stale baseline", len(run.stale_fingerprints)),
                ("suppressed", len(run.suppressed)),
                ("verdict", "CLEAN" if run.exit_code == 0 else "FAIL"),
            ],
        )
    )
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    """Machine-readable report with the same content as the text form."""
    payload = {
        "files_scanned": run.files_scanned,
        "exit_code": run.exit_code,
        "findings": [f.to_dict() for f in run.findings],
        "baselined": [f.to_dict() for f in run.baselined],
        "suppressed": [f.to_dict() for f in run.suppressed],
        "stale_fingerprints": list(run.stale_fingerprints),
        "parse_errors": [{"path": p, "message": m} for p, m in run.parse_errors],
    }
    return json.dumps(payload, indent=2)
