"""Baseline files: grandfather existing findings, gate only new ones.

A baseline is a JSON list of finding fingerprints (see
:meth:`Finding.fingerprint` — line-number independent, so reformatting
does not invalidate it). Findings whose fingerprint appears in the
baseline are reported separately and never affect the exit code; the
build fails only on findings *not* in the baseline. ``--write-baseline``
regenerates the file from the current tree.

This repository ships an empty baseline (``reprolint.baseline.json``):
every historical violation was fixed in the change that introduced the
linter, and the file exists so CI fails closed the moment one returns.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: pathlib.Path | None) -> set[str]:
    """Fingerprints in the baseline file; empty set when absent."""
    if path is None or not path.is_file():
        return set()
    data = json.loads(path.read_text())
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    return set(data.get("fingerprints", []))


def write_baseline(path: pathlib.Path, findings: list[Finding]) -> None:
    """Write the fingerprints of ``findings`` as the new baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({f.fingerprint() for f in findings}),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def split_baselined(
    findings: list[Finding], fingerprints: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, baselined)."""
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        (baselined if finding.fingerprint() in fingerprints else new).append(finding)
    return new, baselined
