"""PERF001 — regex compiled inside a loop or per-call hot path.

``re.compile`` costs microseconds; a scanner that recompiles the same
pattern for every page of every site pays it millions of times (this is
exactly the bug ``Signature.compiled()`` shipped with — see
``benchmarks/bench_signature_compile.py`` for the measured cost).
Compile at module level, at construction, or behind
``functools.lru_cache`` / ``cached_property``.

Heuristic: a ``re.compile`` call is flagged when it sits inside a loop
or comprehension, or inside any function body — except ``__init__`` /
``__post_init__`` (per-instance, acceptable) and functions decorated
with a caching decorator.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, decorator_names

CACHE_DECORATORS = ("lru_cache", "cache", "cached_property")
CONSTRUCTION_FNS = frozenset({"__init__", "__post_init__", "__init_subclass__"})

_LOOPS = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_cached(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(name.split(".")[-1] in CACHE_DECORATORS for name in decorator_names(func))


class RegexCompileRule(Rule):
    """Flag re.compile calls that re-run on a hot path."""

    rule_id = "PERF001"
    title = "regex compiled in a loop or per-call path"
    rationale = "compile once (module level, construction, or lru_cache), match many"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """PERF001 check: walk with an ancestor stack of loops/functions."""
        yield from self._walk(ctx, ctx.tree, stack=())

    def _walk(self, ctx: FileContext, node: ast.AST, stack: tuple) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_stack = stack
            if isinstance(child, _LOOPS + _FUNCS):
                child_stack = stack + (child,)
            if isinstance(child, ast.Call) and ctx.resolve(dotted_name(child.func) or "") == "re.compile":
                finding = self._classify(ctx, child, stack)
                if finding:
                    yield finding
            yield from self._walk(ctx, child, child_stack)

    def _classify(self, ctx: FileContext, call: ast.Call, stack: tuple) -> Finding | None:
        in_loop = any(isinstance(anc, _LOOPS) for anc in stack)
        functions = [anc for anc in stack if isinstance(anc, _FUNCS)]
        if in_loop:
            return self.finding(
                ctx, call, "re.compile inside a loop recompiles every iteration; hoist it"
            )
        if not functions:
            return None  # module-level: compiled once at import
        innermost = functions[-1]
        if innermost.name in CONSTRUCTION_FNS or _is_cached(innermost):
            return None
        return self.finding(
            ctx,
            call,
            f"re.compile in `{innermost.name}()` recompiles on every call; "
            "compile at module level, in __init__, or behind lru_cache",
        )
