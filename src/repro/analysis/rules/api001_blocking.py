"""API001 — blocking or real-I/O calls inside the simulation.

The whole point of the testbed is that "a week of harvesting" runs in
seconds and touches no real network. A ``time.sleep`` stalls the
process without advancing simulated time; a real socket, subprocess, or
HTTP fetch makes the run depend on the outside world (and, for a
security reproduction, might actually probe someone's infrastructure).
Model delay with ``EventLoop.schedule`` and traffic with
``repro.net.network``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "input",
    }
)

# Importing these modules at all is suspect inside src/repro/: the
# simulator must never open a real socket or spawn a process.
FORBIDDEN_MODULES = frozenset(
    {"socket", "subprocess", "requests", "urllib.request", "http.client", "asyncio"}
)


class BlockingCallRule(Rule):
    """Flag real-world I/O and blocking primitives."""

    rule_id = "API001"
    title = "blocking call or real I/O in simulation code"
    rationale = "model delay via EventLoop.schedule and traffic via repro.net"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """API001 check: forbidden imports plus resolved blocking calls."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in FORBIDDEN_MODULES or alias.name.split(".")[0] in ("subprocess", "socket"):
                        yield self.finding(
                            ctx, node, f"`import {alias.name}` pulls real I/O into the simulation"
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                if node.module in FORBIDDEN_MODULES or node.module.split(".")[0] in ("subprocess", "socket"):
                    yield self.finding(
                        ctx, node, f"`from {node.module} import ...` pulls real I/O into the simulation"
                    )
        for ref, resolved in ctx.resolved_references():
            if resolved in BLOCKING_CALLS or resolved.split(".")[0] in ("subprocess",):
                yield self.finding(
                    ctx,
                    ref,
                    f"`{resolved}` blocks the process or touches the real system; "
                    "use the event loop / simulated network",
                )
