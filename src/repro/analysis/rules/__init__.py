"""Rule registry: one module per rule, one stable ID per rule.

Adding a rule = adding a module with a ``Rule`` subclass and listing it
here; everything else (pragmas, allowlist, baseline, reports, exit
codes) comes from the engine for free. Rule IDs are namespaced by what
they protect: DET* determinism, PERF* hot paths, API* simulation
boundaries, DOC* documentation (soft), SHARD* process-sharding safety.

Per-file rules subclass ``Rule``; whole-program rules subclass
``ProjectRule`` and run once over the project call graph after every
file is parsed.
"""

from __future__ import annotations

from repro.analysis.rules.api001_blocking import BlockingCallRule
from repro.analysis.rules.api002_blocking_chain import BlockingChainRule
from repro.analysis.rules.base import ProjectRule, Rule
from repro.analysis.rules.det001_wall_clock import WallClockRule
from repro.analysis.rules.det002_global_random import GlobalRandomRule
from repro.analysis.rules.det003_set_ordering import SetOrderingRule
from repro.analysis.rules.det004_float_time_eq import FloatTimeEqualityRule
from repro.analysis.rules.det005_digest_taint import DigestTaintRule
from repro.analysis.rules.det006_rng_escape import RngEscapeRule
from repro.analysis.rules.doc001_stub_docstrings import StubDocstringRule
from repro.analysis.rules.perf001_regex_compile import RegexCompileRule
from repro.analysis.rules.shard001_shared_state import SharedStateRule

ALL_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    GlobalRandomRule,
    SetOrderingRule,
    FloatTimeEqualityRule,
    DigestTaintRule,
    RngEscapeRule,
    RegexCompileRule,
    BlockingCallRule,
    BlockingChainRule,
    StubDocstringRule,
    SharedStateRule,
)

RULES_BY_ID: dict[str, type[Rule]] = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID", "ProjectRule", "Rule"]
