"""DET001 — no wall-clock reads outside the allowlist.

Simulated components must take time from :attr:`EventLoop.now`; a
``time.time()`` (or ``datetime.now()``) anywhere in the simulation makes
results depend on when the experiment ran, silently breaking the
replay-from-seed contract. The one sanctioned consumer of the process
clock is ``repro/util/perf.py``, which measures *harness* wall time and
carries the canonical ``# repro: allow[DET001]`` pragma.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

WALL_CLOCK_TARGETS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    """Flag references that resolve to a process-clock read."""

    rule_id = "DET001"
    title = "wall-clock read in simulation code"
    rationale = "sim code must take time from EventLoop.now, not the host clock"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """DET001 check: resolve name chains against the wall-clock set."""
        for node, resolved in ctx.resolved_references():
            if resolved in WALL_CLOCK_TARGETS:
                yield self.finding(
                    ctx,
                    node,
                    f"`{resolved}` reads the host clock; use EventLoop.now "
                    "(or repro.util.perf for harness timing)",
                )
