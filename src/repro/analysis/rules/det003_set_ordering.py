"""DET003 — unordered iteration flowing into order-sensitive sinks.

Iterating a ``set`` (or a ``.keys()`` view whose insertion order is not
itself pinned down) yields a platform- and history-dependent order. That
is harmless until the order *reaches something order-sensitive*: the
event loop (callbacks fire in scheduling order), a random stream (each
draw advances it), or report output (tables get diffed byte-for-byte).
This rule flags exactly that combination and is satisfied by an
intervening ``sorted(...)``.

The analysis is intentionally local and conservative: it tracks names
assigned set-typed expressions within one function body, and only fires
when the loop body (or the comprehension's host call) contains a sink.
It will miss sets that cross function boundaries — the pragma and the
determinism integration test cover the rest.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

SCHEDULING_SINKS = frozenset({"schedule", "schedule_at", "call_every"})
OUTPUT_SINKS = frozenset({"print", "render_table", "render_kv"})
WRITE_ATTRS = frozenset({"write", "writelines"})
RANDOMNESS_HINTS = ("rng", "random", "rand")


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Statically set-typed: literal, set()/frozenset(), comp, ops, .keys()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True
        # set.union / intersection / difference on a known set
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference", "copy",
        ):
            return _is_set_expr(node.func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    return False


def _sink_kind(node: ast.Call) -> str | None:
    """Classify a call as an order-sensitive sink, or None."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in OUTPUT_SINKS:
        return "report output"
    if isinstance(func, ast.Attribute):
        if func.attr in SCHEDULING_SINKS:
            return "the event loop"
        if func.attr in WRITE_ATTRS:
            return "report output"
        base = dotted_name(func.value)
        if base and any(hint in base.split(".")[-1].lower() for hint in RANDOMNESS_HINTS):
            return "a random stream"
    return None


def _sinks_in(body: list[ast.stmt]) -> list[tuple[ast.Call, str]]:
    sinks = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                kind = _sink_kind(node)
                if kind:
                    sinks.append((node, kind))
    return sinks


class _ScopeVisitor(ast.NodeVisitor):
    """Walk one function body tracking set-typed local names."""

    def __init__(self, rule: "SetOrderingRule", ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.set_names: set[str] = set()
        self.findings: list[Finding] = []

    def visit_Assign(self, node: ast.Assign) -> None:
        """Track ``name = <set expr>`` and forget reassignments."""
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if _is_set_expr(node.value, self.set_names):
                self.set_names.add(name)
            else:
                self.set_names.discard(name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        """Track annotated assignments the same way (``x: set[str] = ...``)."""
        if isinstance(node.target, ast.Name) and node.value is not None:
            annotated_set = isinstance(node.annotation, ast.Subscript) and (
                dotted_name(node.annotation.value) in ("set", "frozenset")
            )
            if annotated_set or _is_set_expr(node.value, self.set_names):
                self.set_names.add(node.target.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        """Flag ``for x in <set>`` whose body reaches a sink."""
        if _is_set_expr(node.iter, self.set_names):
            for _sink, kind in _sinks_in(node.body)[:1]:
                self.findings.append(
                    self.rule.finding(
                        self.ctx,
                        node.iter,
                        f"iteration over a set flows into {kind}; "
                        "wrap the iterable in sorted(...)",
                    )
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag comprehensions over sets passed directly to a sink call."""
        kind = _sink_kind(node)
        if kind:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
                        for gen in sub.generators:
                            if _is_set_expr(gen.iter, self.set_names):
                                self.findings.append(
                                    self.rule.finding(
                                        self.ctx,
                                        gen.iter,
                                        f"comprehension over a set feeds {kind}; "
                                        "wrap the iterable in sorted(...)",
                                    )
                                )
        self.generic_visit(node)

    # Nested functions are separate scopes, each analyzed by ``check()``'s
    # own walk — do not descend (and do not leak set names into them).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Stop at nested scope boundaries."""

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]


class SetOrderingRule(Rule):
    """Flag set iteration whose order can leak into results."""

    rule_id = "DET003"
    title = "nondeterministic iteration order reaches an order-sensitive sink"
    rationale = "set order is arbitrary; sort before scheduling, drawing, or printing"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """DET003 check: per-scope set tracking + sink detection."""
        findings: list[Finding] = []
        module_visitor = _ScopeVisitor(self, ctx)
        for stmt in ctx.tree.body:  # type: ignore[attr-defined]
            if not isinstance(stmt, ast.ClassDef):
                module_visitor.visit(stmt)
        findings.extend(module_visitor.findings)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visitor = _ScopeVisitor(self, ctx)
                for stmt in node.body:
                    visitor.visit(stmt)
                findings.extend(visitor.findings)
        yield from findings
