"""DOC001 (soft) — placeholder one-word docstrings.

The seed generator left stubs like ``\"\"\"Matches.\"\"\"`` — a docstring
that restates the symbol's name carries no information and hides the
fact that the symbol is undocumented. This rule is *soft* (severity
INFO): it reports stubs without failing the build, so coverage can be
paid down incrementally.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import Rule


def _is_stub(docstring: str, name: str) -> bool:
    """A single word, or the symbol's own name re-punctuated."""
    text = docstring.strip().rstrip(".").strip()
    if not text:
        return True
    if len(text.split()) == 1:
        return True
    # "Is potential." for is_potential, "Signature kind." for SignatureKind.
    normalized = "".join(c for c in text.lower() if c.isalnum())
    name_normalized = "".join(c for c in name.lower() if c.isalnum())
    return normalized == name_normalized


class StubDocstringRule(Rule):
    """Report docstrings that merely restate the symbol name."""

    rule_id = "DOC001"
    title = "placeholder docstring"
    severity = Severity.INFO
    rationale = "a docstring that restates the name documents nothing"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """DOC001 check: compare each docstring against its symbol name."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            docstring = ast.get_docstring(node, clean=True)
            if docstring is not None and _is_stub(docstring, node.name):
                yield self.finding(
                    ctx,
                    node,
                    f"docstring of `{node.name}` is a placeholder "
                    f'("""{docstring.strip()}"""); say what it does',
                )
