"""DET005 — digest-path taint: nondeterminism reachable from a digest.

Every experiment result is hashed into a content digest through
``to_dict()`` / ``canonical_json`` (see :mod:`repro.harness.result`),
and ``repro verify`` compares those digests across runs and processes.
A value that depends on set iteration order, ``id()``, or an object's
default ``repr`` poisons the digest *silently*: the run "works", the
digest just stops replaying — usually only under a different
``PYTHONHASHSEED`` or process count, which is the worst possible time
to find out.

DET003 already flags unordered iteration per file, but only when the
sink is visible in the same function. DET005 closes the cross-module
gap: it computes the forward closure of every digest root (``to_dict``,
``manifest_extra``, ``canonical_json``, ``to_jsonable``,
``content_digest``) over the project call graph and flags, *anywhere in
that closure*:

- iteration over a statically-known ``set`` (loop or comprehension)
  that is not immediately ``sorted(...)``,
- ``id(...)`` — process-address-dependent by definition,
- ``repr(...)`` or an f-string ``!r`` conversion outside a ``raise``
  statement (error text never reaches a digest; default object reprs
  embed addresses).

Known over-approximations: being *reachable* from ``to_dict`` does not
prove the flagged value flows into the returned dict, and sorting later
through a temporary is not recognised. Both directions are documented
in ``docs/STATIC_ANALYSIS.md``; a pragma with justification is the
escape hatch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import ProjectGraph
from repro.analysis.dataflow import chain, reachable_from, render_chain
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ProjectRule

#: Function/method names that start a digest path.
DIGEST_ROOT_NAMES = frozenset(
    {"to_dict", "manifest_extra", "canonical_json", "to_jsonable", "content_digest"}
)


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Statically set-typed, true sets only (no ``.keys()`` views).

    Unlike DET003's helper, dict views are excluded: dict iteration is
    insertion-ordered and therefore digest-stable when the insertions
    are; only genuine sets have hash-order iteration.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference", "copy",
        ):
            return _is_set_expr(node.func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    return False


def _local_set_names(fn_node: ast.AST) -> set[str]:
    """Names assigned a set-typed expression anywhere in the function."""
    names: set[str] = set()
    # Two passes so ``a = {...}; b = a | other`` resolves.
    for _ in range(2):
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_set_expr(node.value, names):
                    names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                annotated = isinstance(node.annotation, ast.Subscript) and isinstance(
                    node.annotation.value, ast.Name
                ) and node.annotation.value.id in ("set", "frozenset")
                if annotated or (node.value is not None and _is_set_expr(node.value, names)):
                    names.add(node.target.id)
    return names


def _nodes_under_raise(fn_node: ast.AST) -> set[int]:
    """ids of AST nodes inside ``raise`` statements (error-path text)."""
    under: set[int] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Raise):
            for sub in ast.walk(node):
                under.add(id(sub))
    return under


class DigestTaintRule(ProjectRule):
    """Flag order- and address-dependence in digest-reachable code."""

    rule_id = "DET005"
    title = "nondeterministic value in a digest-reachable function"
    rationale = "digest paths must be hash-order- and address-independent across processes"

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        """DET005 check: forward closure of digest roots, then local scan."""
        roots = [
            fn.qname
            for fn in graph.sorted_functions()
            if fn.qname.rsplit(".", 1)[-1] in DIGEST_ROOT_NAMES
        ]
        parents = reachable_from(graph, roots)
        for qname in sorted(parents):
            fn = graph.functions[qname]
            ctx = graph.context_for(fn)
            via = render_chain(graph, list(reversed(chain(parents, qname))))
            set_names = _local_set_names(fn.node)
            raised = _nodes_under_raise(fn.node)
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(
                    node.iter, set_names
                ):
                    yield self.finding_at(
                        ctx, node.iter,
                        "iteration over a set on a digest path "
                        f"(reached via {via}); wrap in sorted(...)",
                    )
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        if _is_set_expr(gen.iter, set_names):
                            yield self.finding_at(
                                ctx, gen.iter,
                                "comprehension over a set on a digest path "
                                f"(reached via {via}); wrap in sorted(...)",
                            )
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    if node.func.id == "id" and len(node.args) == 1:
                        yield self.finding_at(
                            ctx, node,
                            "`id()` on a digest path is a process address "
                            f"(reached via {via}); use a stable key",
                        )
                    elif node.func.id == "repr" and id(node) not in raised:
                        yield self.finding_at(
                            ctx, node,
                            "`repr()` on a digest path may embed an object address "
                            f"(reached via {via}); serialise explicit fields",
                        )
                elif (
                    isinstance(node, ast.FormattedValue)
                    and node.conversion == ord("r")
                    and id(node) not in raised
                ):
                    yield self.finding_at(
                        ctx, node,
                        "f-string `!r` on a digest path may embed an object address "
                        f"(reached via {via}); format explicit fields",
                    )
