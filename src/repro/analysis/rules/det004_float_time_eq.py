"""DET004 — float equality comparison on simulated time.

Simulated time is a float accumulated by repeated addition
(``self.now + delay``), so two event times that are *conceptually* equal
can differ by one ULP. ``loop.now == deadline`` then fires on one
platform and not another — the worst kind of nondeterminism, invisible
until an experiment is re-run elsewhere. Compare with ``<=`` /
``>=`` bands or ``math.isclose`` instead.

Heuristic: flag ``==`` / ``!=`` where either side mentions an attribute
named ``now`` or a bare name that is conventionally a simulation
timestamp (``now``, ``when``, ``deadline``, ``sim_time``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

TIME_NAMES = frozenset({"now", "when", "deadline", "sim_time"})


def _mentions_sim_time(node: ast.expr) -> str | None:
    """The time-ish name a subtree mentions, or None."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "now":
            return "now"
        if isinstance(sub, ast.Name) and sub.id in TIME_NAMES:
            return sub.id
    return None


class FloatTimeEqualityRule(Rule):
    """Flag ==/!= comparisons that involve simulated-time values."""

    rule_id = "DET004"
    title = "float equality on simulated time"
    rationale = "event times accumulate float error; use <=/>= bands or math.isclose"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """DET004 check: equality comparisons touching time-named values."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # ``x is None`` style guards use Is, never reach here.
                name = _mentions_sim_time(left) or _mentions_sim_time(right)
                if name:
                    yield self.finding(
                        ctx,
                        node,
                        f"equality comparison on simulated time (`{name}`); "
                        "floats accumulate error — use <=/>= or math.isclose",
                    )
                    break
