"""DET002 — no global :mod:`random` state outside ``util/rand.py``.

Global ``random.*`` calls share one hidden stream: any new caller shifts
the values every existing caller sees, so two runs of the same seed stop
agreeing the moment anyone adds a feature. ``DeterministicRandom`` exists
precisely to prevent that — every component forks a named sub-stream.
An unseeded ``random.Random()`` is just as bad: it seeds from the OS.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

# Module-level functions that mutate or read the shared global stream.
GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)


class GlobalRandomRule(Rule):
    """Flag global-stream randomness and unseeded Random() construction."""

    rule_id = "DET002"
    title = "global/unseeded randomness"
    rationale = "draw from DeterministicRandom.fork(name) so streams are independent"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """DET002 check: global random.* references and bare Random()."""
        for node, resolved in ctx.resolved_references():
            module, _, fn = resolved.rpartition(".")
            if module == "random" and fn in GLOBAL_RANDOM_FNS:
                yield self.finding(
                    ctx,
                    node,
                    f"`{resolved}` uses the global random stream; draw from "
                    "DeterministicRandom instead",
                )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if ctx.resolve(dotted) == "random.Random" and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "`random.Random()` without a seed is nondeterministic; "
                    "pass an explicit seed or use DeterministicRandom",
                )
