"""Rule base class and shared AST helpers.

A rule is stateless: ``check(ctx)`` yields findings for one file. The
engine owns pragma/allowlist/baseline filtering, so rules report every
violation they see and nothing else.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.context import FileContext, dotted_name
from repro.analysis.findings import Finding, Severity


class Rule:
    """One lint rule with a stable ID (DET001, PERF001, …)."""

    rule_id: ClassVar[str]
    title: ClassVar[str]
    severity: ClassVar[Severity] = Severity.ERROR
    rationale: ClassVar[str] = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation in ``ctx``; the engine filters them."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            source_line=ctx.line_text(line),
        )


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets (``loop.schedule`` -> "loop.schedule")."""
    return dotted_name(node.func)


def decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Dotted names of all decorators, unwrapping calls like ``lru_cache()``."""
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted:
            names.append(dotted)
    return names
