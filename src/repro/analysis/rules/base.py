"""Rule base classes and shared AST helpers.

A rule is stateless: ``check(ctx)`` yields findings for one file. The
engine owns pragma/allowlist/baseline filtering, so rules report every
violation they see and nothing else.

Whole-program rules subclass :class:`ProjectRule` instead: the engine
parses every file first, builds one
:class:`~repro.analysis.callgraph.ProjectGraph`, and calls
``check_project(graph)`` once per rule. Their findings go through the
same pragma/allowlist/baseline filters as per-file findings.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.analysis.context import FileContext, dotted_name
from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.analysis.callgraph import ProjectGraph


class Rule:
    """One lint rule with a stable ID (DET001, PERF001, …)."""

    rule_id: ClassVar[str]
    title: ClassVar[str]
    severity: ClassVar[Severity] = Severity.ERROR
    rationale: ClassVar[str] = ""
    #: True for :class:`ProjectRule` subclasses (engine dispatch flag).
    whole_program: ClassVar[bool] = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation in ``ctx``; the engine filters them."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            source_line=ctx.line_text(line),
        )


class ProjectRule(Rule):
    """A rule that analyses the whole program instead of one file.

    ``check`` is a per-file no-op; the engine calls ``check_project``
    once with the graph built over every parsed file. Findings are
    anchored with :meth:`finding_at` since there is no single ``ctx``.
    """

    whole_program: ClassVar[bool] = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Per-file pass: nothing to do for a whole-program rule."""
        return iter(())

    def check_project(self, graph: "ProjectGraph") -> Iterator[Finding]:
        """Yield every violation visible in the whole-program graph."""
        raise NotImplementedError

    def finding_at(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding in an explicitly-supplied file context."""
        return self.finding(ctx, node, message)


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets (``loop.schedule`` -> "loop.schedule")."""
    return dotted_name(node.func)


def decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Dotted names of all decorators, unwrapping calls like ``lru_cache()``."""
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted:
            names.append(dotted)
    return names
