"""DET006 — RNG escape: sim-domain call chains reaching the global RNG.

DET002 flags a ``random.random()`` call in the file that makes it.
DET006 answers the harder question: can *experiment or net code* reach
one — possibly through several layers of helpers in other modules?
Those domains must draw exclusively from a seeded
:class:`~repro.util.rand.DeterministicRandom` (usually a named
``fork``); a chain that bottoms out in the process-global RNG ties the
run to interpreter state that ``repro verify`` cannot replay.

Mechanics: every function whose *direct* body references a
``random.<draw>`` module function (or instantiates ``random.Random()``
with no seed argument) is a sink. The backward closure of those sinks
over the project call graph is intersected with the sim domain
(``repro.experiments``, ``repro.net``, ``repro.webrtc``); each domain
function in the closure gets one finding at its definition, with the
chain to the sink rendered in the message. Functions that only *take* a
``DeterministicRandom`` are untouched — the rule keys on global-RNG
references, not on randomness per se.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import FunctionInfo, ProjectGraph
from repro.analysis.context import dotted_name
from repro.analysis.dataflow import chain, reaches, render_chain
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ProjectRule
from repro.analysis.rules.det002_global_random import GLOBAL_RANDOM_FNS

#: Module prefixes that form the deterministic simulation domain.
SIM_DOMAIN_PREFIXES = ("repro.experiments", "repro.net", "repro.webrtc")


def _module_in_domain(module: str) -> bool:
    """_module_in_domain check: is ``module`` inside the sim domain?"""
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in SIM_DOMAIN_PREFIXES
    )


def _is_global_rng_sink(graph: ProjectGraph, fn: "FunctionInfo") -> bool:
    """Does the function body reference the global RNG directly?

    True for ``random.<draw>`` module functions and for an unseeded
    ``random.Random()`` construction (which seeds from the OS).
    """
    for _node, ref in fn.external_refs:
        module, _, name = ref.rpartition(".")
        if module == "random" and name in GLOBAL_RANDOM_FNS:
            return True
    ctx = graph.context_for(fn)
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is None:
            continue
        if ctx.resolve(dotted) == "random.Random" and not node.args and not node.keywords:
            return True
    return False


class RngEscapeRule(ProjectRule):
    """Flag sim-domain chains that bottom out in the global RNG."""

    rule_id = "DET006"
    title = "sim-domain call chain reaches the process-global RNG"
    rationale = "experiment and net code must draw from a seeded DeterministicRandom"

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        """DET006 check: backward closure from global-RNG sinks."""
        sinks: set[str] = set()
        for fn in graph.sorted_functions():
            if _is_global_rng_sink(graph, fn):
                sinks.add(fn.qname)
        parents = reaches(graph, sinks)
        for qname in sorted(parents):
            fn = graph.functions[qname]
            if not _module_in_domain(fn.module):
                continue
            via = render_chain(graph, chain(parents, qname))
            if qname in sinks:
                message = (
                    f"{fn.short} uses the process-global RNG; "
                    "draw from a seeded DeterministicRandom fork instead"
                )
            else:
                message = (
                    f"{fn.short} reaches the process-global RNG via {via}; "
                    "thread a seeded DeterministicRandom through the chain"
                )
            yield self.finding_at(graph.context_for(fn), fn.node, message)
