"""SHARD001 — shared mutable module state written from simulation code.

The sharded-swarm plan (ROADMAP) splits one simulation across worker
processes. Module-level mutable objects — a module dict a ``Network``
method appends to, a class attribute an experiment rebinds — are
invisible coupling under that split: each worker gets its own copy, the
copies silently diverge, and the digests stop agreeing with nothing to
point at. The same state is also why two sequential runs in one process
can differ (run 2 starts with run 1's leftovers).

This rule flags, from within the sim domain (``repro.experiments``,
``repro.net``, ``repro.webrtc``) **plus** anything those modules can
reach through the call graph:

- writes to a module-level mutable binding (augmented assignment,
  rebinding, or a mutating method call like ``.append``/``.update``
  on it), whether the binding lives in the writer's module or is
  imported from another project module;
- rebinding a class attribute through ``cls.name = ...`` or
  ``SomeClass.name = ...`` at runtime.

Definition-time hooks (``__init_subclass__``, ``__set_name__``) are
exempt — they run at class creation, before any simulation starts, so
every process observes the same result. Reads are never flagged:
module-level *constants* (even mutable ones that are never written) are
fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import FunctionInfo, ProjectGraph
from repro.analysis.context import dotted_name
from repro.analysis.dataflow import reachable_from
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ProjectRule
from repro.analysis.rules.det006_rng_escape import _module_in_domain

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "add", "discard", "update", "setdefault", "popitem",
        "appendleft", "extendleft", "popleft", "rotate",
    }
)

#: Class-creation hooks that run at definition time, not simulation time.
DEFINITION_TIME_HOOKS = frozenset({"__init_subclass__", "__set_name__"})


def _state_target(graph: ProjectGraph, fn: FunctionInfo, name: str) -> str | None:
    """Resolve a bare name in ``fn`` to a module-state qname, if any.

    Checks the writer's own module first, then the import table (state
    imported from another project module is still shared).
    """
    own = f"{fn.module}.{name}"
    if own in graph.module_state:
        return own
    resolved = graph.context_for(fn).resolve(name)
    if resolved is not None and resolved in graph.module_state:
        return resolved
    return None


def _is_local(fn: FunctionInfo, name: str, locals_: set[str]) -> bool:
    """_is_local check: name is a parameter or assigned locally first."""
    return name in locals_


def _bound_names(target: ast.expr) -> Iterator[str]:
    """Names a target expression *binds* — ``x``, ``(a, b)``, ``*rest``.

    ``d[k] = v`` and ``obj.attr = v`` bind nothing: they mutate the
    base, which is exactly what SHARD001 is looking for, so the base
    name must not be collected as a local.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bound_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _collect_locals(fn: FunctionInfo) -> set[str]:
    """Parameter names plus every name the function binds itself."""
    names: set[str] = set()
    args = fn.node.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_bound_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_bound_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_bound_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_bound_names(item.optional_vars))
        elif isinstance(node, ast.comprehension):
            names.update(_bound_names(node.target))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are attributed to this host function; their
            # parameters are locals from the host's point of view.
            sub_args = node.args
            for arg in (
                list(sub_args.posonlyargs) + list(sub_args.args) + list(sub_args.kwonlyargs)
            ):
                names.add(arg.arg)
            if sub_args.vararg:
                names.add(sub_args.vararg.arg)
            if sub_args.kwarg:
                names.add(sub_args.kwarg.arg)
            names.add(node.name)
    # `global X` makes X a module binding, never a local.
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            names.difference_update(node.names)
    return names


class SharedStateRule(ProjectRule):
    """Flag runtime writes to module-level/class-level shared state."""

    rule_id = "SHARD001"
    title = "shared mutable module state written from simulation code"
    rationale = "module/class state diverges per process under sharding; pass state explicitly"

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        """SHARD001 check: sim domain + its forward closure, write sites."""
        domain_roots = [
            fn.qname for fn in graph.sorted_functions() if _module_in_domain(fn.module)
        ]
        in_scope = set(reachable_from(graph, domain_roots))
        for qname in sorted(in_scope):
            fn = graph.functions[qname]
            if fn.node.name in DEFINITION_TIME_HOOKS:
                continue
            yield from self._check_function(graph, fn)

    def _check_function(
        self, graph: ProjectGraph, fn: FunctionInfo
    ) -> Iterator[Finding]:
        """Scan one in-scope function for shared-state write sites."""
        ctx = graph.context_for(fn)
        locals_ = _collect_locals(fn)

        def state_of(name: str) -> str | None:
            if _is_local(fn, name, locals_):
                return None
            return _state_target(graph, fn, name)

        for node in ast.walk(fn.node):
            # global-X rebinding / augmented assignment.
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        state = _state_target(graph, fn, target.id)
                        has_global = any(
                            isinstance(sub, ast.Global) and target.id in sub.names
                            for sub in ast.walk(fn.node)
                        )
                        if state is not None and has_global:
                            yield self.finding_at(
                                ctx, node,
                                f"{fn.short} rebinds module state `{state}`; "
                                "pass state explicitly instead of sharing it",
                            )
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = target.value
                        if isinstance(base, ast.Name):
                            state = state_of(base.id)
                            if state is not None:
                                yield self.finding_at(
                                    ctx, node,
                                    f"{fn.short} writes into module state `{state}`; "
                                    "shared containers diverge per process",
                                )
                # cls.attr = ... / SomeClass.attr = ... rebinding.
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    base_name = dotted_name(target.value)
                    if base_name is None:
                        continue
                    is_cls = base_name == "cls" and fn.cls is not None
                    if is_cls or self._is_project_class(graph, ctx, fn, base_name):
                        yield self.finding_at(
                            ctx, node,
                            f"{fn.short} rebinds class attribute "
                            f"`{base_name}.{target.attr}` at runtime; class state "
                            "is shared across the process and lost across shards",
                        )
            # Mutating method calls on module-state receivers.
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in MUTATING_METHODS:
                    continue
                receiver = node.func.value
                if isinstance(receiver, ast.Name):
                    state = state_of(receiver.id)
                    if state is not None:
                        yield self.finding_at(
                            ctx, node,
                            f"{fn.short} mutates module state `{state}` via "
                            f".{node.func.attr}(); shared containers diverge "
                            "per process",
                        )

    @staticmethod
    def _is_project_class(graph, ctx, fn: FunctionInfo, name: str) -> bool:
        """Is ``name`` a project class (not self/an instance variable)?"""
        if name in ("self",):
            return False
        for candidate in (ctx.resolve(name), f"{fn.module}.{name}"):
            if candidate is not None and candidate in graph.classes:
                return True
        return False
