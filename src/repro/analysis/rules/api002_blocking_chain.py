"""API002 — blocking primitives reachable from the simulation domain.

API001 flags a ``time.sleep`` or ``subprocess`` reference in the file
that makes it. API002 lifts the same contract to call chains: no
function in the sim domain (``repro.experiments``, ``repro.net``,
``repro.webrtc``) may *reach* a blocking primitive, even through
helpers defined in modules where the primitive itself is sanctioned.

That last clause is the point of the rule and is deliberate: a pragma
or allowlist entry on the blocking *source* (say, a harness utility
that shells out to git) sanctions the source module using it — it does
**not** license experiment code to call through it. The sim domain is a
hard boundary: virtual time only. So API002 taint ignores per-line
pragmas and allowlist entries on intermediate links; suppressing a
finding requires a pragma at the *domain function* that starts the
chain, which is exactly the line a reviewer should see.

Sinks are API001's vocabulary: ``time.sleep``, ``os.system``,
``os.popen``, ``input``, and any reference into the forbidden modules
(``socket``, ``subprocess``, ``requests``, ``urllib.request``,
``http.client``, ``asyncio``).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.callgraph import FunctionInfo, ProjectGraph
from repro.analysis.dataflow import chain, reaches, render_chain
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ProjectRule
from repro.analysis.rules.api001_blocking import BLOCKING_CALLS, FORBIDDEN_MODULES
from repro.analysis.rules.det006_rng_escape import _module_in_domain


def _is_blocking_sink(fn: FunctionInfo) -> bool:
    """Does the function body reference a blocking primitive directly?"""
    for _node, ref in fn.external_refs:
        if ref in BLOCKING_CALLS:
            return True
        root = ref.split(".", 1)[0]
        if root in FORBIDDEN_MODULES or ref.rsplit(".", 1)[0] in FORBIDDEN_MODULES:
            return True
    return False


class BlockingChainRule(ProjectRule):
    """Flag sim-domain chains that reach a blocking primitive."""

    rule_id = "API002"
    title = "sim-domain call chain reaches a blocking primitive"
    rationale = "simulation code runs on virtual time; blocking calls stall every peer at once"

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        """API002 check: backward closure from blocking sinks."""
        sinks = {fn.qname for fn in graph.sorted_functions() if _is_blocking_sink(fn)}
        parents = reaches(graph, sinks)
        for qname in sorted(parents):
            fn = graph.functions[qname]
            if not _module_in_domain(fn.module):
                continue
            via = render_chain(graph, chain(parents, qname))
            if qname in sinks:
                message = f"{fn.short} calls a blocking primitive directly"
            else:
                message = f"{fn.short} reaches a blocking primitive via {via}"
            yield self.finding_at(
                graph.context_for(fn), fn.node,
                message + "; simulation code must stay on virtual time",
            )
