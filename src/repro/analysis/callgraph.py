"""Whole-program symbol table and call graph for reprolint v2.

PR 1's rules are deliberately file-local: DET001 can say "this line
reads the wall clock" without knowing anything about the rest of the
tree. The cross-module rules (DET005 digest-path taint, DET006 RNG
escape, SHARD001 shared module state, API002 cross-call blocking) need
the opposite view — *who can reach what* — so this module builds a
:class:`ProjectGraph` over every parsed :class:`FileContext` in one
lint invocation:

- a **symbol table** mapping qualified names (``repro.net.clock.
  EventLoop.step``) to their defining AST nodes,
- a **call graph** whose edges are resolved call sites between project
  functions, and
- per-function **external references** (``time.sleep``,
  ``random.random``) resolved through each file's import table.

Resolution is intentionally conservative and documented in
``docs/STATIC_ANALYSIS.md``: it follows direct names, imported symbols,
``self.method()`` / ``cls.method()`` (including project base classes),
``self.attr.method()`` where ``attr`` was assigned a project class in
``__init__``, and local ``var = ProjectClass(...)`` instantiations.
Calls through arbitrary objects, containers, or higher-order functions
are *not* resolved — the graph under-approximates edges and the rules
built on it over-approximate taint within the edges it has. Nested
``def``s are attributed to their enclosing top-level function or
method, which over-approximates reachability (a chain through a nested
closure counts as a chain through its host).

Everything is ordered: modules, functions, and edge sets sort by name,
so whole-program findings are as deterministic as the per-file ones.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.context import FileContext, dotted_name

#: Constructors whose module-level result is shared mutable state when
#: written from simulation code (see SHARD001).
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)


def module_name_for(relpath: str) -> str:
    """Dotted module name for a lint-root-relative path.

    ``src/repro/net/clock.py`` -> ``repro.net.clock`` (a leading ``src``
    component is a layout convention, not a package), ``pkg/__init__.py``
    -> ``pkg``. Single files lint as their bare stem.
    """
    parts = list(pathlib.PurePosixPath(relpath).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "__root__"


@dataclass
class CallSite:
    """One resolved project-internal call: caller AST node -> callee."""

    node: ast.AST
    callee: str  # qualified name of the resolved project function


@dataclass
class FunctionInfo:
    """One project function or method in the symbol table."""

    qname: str  # e.g. "repro.net.clock.EventLoop.step"
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: "ClassInfo | None" = None
    calls: list[CallSite] = field(default_factory=list)
    #: (node, resolved dotted path) for references that resolve through
    #: imports but not to a project symbol — stdlib and third-party.
    external_refs: list[tuple[ast.AST, str]] = field(default_factory=list)

    @property
    def short(self) -> str:
        """``Class.method`` / ``function`` — the name used in messages."""
        prefix = f"{self.module}."
        return self.qname[len(prefix):] if self.qname.startswith(prefix) else self.qname


@dataclass
class ClassInfo:
    """One project class: methods, resolvable bases, typed attributes."""

    qname: str
    module: str
    path: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  # project class qnames only
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.attr = ProjectClass(...)`` assignments seen in any method.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleState:
    """One module-level mutable binding (SHARD001's subject)."""

    qname: str  # "repro.harness.registry._REGISTRY"
    module: str
    path: str
    node: ast.AST
    kind: str  # "list", "dict", ...


class ProjectGraph:
    """The whole-program view: symbols, call edges, external references."""

    def __init__(self) -> None:
        self.contexts: dict[str, FileContext] = {}  # module name -> ctx
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.module_state: dict[str, ModuleState] = {}
        #: caller qname -> sorted callee qnames (derived from calls).
        self.edges: dict[str, list[str]] = {}

    # -- queries ---------------------------------------------------------

    def context_for(self, fn: FunctionInfo) -> FileContext:
        """The file context the function was parsed from."""
        return self.contexts[fn.module]

    def callers_of(self, qname: str) -> list[str]:
        """Sorted qnames of functions with an edge into ``qname``."""
        return sorted(c for c, callees in self.edges.items() if qname in callees)

    def sorted_functions(self) -> list[FunctionInfo]:
        """Every function, sorted by qualified name (deterministic walks)."""
        return [self.functions[q] for q in sorted(self.functions)]

    def resolve_method(self, class_qname: str, name: str) -> FunctionInfo | None:
        """Look ``name`` up on a class, walking project base classes."""
        seen: set[str] = set()
        queue = [class_qname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            queue.extend(cls.bases)
        return None


def _mutable_kind(value: ast.expr) -> str | None:
    """The constructor kind when ``value`` builds a mutable container."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in MUTABLE_CONSTRUCTORS:
            return value.func.id
    return None


def iter_resolved(ctx: FileContext, root: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Yield (node, resolved dotted path) for name chains under ``root``.

    The per-node version of :meth:`FileContext.resolved_references`,
    scoped to one function body instead of the whole file.
    """
    claimed: set[int] = set()
    for node in ast.walk(root):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        if id(node) in claimed:
            continue
        dotted = dotted_name(node)
        if dotted is None:
            continue
        inner = node
        while isinstance(inner, ast.Attribute):
            inner = inner.value
            claimed.add(id(inner))
        resolved = ctx.resolve(dotted)
        if resolved is not None:
            yield node, resolved


def build_project(contexts: dict[str, FileContext]) -> ProjectGraph:
    """Build the graph from ``{relpath: FileContext}`` in three passes.

    Pass 1 declares every module-level function, class, method, and
    mutable binding. Pass 2 collects ``self.attr = ProjectClass(...)``
    attribute types. Pass 3 links call sites and external references.
    """
    graph = ProjectGraph()
    by_module: list[tuple[str, str, FileContext]] = sorted(
        (module_name_for(relpath), relpath, ctx) for relpath, ctx in contexts.items()
    )

    # -- pass 1: declarations --------------------------------------------
    for module, relpath, ctx in by_module:
        graph.contexts[module] = ctx
        for stmt in ctx.tree.body:  # type: ignore[attr-defined]
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{module}.{stmt.name}"
                graph.functions[qname] = FunctionInfo(qname, module, relpath, stmt)
            elif isinstance(stmt, ast.ClassDef):
                cls_qname = f"{module}.{stmt.name}"
                cls = ClassInfo(cls_qname, module, relpath, stmt)
                graph.classes[cls_qname] = cls
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qname = f"{cls_qname}.{sub.name}"
                        info = FunctionInfo(qname, module, relpath, sub, cls=cls)
                        graph.functions[qname] = info
                        cls.methods[sub.name] = info
            else:
                targets: list[ast.Name] = []
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    targets = [stmt.target]
                    value = stmt.value
                if value is None:
                    continue
                kind = _mutable_kind(value)
                if kind is None:
                    continue
                for target in targets:
                    qname = f"{module}.{target.id}"
                    graph.module_state[qname] = ModuleState(qname, module, relpath, stmt, kind)

    # Resolve class bases now that every class is declared.
    for cls in graph.classes.values():
        ctx = graph.contexts[cls.module]
        for base in cls.node.bases:
            dotted = dotted_name(base)
            if dotted is None:
                continue
            resolved = ctx.resolve(dotted) or f"{cls.module}.{dotted}"
            if resolved in graph.classes:
                cls.bases.append(resolved)

    # -- pass 2: attribute types (self.attr = ProjectClass(...)) ---------
    for fn in graph.sorted_functions():
        if fn.cls is None:
            continue
        ctx = graph.contexts[fn.module]
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            callee_cls = _resolve_class(graph, ctx, fn.module, node.value.func)
            if callee_cls is None:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    fn.cls.attr_types.setdefault(target.attr, callee_cls)

    # -- pass 3: call sites and external references -----------------------
    for fn in graph.sorted_functions():
        _link_function(graph, fn)
    graph.edges = {
        qname: sorted({site.callee for site in fn.calls})
        for qname, fn in graph.functions.items()
    }
    return graph


def _resolve_class(
    graph: ProjectGraph, ctx: FileContext, module: str, func: ast.expr
) -> str | None:
    """The project class qname a constructor expression refers to."""
    dotted = dotted_name(func)
    if dotted is None:
        return None
    resolved = ctx.resolve(dotted)
    for candidate in (resolved, f"{module}.{dotted}"):
        if candidate is not None and candidate in graph.classes:
            return candidate
    return None


def _project_target(graph: ProjectGraph, resolved: str) -> str | None:
    """Map a resolved dotted path to a project function, if it is one.

    A class resolves to its ``__init__`` when present (constructing is
    calling), otherwise to a synthetic edge on the class qname so
    reachability still sees the instantiation.
    """
    if resolved in graph.functions:
        return resolved
    if resolved in graph.classes:
        init = graph.resolve_method(resolved, "__init__")
        return init.qname if init is not None else resolved
    # "pkg.mod.Class.method" referenced as an attribute chain.
    head, _, meth = resolved.rpartition(".")
    if head in graph.classes:
        found = graph.resolve_method(head, meth)
        if found is not None:
            return found.qname
    return None


def _link_function(graph: ProjectGraph, fn: FunctionInfo) -> None:
    """Populate one function's call sites and external references."""
    ctx = graph.contexts[fn.module]
    module = fn.module

    # Local instantiation types: var = ProjectClass(...).
    local_types: dict[str, str] = {}
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            cls_qname = _resolve_class(graph, ctx, module, node.value.func)
            if cls_qname is not None:
                local_types[node.targets[0].id] = cls_qname

    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        target: str | None = None

        if parts[0] in ("self", "cls") and fn.cls is not None:
            if len(parts) == 2:
                found = graph.resolve_method(fn.cls.qname, parts[1])
                target = found.qname if found is not None else None
            elif len(parts) == 3:
                attr_cls = fn.cls.attr_types.get(parts[1])
                if attr_cls is not None:
                    found = graph.resolve_method(attr_cls, parts[2])
                    target = found.qname if found is not None else None
        elif parts[0] in local_types:
            if len(parts) == 2:
                found = graph.resolve_method(local_types[parts[0]], parts[1])
                target = found.qname if found is not None else None
        else:
            resolved = ctx.resolve(dotted)
            if resolved is not None:
                target = _project_target(graph, resolved)
            if target is None and len(parts) <= 2:
                # Same-module reference: bare function or Class.method.
                target = _project_target(graph, f"{module}.{dotted}")

        if target is not None:
            fn.calls.append(CallSite(node, target))

    for ref_node, resolved in iter_resolved(ctx, fn.node):
        if _project_target(graph, resolved) is None:
            fn.external_refs.append((ref_node, resolved))
