"""The lint engine: walk files, run rules, filter, decide the exit code.

The pipeline has two phases. Phase 1 parses every file once into a
:class:`FileContext` and runs the per-file rules. Phase 2 builds one
:class:`~repro.analysis.callgraph.ProjectGraph` over *all* parsed files
and runs the whole-program rules (:class:`ProjectRule`) against it.
Findings from both phases then pass the same three filters —

1. **pragmas** — ``# repro: allow[RULE]`` on the reported line,
2. **allowlist** — ``[tool.reprolint.allow]`` path globs (structural
   exemptions like ``util/rand.py``),
3. **baseline** — grandfathered fingerprints from a previous run.

Only what survives all three counts toward the exit code, and only at
:attr:`Severity.ERROR`. A ``report_only`` scope (``lint --changed``)
restricts which files *report* findings; the whole-program graph is
always built over everything so cross-module chains stay visible.

On full (unscoped) runs the engine also cross-checks the baseline:
fingerprints that no longer match any finding are **stale** and fail
the run — a baseline entry that outlives its violation is a latent
hole that would silently mask the next regression at that line.

The walk and the output are fully sorted — the linter holds itself to
the determinism contract it enforces.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.analysis.baseline import load_baseline, split_baselined
from repro.analysis.callgraph import build_project
from repro.analysis.config import LintConfig, load_config
from repro.analysis.context import FileContext, build_context
from repro.analysis.findings import Finding, Severity, assign_occurrences
from repro.analysis.rules import ALL_RULES, RULES_BY_ID

SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclass
class LintRun:
    """Outcome of one engine invocation."""

    findings: list[Finding] = field(default_factory=list)  # new, unsuppressed
    suppressed: list[Finding] = field(default_factory=list)  # pragma/allowlist
    baselined: list[Finding] = field(default_factory=list)
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: Baseline fingerprints that matched nothing (full runs only).
    stale_fingerprints: list[str] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def errors(self) -> list[Finding]:
        """New findings that gate the build."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def infos(self) -> list[Finding]:
        """New soft findings (reported, never fatal)."""
        return [f for f in self.findings if f.severity is Severity.INFO]

    @property
    def exit_code(self) -> int:
        """0 clean, 1 new errors or stale baseline entries, 2 parse failure."""
        if self.parse_errors:
            return 2
        return 1 if (self.errors or self.stale_fingerprints) else 0


def iter_python_files(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of .py files."""
    files: set[pathlib.Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in SKIP_DIRS or part.endswith(".egg-info") for part in candidate.parts):
                    files.add(candidate.resolve())
    return sorted(files)


def _relpath(path: pathlib.Path, root: pathlib.Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: list[pathlib.Path | str],
    config: LintConfig | None = None,
    select: set[str] | None = None,
    baseline_override: pathlib.Path | None = None,
    report_only: set[str] | None = None,
) -> LintRun:
    """Lint ``paths`` and return the filtered, sorted results.

    ``select`` restricts to a set of rule IDs; ``baseline_override``
    replaces the configured baseline file (pass a nonexistent path to
    disable baselining). ``report_only`` — a set of root-relative paths
    — scopes *reporting* to those files while still parsing everything
    under ``paths`` for the whole-program graph; staleness checking is
    skipped on scoped runs (an unmatched fingerprint may belong to an
    unreported file).
    """
    resolved_paths = [pathlib.Path(p) for p in paths]
    if config is None:
        config = load_config(resolved_paths[0] if resolved_paths else None)
    rule_ids = sorted(select) if select else sorted(RULES_BY_ID)
    unknown = [rid for rid in rule_ids if rid not in RULES_BY_ID]
    if unknown:
        raise ValueError(f"unknown rule IDs: {', '.join(unknown)}")
    rules = [RULES_BY_ID[rid]() for rid in rule_ids]
    file_rules = [r for r in rules if not r.whole_program]
    project_rules = [r for r in rules if r.whole_program]

    run = LintRun()
    raw: list[Finding] = []
    suppressed: list[Finding] = []

    # -- phase 1: parse everything, run per-file rules on the report set --
    contexts: dict[str, FileContext] = {}
    for file_path in iter_python_files(resolved_paths):
        relpath = _relpath(file_path, config.root)
        if config.is_excluded(relpath):
            continue
        source = file_path.read_text(encoding="utf-8", errors="replace")
        try:
            ctx = build_context(relpath, source)
        except SyntaxError as exc:
            run.parse_errors.append((relpath, f"line {exc.lineno}: {exc.msg}"))
            continue
        contexts[relpath] = ctx
        if report_only is not None and relpath not in report_only:
            continue
        run.files_scanned += 1
        for rule in file_rules:
            for finding in rule.check(ctx):
                if ctx.suppressed(finding.line, finding.rule_id):
                    suppressed.append(finding)
                elif config.is_allowlisted(finding.rule_id, relpath):
                    suppressed.append(finding)
                else:
                    raw.append(finding)

    # -- phase 2: whole-program rules over every parsed file --------------
    if project_rules and contexts:
        graph = build_project(contexts)
        for rule in project_rules:
            for finding in rule.check_project(graph):
                if report_only is not None and finding.path not in report_only:
                    continue
                ctx = contexts.get(finding.path)
                if ctx is not None and ctx.suppressed(finding.line, finding.rule_id):
                    suppressed.append(finding)
                elif config.is_allowlisted(finding.rule_id, finding.path):
                    suppressed.append(finding)
                else:
                    raw.append(finding)

    numbered = assign_occurrences(raw)
    baseline_path = baseline_override if baseline_override is not None else config.baseline_path
    fingerprints = load_baseline(baseline_path)
    run.findings, run.baselined = split_baselined(numbered, fingerprints)
    run.suppressed = sorted(suppressed, key=lambda f: (f.path, f.line, f.rule_id))
    if report_only is None and fingerprints:
        matched = {f.fingerprint() for f in numbered}
        run.stale_fingerprints = sorted(fingerprints - matched)
    return run
