"""Linter configuration from ``[tool.reprolint]`` in pyproject.toml.

The shipped configuration is the contract for this repository::

    [tool.reprolint]
    baseline = "reprolint.baseline.json"
    exclude = ["*/egg-info/*"]

    [tool.reprolint.allow]
    DET001 = ["src/repro/util/perf.py"]
    DET002 = ["src/repro/util/rand.py"]

``allow`` maps a rule ID to fnmatch-style path globs (relative to the
directory containing pyproject.toml) where that rule is structurally
exempt — the two modules above are the *implementations* of the
deterministic clock/randomness facades and necessarily touch the real
primitives. Per-line exceptions use pragmas instead; see
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import pathlib
import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatch


@dataclass
class LintConfig:
    """Resolved linter configuration."""

    root: pathlib.Path
    allow: dict[str, list[str]] = field(default_factory=dict)
    exclude: list[str] = field(default_factory=list)
    baseline_path: pathlib.Path | None = None

    def is_allowlisted(self, rule_id: str, relpath: str) -> bool:
        """True when ``relpath`` matches an allow glob for ``rule_id``."""
        return any(
            fnmatch(relpath, glob) or fnmatch(relpath, glob.lstrip("/"))
            for glob in self.allow.get(rule_id.upper(), ())
        )

    def is_excluded(self, relpath: str) -> bool:
        """True when the file is excluded from scanning entirely."""
        return any(fnmatch(relpath, glob) for glob in self.exclude)


def find_pyproject(start: pathlib.Path) -> pathlib.Path | None:
    """Walk up from ``start`` to the first directory with a pyproject.toml."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate / "pyproject.toml"
    return None


def load_config(start: pathlib.Path | str | None = None) -> LintConfig:
    """Load ``[tool.reprolint]`` from the nearest pyproject.toml.

    Falls back to an empty config rooted at ``start`` (or the CWD) when
    no pyproject.toml exists, so the linter works on bare trees.
    """
    start_path = pathlib.Path(start) if start is not None else pathlib.Path.cwd()
    pyproject = find_pyproject(start_path)
    if pyproject is None:
        root = start_path if start_path.is_dir() else start_path.parent
        return LintConfig(root=root.resolve())
    data = tomllib.loads(pyproject.read_text())
    section = data.get("tool", {}).get("reprolint", {})
    root = pyproject.parent
    baseline = section.get("baseline")
    return LintConfig(
        root=root,
        allow={rule.upper(): list(globs) for rule, globs in section.get("allow", {}).items()},
        exclude=list(section.get("exclude", [])),
        baseline_path=(root / baseline) if baseline else None,
    )
