"""Lint findings: what a rule reports and how a baseline identifies it.

A finding pins a rule violation to ``path:line:col``. Its *fingerprint*
deliberately ignores the line number — it hashes the rule ID, the file,
the stripped source line, and an occurrence index — so baselines survive
unrelated edits that merely shift code up or down.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings gate CI (nonzero exit); ``INFO`` findings — the
    soft rules, e.g. DOC001 stub docstrings — are reported but never
    fail the build.
    """

    ERROR = "error"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str  # posix-style path relative to the lint root
    line: int
    col: int
    message: str
    source_line: str = ""
    occurrence: int = field(default=0, compare=False)

    @property
    def location(self) -> str:
        """``path:line:col`` — the clickable form used in text reports."""
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching."""
        material = f"{self.path}::{self.rule_id}::{self.source_line.strip()}::{self.occurrence}"
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON-report representation."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


def assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Number duplicate (path, rule, source-line) findings in file order.

    Two identical violations on identical source lines get occurrence
    indices 0, 1, … so their fingerprints stay distinct and a baseline
    entry suppresses exactly one of them.
    """
    counters: dict[tuple[str, str, str], int] = {}
    numbered: list[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)):
        key = (finding.path, finding.rule_id, finding.source_line.strip())
        index = counters.get(key, 0)
        counters[key] = index + 1
        numbered.append(
            Finding(
                rule_id=finding.rule_id,
                severity=finding.severity,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                source_line=finding.source_line,
                occurrence=index,
            )
        )
    return numbered
