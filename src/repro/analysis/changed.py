"""``lint --changed``: scope reporting to files touched vs a git ref.

Pre-commit lint on a growing tree should cost what the *change* costs,
not what the tree costs. This module asks git which paths differ from a
ref (default ``HEAD``; the working tree and index both count, plus
untracked ``.py`` files), and the engine then restricts *reporting* to
those files while still parsing everything — whole-program rules need
the full symbol table to see a chain that merely passes through a
changed file.

This module shells out to git and therefore lives outside the
simulation domain on purpose: the analysis tooling runs on real I/O,
the simulation never does, and API002 enforces exactly that boundary.
"""

from __future__ import annotations

import pathlib
import subprocess  # repro: allow[API001] lint tooling queries git; not simulation code


class ChangedFilesError(RuntimeError):
    """Raised when git cannot answer (not a repo, bad ref, no git)."""


def _git_lines(args: list[str], cwd: pathlib.Path) -> list[str]:
    """Run one git command and return its non-empty output lines."""
    try:
        proc = subprocess.run(  # repro: allow[API001] lint tooling queries git
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise ChangedFilesError(f"git {' '.join(args)}: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"exit code {proc.returncode}"
        raise ChangedFilesError(f"git {' '.join(args)}: {detail}")
    return [line for line in proc.stdout.splitlines() if line.strip()]


def changed_python_files(root: pathlib.Path, ref: str = "HEAD") -> set[str]:
    """Root-relative posix paths of ``.py`` files changed vs ``ref``.

    The union of ``git diff --name-only <ref>`` (committed + staged +
    working-tree edits relative to the ref) and untracked files, so a
    brand-new module is linted before its first ``git add``. Deleted
    files drop out naturally later: the engine only reports on files it
    can parse.
    """
    toplevel = _git_lines(["rev-parse", "--show-toplevel"], cwd=root)
    repo_root = pathlib.Path(toplevel[0])
    names = _git_lines(["diff", "--name-only", ref, "--"], cwd=root)
    # --full-name: diff prints toplevel-relative paths but ls-files
    # prints cwd-relative ones; force both onto the same base.
    names += _git_lines(
        ["ls-files", "--others", "--exclude-standard", "--full-name"], cwd=root
    )
    out: set[str] = set()
    for name in names:
        if not name.endswith(".py"):
            continue
        absolute = repo_root / name
        try:
            out.add(absolute.relative_to(root.resolve()).as_posix())
        except ValueError:
            # Changed file outside the lint root (e.g. tests/ when
            # linting src/): not in scope, skip it.
            continue
    return out
