"""Linter command line: ``python -m repro.analysis`` / ``repro-lint``.

Usage::

    repro-lint src/repro                  # lint, exit 1 on new errors
    repro-lint --format json src/repro    # machine-readable report
    repro-lint --write-baseline src/repro # grandfather current findings
    repro-lint --changed src/repro        # report only files changed vs HEAD
    repro-lint --changed main src/repro   # ... vs a branch/ref
    repro-lint --prune src/repro          # drop stale baseline entries
    repro-lint --list-rules               # the rule catalogue
    repro-lint --select DET001,PERF001 .  # subset of rules

Also mounted as ``python -m repro lint`` in the main CLI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.analysis.baseline import write_baseline
from repro.analysis.changed import ChangedFilesError, changed_python_files
from repro.analysis.config import load_config
from repro.analysis.engine import lint_paths
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import ALL_RULES
from repro.util.tables import render_table


def build_parser() -> argparse.ArgumentParser:
    """Construct the linter's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & simulation-safety linter for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format")
    parser.add_argument("--select", default="",
                        help="comma-separated rule IDs to run (default: all)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (overrides [tool.reprolint].baseline)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file and exit 0")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None, metavar="REF",
                        help="report only files changed vs a git ref (default HEAD); "
                             "whole-program rules still analyse the full tree")
    parser.add_argument("--prune", action="store_true",
                        help="rewrite the baseline without stale fingerprints and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also list baselined and suppressed findings")
    return parser


def list_rules() -> str:
    """The rule catalogue as a table."""
    rows = [
        [rule.rule_id, rule.severity.value, rule.title, rule.rationale]
        for rule in ALL_RULES
    ]
    return render_table(["id", "severity", "title", "rationale"], rows)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    select = {rid.strip().upper() for rid in args.select.split(",") if rid.strip()} or None
    config = load_config(pathlib.Path(args.paths[0]) if args.paths else None)
    baseline_override = pathlib.Path(args.baseline) if args.baseline else None

    report_only: set[str] | None = None
    if args.changed is not None:
        if args.prune:
            # Staleness is only decidable on a full run: an unmatched
            # fingerprint may belong to a file outside the change set.
            print("repro-lint: --prune cannot be combined with --changed",
                  file=sys.stderr)
            return 2
        try:
            report_only = changed_python_files(config.root, args.changed)
        except ChangedFilesError as exc:
            print(f"repro-lint: --changed: {exc}", file=sys.stderr)
            return 2
        if not report_only:
            print(f"repro-lint: no Python files changed vs {args.changed}; nothing to report")
            return 0

    try:
        run = lint_paths(
            [pathlib.Path(p) for p in args.paths],
            config=config,
            select=select,
            baseline_override=baseline_override,
            report_only=report_only,
        )
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if run.files_scanned == 0 and not run.parse_errors:
        if report_only is not None:
            # Every changed file sits outside the lint paths (or was
            # deleted); an empty scope is a clean result, not a typo.
            print(f"repro-lint: no changed files under: {', '.join(args.paths)}")
            return 0
        # A typo'd path must not read as a clean CI gate.
        print(f"repro-lint: no Python files found under: {', '.join(args.paths)}",
              file=sys.stderr)
        return 2

    if args.write_baseline or args.prune:
        target = baseline_override or config.baseline_path
        if target is None:
            print("repro-lint: no baseline path configured (set [tool.reprolint].baseline "
                  "or pass --baseline)", file=sys.stderr)
            return 2
        if args.prune:
            # Keep only fingerprints that still match a finding; new
            # findings stay new — pruning never grandfathers anything.
            write_baseline(target, run.baselined)
            print(f"pruned {len(run.stale_fingerprints)} stale fingerprint(s); "
                  f"{len(run.baselined)} kept in {target}")
        else:
            write_baseline(target, run.findings + run.baselined)
            print(f"wrote {len(run.findings) + len(run.baselined)} fingerprint(s) to {target}")
        return 0

    print(render_json(run) if args.format == "json" else render_text(run, verbose=args.verbose))
    return run.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
