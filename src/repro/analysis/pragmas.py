"""``# repro: allow[RULE]`` line pragmas.

A pragma on the physical line a finding is reported at suppresses that
finding. Multiple IDs are comma-separated, ``*`` suppresses every rule,
and anything after the closing bracket is free-form justification —
which is encouraged, since a bare pragma tells a reviewer nothing::

    start = time.perf_counter()  # repro: allow[DET001] harness wall time
    for peer in peers:           # repro: allow[DET003,DET002] seeded upstream

Pragmas are parsed textually (not from the AST) so they also work on
lines that are part of a larger expression.
"""

from __future__ import annotations

import re

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


def parse_pragmas(source: str) -> dict[int, set[str]]:
    """Map 1-based line number -> set of allowed rule IDs (``*`` = all)."""
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            ids = {part.strip().upper() if part.strip() != "*" else "*"
                   for part in match.group(1).split(",") if part.strip()}
            if ids:
                allowed[lineno] = ids
    return allowed


def is_allowed(pragmas: dict[int, set[str]], line: int, rule_id: str) -> bool:
    """True when a pragma on ``line`` suppresses ``rule_id``."""
    ids = pragmas.get(line)
    if not ids:
        return False
    return "*" in ids or rule_id.upper() in ids
