"""Per-file analysis context: source, AST, imports, pragmas.

Rules never touch the filesystem; the engine parses each file once into
a :class:`FileContext` and hands it to every rule. The context also
resolves local names back to the modules they were imported from, so a
rule can ask "does this call reach ``time.time``?" without caring
whether the file wrote ``import time``, ``import time as t``, or
``from time import time``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.pragmas import is_allowed, parse_pragmas


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str  # posix-style, relative to the lint root
    source: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)
    module_aliases: dict[str, str] = field(default_factory=dict)
    symbol_imports: dict[str, str] = field(default_factory=dict)
    pragmas: dict[int, set[str]] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        """The physical source line (1-based), or '' past EOF."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        """True when a ``# repro: allow[...]`` pragma covers the finding."""
        return is_allowed(self.pragmas, lineno, rule_id)

    # -- name resolution -------------------------------------------------

    def resolve(self, dotted: str) -> str | None:
        """Resolve a local dotted name to its imported module path.

        ``t.monotonic`` with ``import time as t`` -> ``time.monotonic``;
        ``now()`` with ``from datetime import datetime as now`` ->
        ``datetime.datetime``. Returns None for names that do not trace
        back to an import (locals, attributes of ``self``, …).
        """
        head, _, rest = dotted.partition(".")
        if head in self.symbol_imports:
            base = self.symbol_imports[head]
        elif head in self.module_aliases:
            base = self.module_aliases[head]
        else:
            return None
        return f"{base}.{rest}" if rest else base

    def resolved_references(self) -> Iterator[tuple[ast.expr, str]]:
        """Yield (node, resolved dotted path) for maximal name chains.

        Only the outermost ``a.b.c`` chain of each attribute access is
        yielded, so ``datetime.datetime.now`` appears once, not three
        times.
        """
        claimed: set[int] = set()
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if id(node) in claimed:
                continue
            dotted = dotted_name(node)
            if dotted is None:
                continue
            # Claim the whole chain so inner attributes are skipped.
            inner = node
            while isinstance(inner, ast.Attribute):
                inner = inner.value
                claimed.add(id(inner))
            resolved = self.resolve(dotted)
            if resolved is not None:
                yield node, resolved


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def build_context(path: str, source: str) -> FileContext:
    """Parse ``source`` and collect imports + pragmas. Raises SyntaxError."""
    tree = ast.parse(source, filename=path)
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        pragmas=parse_pragmas(source),
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    ctx.module_aliases[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a``; the chain resolves the rest.
                    head = alias.name.partition(".")[0]
                    ctx.module_aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                ctx.symbol_imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return ctx
