"""Reachability and taint helpers over the project call graph.

The whole-program rules all reduce to the same two questions about the
:class:`~repro.analysis.callgraph.ProjectGraph`:

1. *Forward* — which functions can a set of roots reach? (DET005:
   everything a ``to_dict`` can call is digest-tainted.)
2. *Backward* — which domain functions can reach a set of sinks?
   (DET006/API002: an experiment function whose call chain ends in
   ``random.random`` or ``time.sleep``.)

Both are plain BFS with parent pointers, so every finding can print the
actual chain (``run -> _churn -> jitter``) rather than just its two
endpoints. Traversal order is sorted and the BFS is deterministic — the
linter holds itself to the contract it enforces.
"""

from __future__ import annotations

from repro.analysis.callgraph import ProjectGraph


def reachable_from(graph: ProjectGraph, roots: list[str]) -> dict[str, str | None]:
    """Forward closure: ``{qname: parent}`` for all functions roots reach.

    Roots map to ``None``; every other reached function maps to the
    caller it was first discovered through, so :func:`chain` can
    reconstruct a shortest call path back to a root.
    """
    parents: dict[str, str | None] = {}
    queue: list[str] = []
    for root in sorted(roots):
        if root in graph.functions and root not in parents:
            parents[root] = None
            queue.append(root)
    while queue:
        current = queue.pop(0)
        for callee in graph.edges.get(current, ()):
            if callee in graph.functions and callee not in parents:
                parents[callee] = current
                queue.append(callee)
    return parents


def reaches(graph: ProjectGraph, sinks: set[str]) -> dict[str, str | None]:
    """Backward closure: ``{qname: next-hop}`` for functions reaching a sink.

    Sinks map to ``None``; every other entry maps to the callee one step
    *closer* to a sink, so following the pointers walks the chain
    forward: ``chain(result, start)`` ends at a sink.
    """
    callers: dict[str, list[str]] = {}
    for caller, callees in sorted(graph.edges.items()):
        for callee in callees:
            callers.setdefault(callee, []).append(caller)
    parents: dict[str, str | None] = {}
    queue: list[str] = []
    for sink in sorted(sinks):
        if sink in graph.functions and sink not in parents:
            parents[sink] = None
            queue.append(sink)
    while queue:
        current = queue.pop(0)
        for caller in sorted(callers.get(current, ())):
            if caller not in parents:
                parents[caller] = current
                queue.append(caller)
    return parents


def chain(parents: dict[str, str | None], start: str) -> list[str]:
    """The qname path from ``start`` following parent pointers to a root."""
    path = [start]
    seen = {start}
    current: str | None = start
    while current is not None:
        current = parents.get(current)
        if current is None or current in seen:
            break
        path.append(current)
        seen.add(current)
    return path


def render_chain(graph: ProjectGraph, qnames: list[str]) -> str:
    """``EventLoop.step -> Network._deliver`` — short names for messages."""
    shorts = []
    for qname in qnames:
        fn = graph.functions.get(qname)
        shorts.append(fn.short if fn is not None else qname)
    return " -> ".join(shorts)
