"""reprolint — a determinism & simulation-safety linter for this codebase.

The reproduction's core contract is that every experiment replays
bit-identically from a seed: all randomness flows through
:class:`repro.util.rand.DeterministicRandom` and all time through
:class:`repro.net.clock.EventLoop`. Nothing in Python enforces that, so
this package turns the paper's own idiom — the static signature scanner
of §III-C — inward: an AST-based pass over ``src/`` that flags wall-clock
reads, global randomness, order-nondeterministic iteration, float
equality on simulated time, per-call regex compilation, and blocking
I/O.

Entry points::

    python -m repro.analysis src/repro      # module form
    repro-lint src/repro                    # console script
    python -m repro lint                    # CLI subcommand

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, the
``# repro: allow[RULE]`` pragma syntax, and the ``[tool.reprolint]``
configuration table.
"""

from __future__ import annotations

from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import LintRun, lint_paths
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfig",
    "LintRun",
    "Severity",
    "lint_paths",
    "load_config",
]
