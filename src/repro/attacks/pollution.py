"""Content pollution attacks (§IV-C, Fig. 3).

The attacker needs only (a) a proxy between their own peer and the CDN
and (b) the original video and manifest files. The proxy redirects the
malicious peer's CDN fetches to a fake CDN that alters segments; the
malicious peer's unmodified SDK then caches and serves the altered
bytes to benign peers over perfectly authenticated DTLS channels.

Two variants, matching the paper's two tests:

- **direct content pollution** — every segment is altered. Defeated by
  slow start: victims fetch their first segments from the real CDN, the
  attacker's announcements disagree with those authentic copies, and
  the attacker gets dropped.
- **video segment pollution** — the first ``slow_start`` segments pass
  through untouched. Nothing the victim ever cross-checks disagrees, so
  the polluted later segments reach playback on every public provider.
"""

from __future__ import annotations

import hashlib

from repro.core.report import TestReport
from repro.core.security_test import SecurityTest
from repro.core.testbed import TestBed
from repro.proxy.fake_cdn import FakeCdn, pollute_after_slow_start, pollute_all, pollute_bytes
from repro.proxy.mitm import MitmProxy


class _PollutionTestBase(SecurityTest):
    def __init__(self, bed: TestBed, watch: float = 90.0):
        self.bed = bed
        self.watch = watch

    def _predicate(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _risk_name(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def run(self, analyzer) -> TestReport:
        """Run the attack through the analyzer and report verdicts."""
        report = TestReport(self._risk_name(), self.bed.provider.profile.name)
        fake = FakeCdn(
            analyzer.env.urlspace,
            real_cdn_host=self.bed.cdn.hostname,
            should_pollute=self._predicate(),
            hostname=f"fake-{self.bed.cdn.hostname}",
        )
        fake.install()
        attacker_proxy = MitmProxy("pollution")
        attacker_proxy.redirect_host(self.bed.cdn.hostname, fake.hostname)

        malicious = analyzer.create_peer(name="malicious-peer", proxy=attacker_proxy)
        mal_session = malicious.watch_test_stream(self.bed)
        if mal_session.sdk is not None:
            self._prefetch_all(mal_session.sdk)
        analyzer.run(5.0)

        victim = analyzer.create_peer(name="victim-peer")
        victim_session = victim.watch_test_stream(self.bed)
        analyzer.run(self.watch)

        authentic = [s.digest for s in self.bed.video.segments]
        polluted = [
            hashlib.sha256(pollute_bytes(s.data, fake.marker)).hexdigest()
            for s in self.bed.video.segments
        ]
        played = victim.played_digests()
        polluted_played = sum(1 for d in played if d in polluted)
        authentic_played = sum(1 for d in played if d in authentic)
        p2p_from_attacker = (
            victim_session.sdk.stats.bytes_p2p_down if victim_session.sdk else 0
        )
        attacker_banned = (
            victim_session.sdk.stats.neighbors_banned > 0 if victim_session.sdk else False
        )
        report.add_verdict(
            self._risk_name(),
            triggered=polluted_played > 0,
            segments_played=len(played),
            polluted_played=polluted_played,
            authentic_played=authentic_played,
            victim_p2p_bytes=p2p_from_attacker,
            attacker_detected_and_banned=attacker_banned,
            fake_cdn_polluted=fake.segments_polluted,
        )
        report.artifacts["played_digests"] = played
        malicious.close()
        victim.close()
        return report

    def _prefetch_all(self, sdk) -> None:
        """The attacker eagerly pulls the whole (altered) video into cache."""
        base = self.bed.video_url.rsplit("/", 1)[0] + "/"
        for segment in self.bed.video.segments:
            sdk.fetch_segment(base, segment.filename, segment.index, lambda data, source: None)


class DirectContentPollutionTest(_PollutionTestBase):
    """Pollute everything, including the victim's slow-start window."""

    name = "pollution:direct"

    def _predicate(self):
        return pollute_all

    def _risk_name(self) -> str:
        return "direct_content_pollution"


class VideoSegmentPollutionTest(_PollutionTestBase):
    """Leave the slow-start window authentic; pollute the rest."""

    name = "pollution:video-segment"

    def _predicate(self):
        return pollute_after_slow_start(self.bed.provider.profile.slow_start_segments)

    def _risk_name(self) -> str:
        return "video_segment_pollution"
