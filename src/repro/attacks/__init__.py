"""The attacks the paper demonstrates, as runnable security tests.

- :mod:`repro.attacks.free_riding` — cross-domain and domain-spoofing
  service free riding (§IV-B), plus the lightweight key prober used for
  the 40-key in-the-wild study;
- :mod:`repro.attacks.pollution` — direct and video-segment content
  pollution via a fake CDN and a colluding peer (§IV-C, Fig. 3);
- :mod:`repro.attacks.harvesting` — peer IP harvesting: ghost viewers,
  the collecting peer, and the controlled IP-leak test (§IV-D);
- :mod:`repro.attacks.squatting` — resource-squatting measurement
  (consent audit + CPU/memory/bandwidth overhead, §IV-D).
"""

from repro.attacks.free_riding import (
    ApiKeyProbe,
    CrossDomainAttackTest,
    DomainSpoofingAttackTest,
    build_attacker_site,
)
from repro.attacks.pollution import (
    DirectContentPollutionTest,
    VideoSegmentPollutionTest,
)
from repro.attacks.harvesting import GhostViewer, HarvestingPeer, IpLeakTest
from repro.attacks.malicious_sdk import ImFlooder, ReplayPeer
from repro.attacks.squatting import ResourceSquattingTest, audit_consent

__all__ = [
    "ImFlooder",
    "ReplayPeer",
    "ApiKeyProbe",
    "CrossDomainAttackTest",
    "DomainSpoofingAttackTest",
    "build_attacker_site",
    "DirectContentPollutionTest",
    "VideoSegmentPollutionTest",
    "GhostViewer",
    "HarvestingPeer",
    "IpLeakTest",
    "ResourceSquattingTest",
    "audit_consent",
]
