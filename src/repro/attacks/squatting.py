"""Resource squatting measurement (§IV-D).

Two findings folded into one test:

- **no consent**: none of the studied customers show a consent dialog or
  let viewers disable the PDN (checked by :func:`audit_consent`);
- **overhead**: serving as a PDN peer costs extra CPU (~15%), memory
  (~10%), and — as the neighbor count grows — upload bandwidth that can
  reach twice the download rate (Figs. 4–5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import TestReport
from repro.core.security_test import SecurityTest
from repro.core.testbed import TestBed
from repro.pdn.policy import ClientPolicy
from repro.web.page import Website


@dataclass
class ConsentAudit:
    """§IV-D user-consent check for one customer integration."""

    target: str
    shows_consent_dialog: bool
    allows_user_disable: bool
    mentions_p2p_in_terms: bool = False

    @property
    def informs_viewers(self) -> bool:
        """True if viewers are told about the P2P service."""
        return self.shows_consent_dialog or self.mentions_p2p_in_terms


def audit_consent(target: str, policy: ClientPolicy, site: Website | None = None) -> ConsentAudit:
    """Audit one customer: dialogs, opt-outs, Terms-of-Use mentions."""
    mentions = False
    if site is not None:
        for page in site.pages.values():
            html = page.render(site.domain).lower()
            if "peer-to-peer" in html or "p2p network" in html:
                mentions = True
    return ConsentAudit(
        target=target,
        shows_consent_dialog=policy.show_consent_dialog,
        allows_user_disable=policy.allow_user_disable,
        mentions_p2p_in_terms=mentions,
    )


class ResourceSquattingTest(SecurityTest):
    """Measure PDN peers against a no-PDN baseline viewer."""

    name = "privacy:resource-squatting"

    def __init__(self, bed: TestBed, watch: float = 40.0, stagger: float = 10.0):
        self.bed = bed
        self.watch = watch
        self.stagger = stagger

    def run(self, analyzer) -> TestReport:
        """Run the attack through the analyzer and report verdicts."""
        report = TestReport(self.name, self.bed.provider.profile.name)

        # Baseline: a viewer on a plain CDN-only copy of the page.
        from repro.web.page import WebPage  # here to avoid a module cycle

        baseline_site = Website(f"baseline.{self.bed.site.domain}", category="video")
        baseline_site.add_page(
            WebPage("/", "baseline", has_video=True, video_url=self.bed.video_url)
        )
        analyzer.env.urlspace.register(baseline_site.domain, baseline_site)

        windows: dict[str, tuple[float, float]] = {}
        no_peer = analyzer.create_peer(name="no-peer")
        start = analyzer.env.loop.now
        no_peer.open(f"https://{baseline_site.domain}/")
        windows["no-peer"] = (start, start + self.bed.video.duration)
        peer_a = analyzer.create_peer(name="peer-a")
        start = analyzer.env.loop.now
        peer_a.watch_test_stream(self.bed)
        windows["peer-a"] = (start, start + self.bed.video.duration)
        analyzer.run(self.stagger)  # Peer B joins late and leeches off Peer A
        peer_b = analyzer.create_peer(name="peer-b")
        start = analyzer.env.loop.now
        peer_b.watch_test_stream(self.bed)
        windows["peer-b"] = (start, start + self.bed.video.duration)
        analyzer.run(self.watch)

        # Compare each viewer over its own playback window, so idle
        # samples after a finished stream don't dilute the means.
        def window_mean(peer, series_name):
            """Mean of a monitor series within a peer's playback window."""
            t0, t1 = windows[peer.name]
            series = peer.monitor.cpu if series_name == "cpu" else peer.monitor.memory
            return series.mean_between(t0, t1)

        cpu_base = window_mean(no_peer, "cpu")
        mem_base = window_mean(no_peer, "mem")
        cpu_pdn = (window_mean(peer_a, "cpu") + window_mean(peer_b, "cpu")) / 2
        mem_pdn = (window_mean(peer_a, "mem") + window_mean(peer_b, "mem")) / 2
        policy = self.bed.provider.customer_policy(self.bed.customer_id)
        consent = audit_consent(self.bed.site.domain, policy, self.bed.site)
        report.add_verdict(
            "resource_squatting",
            triggered=(cpu_pdn > cpu_base or mem_pdn > mem_base) and not consent.informs_viewers,
            cpu_overhead_ratio=cpu_pdn / cpu_base if cpu_base else 0.0,
            memory_overhead_ratio=mem_pdn / mem_base if mem_base else 0.0,
            consent_dialog=consent.shows_consent_dialog,
            user_can_disable=consent.allows_user_disable,
        )
        report.artifacts["no_peer_monitor"] = no_peer.monitor
        report.artifacts["peer_a_monitor"] = peer_a.monitor
        report.artifacts["peer_b_monitor"] = peer_b.monitor
        no_peer.close()
        peer_a.close()
        peer_b.close()
        return report
