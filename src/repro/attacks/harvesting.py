"""Peer IP harvesting (§IV-D).

Joining a swarm is enough to collect other viewers' transport
addresses: the signaling server discloses candidates, and subsequent
STUN checks arrive straight from peers' addresses. The paper's
controlled test verifies the leak between two analyzer peers on
different continents; the in-the-wild experiment parks a collecting
peer in a live channel for a week and gathers 7,740 unique addresses.

:class:`GhostViewer` is a lightweight stand-in for an organic viewer in
the wild-scale experiment: it joins and leaves the swarm over signaling
(which is where addresses are disclosed) without paying for a full
WebRTC stack per viewer — the leak mechanics are identical, the cost is
thousands of times lower.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.report import TestReport
from repro.core.security_test import SecurityTest
from repro.core.testbed import TestBed
from repro.environment import Environment
from repro.pdn.provider import PdnProvider
from repro.privacy.viewers import ViewerDescriptor
from repro.streaming.http import HttpClient


class GhostViewer:
    """A signaling-level viewer occupying a swarm slot."""

    def __init__(
        self,
        env: Environment,
        provider: PdnProvider,
        credential: str,
        video_url: str,
        descriptor: ViewerDescriptor,
        origin: str,
    ) -> None:
        self.env = env
        self.provider = provider
        self.descriptor = descriptor
        self.http = HttpClient(env.urlspace, client_ip=descriptor.observed_ip)
        self.session_id: str | None = None
        response = self.http.post(
            f"https://{provider.profile.signaling_host}/v2/join",
            json.dumps({"credential": credential, "video_url": video_url}).encode(),
            headers={"Origin": origin},
        )
        if response.ok:
            self.session_id = json.loads(response.body.decode())["session_id"]
            env.loop.schedule(descriptor.session_length, self.leave)

    @property
    def joined(self) -> bool:
        """True while the viewer holds a live signaling session."""
        return self.session_id is not None

    def leave(self) -> None:
        """Leave the swarm (settles viewer-time billing)."""
        if self.session_id is None:
            return
        self.http.post(
            f"https://{self.provider.profile.signaling_host}/v2/leave",
            json.dumps({"session_id": self.session_id}).encode(),
        )
        self.session_id = None


@dataclass
class HarvestRecord:
    """HarvestRecord."""
    at: float
    ip: str


class HarvestingPeer:
    """The attacker's collecting peer: polls candidates, logs addresses."""

    def __init__(
        self,
        env: Environment,
        provider: PdnProvider,
        credential: str,
        video_url: str,
        origin: str,
        observer_ip: str = "198.51.100.99",
        poll_interval: float = 20.0,
        windows: list[tuple[float, float]] | None = None,
    ) -> None:
        self.env = env
        self.provider = provider
        self.video_url = video_url
        self.poll_interval = poll_interval
        self.windows = windows  # None = always harvesting
        self.http = HttpClient(env.urlspace, client_ip=observer_ip)
        self.observer_ip = observer_ip
        self.records: list[HarvestRecord] = []
        self.session_id: str | None = None
        self._origin = origin
        self._credential = credential
        self._timer = None

    def start(self) -> bool:
        """Start this component."""
        response = self.http.post(
            f"https://{self.provider.profile.signaling_host}/v2/join",
            json.dumps({"credential": self._credential, "video_url": self.video_url}).encode(),
            headers={"Origin": self._origin},
        )
        if not response.ok:
            return False
        self.session_id = json.loads(response.body.decode())["session_id"]
        self._timer = self.env.loop.call_every(self.poll_interval, self._poll)
        self._poll()
        return True

    def _in_window(self) -> bool:
        if self.windows is None:
            return True
        now = self.env.loop.now
        return any(t0 <= now <= t1 for t0, t1 in self.windows)

    def _poll(self) -> None:
        if self.session_id is None or not self._in_window():
            return
        response = self.http.post(
            f"https://{self.provider.profile.signaling_host}/v2/candidates",
            json.dumps({"session_id": self.session_id}).encode(),
        )
        if not response.ok:
            return
        for peer in json.loads(response.body.decode()).get("peers", []):
            self.records.append(HarvestRecord(self.env.loop.now, peer["ip"]))

    def stop(self) -> None:
        """Stop this component."""
        if self._timer is not None:
            self._timer.cancel()

    def unique_ips(self) -> set[str]:
        """The set of distinct addresses harvested so far."""
        return {r.ip for r in self.records}


class IpLeakTest(SecurityTest):
    """Controlled §IV-D test: two remote peers, one in the US, one in China,
    watching the same stream — does each learn the other's real IP?"""

    name = "privacy:ip-leak"

    def __init__(self, bed: TestBed, watch: float = 30.0):
        self.bed = bed
        self.watch = watch

    def run(self, analyzer) -> TestReport:
        """Run the attack through the analyzer and report verdicts."""
        report = TestReport(self.name, self.bed.provider.profile.name)
        peer_us = analyzer.create_peer(name="peer-us", country="US")
        peer_cn = analyzer.create_peer(name="peer-cn", country="CN")
        session_us = peer_us.watch_test_stream(self.bed)
        session_cn = peer_cn.watch_test_stream(self.bed)
        analyzer.run(self.watch)
        us_ip = peer_us.browser.host.public_ip
        cn_ip = peer_cn.browser.host.public_ip
        us_saw_cn = cn_ip in peer_us.harvested_ips()
        cn_saw_us = us_ip in peer_cn.harvested_ips()
        report.add_verdict(
            "ip_leak",
            triggered=us_saw_cn and cn_saw_us,
            us_peer_ip=us_ip,
            cn_peer_ip=cn_ip,
            us_collected_cn_ip=us_saw_cn,
            cn_collected_us_ip=cn_saw_us,
            pdn_joined=session_us.pdn_loaded and session_cn.pdn_loaded,
        )
        peer_us.close()
        peer_cn.close()
        return report
