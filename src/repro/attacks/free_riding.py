"""Service free riding (§IV-B).

The attacker retrieves a victim customer's static API key (it sits in
the victim's page HTML or APK) and integrates the PDN SDK into their
*own* streaming website, offloading their bandwidth bill onto the
victim:

- **cross-domain attack** — just use the stolen key from the attacker's
  own origin. Succeeds whenever the key has no domain allowlist (the
  Peer5/Streamroot default; 11 of 40 valid in-the-wild keys).
- **domain-spoofing attack** — additionally rewrite ``Origin``/``Referer``
  to the victim's domain through the attacker's proxy. Succeeds against
  every provider, because the check trusts client-supplied headers.

During the in-the-wild key study the paper was careful to generate no
actual P2P transfer; :class:`ApiKeyProbe` reproduces that: it performs
only the authentication step.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.report import TestReport
from repro.core.security_test import SecurityTest
from repro.core.testbed import TestBed
from repro.environment import Environment
from repro.pdn.provider import PdnProvider
from repro.proxy.mitm import MitmProxy
from repro.streaming.cdn import CdnEdge, OriginServer, vod_playlist_url
from repro.streaming.http import HttpClient
from repro.streaming.video import make_video
from repro.web.page import PdnEmbed, WebPage, Website

ATTACKER_DOMAIN = "free-movies.attacker.example"


def build_attacker_site(
    env: Environment,
    provider: PdnProvider,
    stolen_key: str,
    domain: str = ATTACKER_DOMAIN,
    video_segments: int = 8,
    segment_bytes: int = 120_000,
) -> Website:
    """The attacker's own streaming site, wired to the victim's PDN key."""
    origin = OriginServer(env.loop, hostname=f"origin.{domain}")
    cdn = CdnEdge(origin, hostname=f"cdn.{domain}")
    env.urlspace.register(origin.hostname, origin)
    env.urlspace.register(cdn.hostname, cdn)
    video = make_video(f"pirated-{domain}", video_segments, 4.0, segment_bytes)
    origin.add_vod(video)
    video_url = vod_playlist_url(cdn.hostname, video.video_id)
    site = Website(domain, category="video")
    site.add_page(
        WebPage("/", "free movies", has_video=True, embed=PdnEmbed(provider, stolen_key, video_url))
    )
    env.urlspace.register(domain, site)
    return site


@dataclass
class ApiKeyProbe:
    """Authentication-only probe of one stolen key (no data transfer)."""

    env: Environment
    provider: PdnProvider
    attacker_origin: str = f"https://{ATTACKER_DOMAIN}"

    def probe(self, key: str, spoof_domain: str | None = None) -> tuple[bool, str]:
        """Attempt a join with the key; returns (accepted, reason)."""
        proxy = None
        if spoof_domain is not None:
            proxy = MitmProxy("key-probe")
            proxy.spoof_domain(spoof_domain)
        http = HttpClient(self.env.urlspace, client_ip="198.51.100.77", proxy=proxy)
        response = http.post(
            f"https://{self.provider.profile.signaling_host}/v2/join",
            json.dumps({"credential": key, "video_url": "https://attacker/video.m3u8"}).encode(),
            headers={"Origin": self.attacker_origin, "Referer": self.attacker_origin + "/"},
        )
        body = json.loads(response.body.decode() or "{}")
        return response.ok, body.get("error", "ok")


class CrossDomainAttackTest(SecurityTest):
    """Integrate the stolen key on the attacker's site; no spoofing."""

    name = "free-riding:cross-domain"

    def __init__(self, bed: TestBed, attacker_domain: str = ATTACKER_DOMAIN, watch: float = 60.0):
        self.bed = bed
        self.attacker_domain = attacker_domain
        self.watch = watch

    def run(self, analyzer) -> TestReport:
        """Run the attack through the analyzer and report verdicts."""
        report = TestReport(self.name, self.bed.provider.profile.name)
        build_attacker_site(
            analyzer.env, self.bed.provider, self.bed.api_key, self.attacker_domain
        )
        victim_account = self.bed.provider.billing.account(self.bed.customer_id)
        cost_before = victim_account.cost
        bytes_before = victim_account.p2p_bytes
        peer_a = analyzer.create_peer(proxy=MitmProxy())
        peer_b = analyzer.create_peer(proxy=MitmProxy())
        url = f"https://{self.attacker_domain}/"
        session_a = peer_a.open(url)
        analyzer.run(10.0)  # stagger so the second peer leeches off the first
        session_b = peer_b.open(url)
        analyzer.run(self.watch)
        self.bed.provider.signaling.settle_all()
        joined = session_a.pdn_loaded and session_b.pdn_loaded
        p2p_bytes = sum(
            s.sdk.stats.p2p_total for s in (session_a, session_b) if s.sdk is not None
        )
        report.add_verdict(
            "cross_domain_free_riding",
            triggered=joined,
            attacker_joined=joined,
            join_error=session_a.skip_reason or None,
            p2p_bytes_generated=p2p_bytes,
            victim_billed_extra_bytes=victim_account.p2p_bytes - bytes_before,
            victim_billed_extra_cost=victim_account.cost - cost_before,
        )
        peer_a.close()
        peer_b.close()
        return report


class DomainSpoofingAttackTest(SecurityTest):
    """Same integration, but the proxy rewrites Origin/Referer to the victim."""

    name = "free-riding:domain-spoofing"

    def __init__(self, bed: TestBed, attacker_domain: str = "spoof." + ATTACKER_DOMAIN, watch: float = 60.0):
        self.bed = bed
        self.attacker_domain = attacker_domain
        self.watch = watch

    def run(self, analyzer) -> TestReport:
        """Run the attack through the analyzer and report verdicts."""
        report = TestReport(self.name, self.bed.provider.profile.name)
        build_attacker_site(
            analyzer.env, self.bed.provider, self.bed.api_key, self.attacker_domain
        )
        victim_account = self.bed.provider.billing.account(self.bed.customer_id)
        bytes_before = victim_account.p2p_bytes
        peers = []
        sessions = []
        for _ in range(2):
            proxy = MitmProxy("spoof")
            proxy.spoof_domain(self.bed.site.domain)
            peer = analyzer.create_peer(proxy=proxy)
            peers.append(peer)
            sessions.append(peer.open(f"https://{self.attacker_domain}/"))
            analyzer.run(10.0)  # stagger joins so P2P transfer happens
        analyzer.run(self.watch)
        self.bed.provider.signaling.settle_all()
        joined = all(s.pdn_loaded for s in sessions)
        p2p_bytes = sum(s.sdk.stats.p2p_total for s in sessions if s.sdk is not None)
        report.add_verdict(
            "domain_spoofing_free_riding",
            triggered=joined,
            attacker_joined=joined,
            p2p_bytes_generated=p2p_bytes,
            victim_billed_extra_bytes=victim_account.p2p_bytes - bytes_before,
        )
        for peer in peers:
            peer.close()
        return report
