"""Malicious SDK variants — attacker behaviours beyond proxy tricks.

The pollution attack needs no SDK modification (the fake CDN poisons an
unmodified client), but §V-B's robustness arguments are about attackers
who *do* control their client:

- :class:`ReplayPeer` answers a request for segment *k* with the bytes
  of a different segment it legitimately holds (optionally from another
  video) — the replay attack the IM's (content, video id, position)
  binding must defeat;
- :class:`ImFlooder` spams fabricated IM reports to inflate the
  server's CDN verification cost — what the §V-B blacklist bounds.
"""

from __future__ import annotations

from repro.pdn.sdk import DATA_CHANNEL, NeighborLink, PdnClient, _data_frame


class ReplayPeer(PdnClient):
    """Serves *mismatched* segments: request k, receive segment f(k).

    The substitution map defaults to "previous segment" — a recorded,
    perfectly authentic chunk of the same video, just in the wrong
    place. Without position-bound integrity metadata the victim plays
    it; with the §V-B IM the SIM check fails and the sender is banned.
    """

    def __init__(self, *args, substitution=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.substitution = substitution or (lambda index: max(0, index - 1))
        self.replays_served = 0

    def _serve_request(self, link: NeighborLink, key: tuple[str, int]) -> None:
        rendition, index = key
        source_index = self.substitution(index)
        data = self._cache.get((rendition, source_index))
        if data is None or not self.policy.upload_allowed(self.connection_type):
            super()._serve_request(link, key)
            return
        self.replays_served += 1
        self.stats.p2p_requests_served += 1
        self.stats.bytes_p2p_up += len(data)
        link.bytes_up += len(data)
        # Announce it as segment `index` on the wire: a replay.
        link.pc.send(DATA_CHANNEL, _data_frame(key, data))


class ImFlooder:
    """Floods fabricated IM reports through a joined session."""

    def __init__(self, sdk: PdnClient) -> None:
        self.sdk = sdk
        self.reports_sent = 0

    def flood(self, indices, rounds: int = 5) -> None:
        """Send the fabricated IM reports."""
        for round_number in range(rounds):
            for index in indices:
                self.sdk._post(
                    "/v2/im_report",
                    {"index": index, "digest": f"{round_number:064x}"},
                )
                self.reports_sent += 1
