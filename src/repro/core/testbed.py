"""The analyzer's controlled test bed.

§IV-A: "we integrate PDN services on our own website (www.test.com) and
a customized stream server connected to a CDN service ... Wowza
Streaming Engine ... Amazon CloudFront". This module assembles exactly
that: an origin, a CDN edge, a test website with the PDN SDK embedded,
and a customized video source — so no real-world viewers are ever
involved (peers are grouped by content, and only the analyzer watches
this content).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.environment import Environment
from repro.pdn.policy import ClientPolicy
from repro.pdn.provider import PdnProvider, ProviderProfile
from repro.streaming.cdn import CdnEdge, LiveChannel, OriginServer, live_playlist_url, vod_playlist_url
from repro.streaming.video import VideoSource, make_video
from repro.web.page import PdnEmbed, WebPage, Website

TEST_DOMAIN = "www.test.com"


@dataclass
class TestBed:
    """Our own PDN-integrated website plus its delivery chain."""

    env: Environment
    provider: PdnProvider
    origin: OriginServer
    cdn: CdnEdge
    site: Website
    api_key: str
    video: VideoSource
    video_url: str
    live_channel: LiveChannel | None = None

    @property
    def customer_id(self) -> str:
        """The test website's customer identity at the provider."""
        return self.site.domain


def build_test_bed(
    env: Environment,
    profile: ProviderProfile,
    *,
    domain: str = TEST_DOMAIN,
    video_segments: int = 10,
    segment_seconds: float = 4.0,
    segment_bytes: int = 120_000,
    live: bool = False,
    allowed_domains: set[str] | None = None,
    policy: ClientPolicy | None = None,
    provider: PdnProvider | None = None,
) -> TestBed:
    """Stand up origin + CDN + PDN subscription + test website.

    Pass ``allowed_domains`` to opt in to the provider's domain
    allowlist (Viblast forces one regardless). Pass an existing
    ``provider`` to add a second customer to a provider under test.
    """
    if provider is None:
        provider = PdnProvider(env.loop, env.rand, profile)
        provider.install(env.urlspace)
    origin = OriginServer(env.loop, hostname=f"origin.{domain}")
    cdn = CdnEdge(origin, hostname=f"cdn.{domain}")
    env.urlspace.register(origin.hostname, origin)
    env.urlspace.register(cdn.hostname, cdn)

    video = make_video(
        f"stream-{domain}",
        num_segments=video_segments,
        segment_duration=segment_seconds,
        segment_size=segment_bytes,
    )
    live_channel = None
    if live:
        live_channel = origin.add_live("test-live", video, window=4)
        video_url = live_playlist_url(cdn.hostname, "test-live")
    else:
        origin.add_vod(video)
        video_url = vod_playlist_url(cdn.hostname, video.video_id)

    key = provider.signup_customer(domain, allowed_domains, policy)
    site = Website(domain, rank=100_000, category="video")
    embed = PdnEmbed(provider, key.key, video_url)
    site.add_page(WebPage("/", f"{domain} test stream", has_video=True, embed=embed))
    env.urlspace.register(domain, site)

    return TestBed(
        env=env,
        provider=provider,
        origin=origin,
        cdn=cdn,
        site=site,
        api_key=key.key,
        video=video,
        video_url=video_url,
        live_channel=live_channel,
    )
