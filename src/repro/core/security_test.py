"""The security-test abstraction the analyzer executes."""

from __future__ import annotations

import abc

from repro.core.report import TestReport


class SecurityTest(abc.ABC):
    """One predefined test (peer authentication, content integrity, ...).

    Concrete tests live in :mod:`repro.attacks`; each builds its peers
    through the analyzer, drives the scenario, and fills a report.
    """

    name: str = "security-test"

    @abc.abstractmethod
    def run(self, analyzer) -> TestReport:
        """Execute against ``analyzer`` and return the filled report."""
