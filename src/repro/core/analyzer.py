"""The analyzer itself: peer containers and the control panel.

Each peer runs as a "container": a browser (web driver) wired through a
per-peer proxy client, with a scoped traffic capture on its virtual
interface and a per-second resource monitor — the Fig. 2 architecture.
The control panel (:class:`PdnAnalyzer`) creates peers, runs security
tests, and collects their artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import TestReport
from repro.core.security_test import SecurityTest
from repro.core.testbed import TestBed
from repro.environment import Environment
from repro.net.capture import TrafficCapture
from repro.net.nat import NatType
from repro.privacy.resources import ResourceModel, ResourceMonitor
from repro.proxy.mitm import MitmProxy
from repro.web.browser import Browser, PageSession


@dataclass
class PeerContainer:
    """One analyzer peer: browser + proxy client + capture + monitor."""

    name: str
    browser: Browser
    proxy: MitmProxy | None
    capture: TrafficCapture
    monitor: ResourceMonitor
    session: PageSession | None = None

    def open(self, url: str, **kwargs) -> PageSession:
        """Open a page in this container's browser."""
        self.session = self.browser.open(url, **kwargs)
        return self.session

    def watch_test_stream(self, bed: TestBed, **kwargs) -> PageSession:
        """Open the test bed's streaming page."""
        return self.open(f"https://{bed.site.domain}/", **kwargs)

    def close(self) -> None:
        """Close and release resources."""
        self.monitor.stop()
        self.capture.stop()
        self.browser.close()

    # -- convenience views over artifacts ---------------------------------

    def played_digests(self) -> list[str]:
        """SHA-256 digests of every segment this peer played."""
        if self.session is None or self.session.player is None:
            return []
        return self.session.player.stats.played_digests()

    def harvested_ips(self) -> set[str]:
        """Every remote address this peer observed."""
        if self.session is None or self.session.sdk is None:
            return set()
        return {ip for _, ip in self.session.sdk.harvested_ips()}


class PdnAnalyzer:
    """The control panel: creates peers, runs tests, gathers artifacts."""

    def __init__(self, env: Environment, resource_model: ResourceModel | None = None) -> None:
        self.env = env
        self.resource_model = resource_model or ResourceModel()
        self.peers: list[PeerContainer] = []
        self.reports: list[TestReport] = []

    def create_peer(
        self,
        name: str | None = None,
        country: str = "US",
        nat_type: NatType = NatType.FULL_CONE,
        proxy: MitmProxy | None = None,
        connection_type: str = "wifi",
        relay_only: bool = False,
        integrity=None,
        monitor_interval: float = 1.0,
        uplink_bytes_per_sec: float | None = None,
        external_ip: str | None = None,
    ) -> PeerContainer:
        """Launch one peer container."""
        name = name or self.env.ids.next("analyzer-peer")
        host = self.env.add_viewer_host(
            name,
            country,
            nat_type,
            uplink_bytes_per_sec=uplink_bytes_per_sec,
            external_ip=external_ip,
        )
        browser = Browser(
            self.env,
            name=name,
            country=country,
            nat_type=nat_type,
            proxy=proxy,
            connection_type=connection_type,
            integrity=integrity,
            relay_only=relay_only,
            host=host,
        )
        capture = TrafficCapture(f"cap:{name}", interface_ips=[browser.host.public_ip])
        self.env.network.add_capture(capture)
        monitor = ResourceMonitor(
            self.env.loop, browser, model=self.resource_model,
            interval=monitor_interval, name=name,
        )
        monitor.start()
        peer = PeerContainer(name, browser, proxy, capture, monitor)
        self.peers.append(peer)
        return peer

    def run_test(self, test: SecurityTest) -> TestReport:
        """Execute one security test and archive its report."""
        report = test.run(self)
        report.started_at = report.started_at or self.env.loop.now
        report.finished_at = self.env.loop.now
        self.reports.append(report)
        return report

    def run(self, seconds: float) -> None:
        """Advance the simulated clock by ``seconds``."""
        self.env.run(seconds)

    def teardown(self) -> None:
        """Tear down every peer container created by this analyzer."""
        for peer in self.peers:
            peer.close()
        self.peers = []
