"""Security-test reports and verdicts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class RiskVerdict:
    """Did the risk under evaluation trigger, and with what evidence?"""

    risk: str
    triggered: bool
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        mark = "VULNERABLE" if self.triggered else "protected"
        return f"{self.risk}: {mark} {self.details}"

    def to_dict(self) -> dict[str, Any]:
        """Serialise for harness result export."""
        from repro.harness.result import to_jsonable

        return {"risk": self.risk, "triggered": self.triggered, "details": to_jsonable(self.details)}


@dataclass
class TestReport:
    """Everything one analyzer run produced."""

    test_name: str
    provider: str
    verdicts: list[RiskVerdict] = field(default_factory=list)
    logs: list[str] = field(default_factory=list)
    artifacts: dict[str, Any] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0

    def add_verdict(self, risk: str, triggered: bool, **details: Any) -> RiskVerdict:
        """Record one risk verdict on this report."""
        verdict = RiskVerdict(risk, triggered, details)
        self.verdicts.append(verdict)
        return verdict

    def log(self, message: str) -> None:
        """Append a log line to this report."""
        self.logs.append(message)

    def verdict(self, risk: str) -> RiskVerdict | None:
        """Look up a verdict by risk name, or None."""
        for v in self.verdicts:
            if v.risk == risk:
                return v
        return None

    @property
    def any_triggered(self) -> bool:
        """True if any recorded verdict triggered."""
        return any(v.triggered for v in self.verdicts)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the whole report for harness result export."""
        from repro.harness.result import to_jsonable

        return {
            "test_name": self.test_name,
            "provider": self.provider,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "logs": list(self.logs),
            "artifacts": to_jsonable(self.artifacts),
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
