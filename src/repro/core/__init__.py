"""The PDN analyzer — the paper's analysis framework (Fig. 2).

The analyzer accepts a PDN service and a security test as input. Its
control panel sets test parameters, runs each PDN peer as a container
(web driver + proxy client + traffic capture + resource monitor), and
can intercept and modify the traffic between a peer and the PDN server
through the configured proxy. After execution it returns dumped traffic,
playback records (the screen-recording analog), execution logs, and
resource statistics for risk evaluation.
"""

from repro.core.testbed import TestBed, build_test_bed
from repro.core.analyzer import PdnAnalyzer, PeerContainer
from repro.core.report import RiskVerdict, TestReport
from repro.core.security_test import SecurityTest

__all__ = [
    "TestBed",
    "build_test_bed",
    "PdnAnalyzer",
    "PeerContainer",
    "RiskVerdict",
    "TestReport",
    "SecurityTest",
]
