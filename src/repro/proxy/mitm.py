"""An intercepting HTTP proxy with header rewriting and URL redirection.

The paper's analyzer configures each peer with a self-signed root
certificate so its proxy can decrypt and modify TLS traffic; in this
model the proxy simply sits on the :class:`~repro.streaming.http.HttpClient`
path. Its two capabilities map one-to-one onto the attacks:

- ``spoof_domain`` rewrites ``Origin``/``Referer`` to a victim domain —
  the §IV-B domain-spoofing attack that defeats every allowlist;
- ``redirect_host`` reroutes the peer's CDN fetches to a fake CDN — the
  §IV-C pollution attack's first hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.streaming.http import HttpRequest, HttpResponse, UrlSpace, parse_url


@dataclass
class ProxiedExchange:
    """One logged request/response pair."""

    method: str
    url: str
    rewritten_url: str
    status: int
    request_headers: dict[str, str]


class MitmProxy:
    """Intercepts, rewrites, logs, and forwards HTTP exchanges."""

    def __init__(self, name: str = "mitm") -> None:
        self.name = name
        self._header_overrides: dict[str, str] = {}
        self._host_redirects: dict[str, str] = {}
        self._request_hooks: list[Callable[[HttpRequest], None]] = []
        self._response_hooks: list[Callable[[HttpRequest, HttpResponse], HttpResponse]] = []
        self.log: list[ProxiedExchange] = []

    # -- configuration ---------------------------------------------------

    def set_header(self, name: str, value: str) -> None:
        """Force a header on every forwarded request."""
        self._header_overrides[name] = value

    def spoof_domain(self, victim_domain: str) -> None:
        """Impersonate a victim PDN customer (the domain-spoofing attack)."""
        origin = f"https://{victim_domain}"
        self.set_header("Origin", origin)
        self.set_header("Referer", origin + "/")

    def redirect_host(self, from_host: str, to_host: str) -> None:
        """Reroute all requests for one host to another (fake CDN hop)."""
        self._host_redirects[from_host.lower()] = to_host

    def add_request_hook(self, hook: Callable[[HttpRequest], None]) -> None:
        """Add request hook."""
        self._request_hooks.append(hook)

    def add_response_hook(
        self, hook: Callable[[HttpRequest, HttpResponse], HttpResponse]
    ) -> None:
        """Add response hook."""
        self._response_hooks.append(hook)

    # -- the proxy hot path -------------------------------------------------

    def handle(self, request: HttpRequest, urlspace: UrlSpace) -> HttpResponse:
        """Proxy hook: rewrite, forward, and log one HTTP exchange."""
        original_url = request.url
        scheme, host, path = parse_url(request.url)
        redirect_target = self._host_redirects.get(host.lower())
        if redirect_target is not None:
            request.url = f"{scheme}://{redirect_target}{path}"
        for name, value in self._header_overrides.items():
            request.headers[name] = value
        for hook in self._request_hooks:
            hook(request)
        response = urlspace.dispatch(request)
        for hook in self._response_hooks:
            response = hook(request, response)
        self.log.append(
            ProxiedExchange(
                request.method, original_url, request.url, response.status, dict(request.headers)
            )
        )
        return response
