"""Traffic interception tooling (the analyzer's mitmproxy analog).

Each analyzer peer container runs with a proxy client whose traffic the
control panel's proxy server can observe and rewrite (Fig. 2). Two
interceptors reproduce the paper's attacks:

- :class:`~repro.proxy.mitm.MitmProxy` — header rewriting (the
  domain-spoofing free-riding attack) and URL redirection;
- :class:`~repro.proxy.fake_cdn.FakeCdn` — the fake CDN of Fig. 3 that
  downloads authentic video files from the real CDN and alters selected
  segments before handing them to the malicious peer.
"""

from repro.proxy.mitm import MitmProxy
from repro.proxy.fake_cdn import FakeCdn

__all__ = ["MitmProxy", "FakeCdn"]
