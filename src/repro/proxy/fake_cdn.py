"""The fake CDN of the content-pollution attack (Fig. 3).

The fake CDN fronts the real CDN: it downloads the authentic manifest
and segments, then alters segments selected by a predicate before
returning them to the (attacker-controlled) peer. The peer's SDK caches
the altered bytes as if they were authentic and serves them onward to
benign peers — no knowledge of PDN protocols or browser-storage access
required, exactly as the paper argues.
"""

from __future__ import annotations

from typing import Callable

from repro.streaming.cdn import _parse_segment_index
from repro.streaming.http import HttpRequest, HttpResponse, UrlSpace, parse_url

POLLUTION_MARKER = b"POLLUTED-BY-FAKE-CDN"


def pollute_bytes(data: bytes, marker: bytes = POLLUTION_MARKER) -> bytes:
    """Replace content while preserving length (a convincing fake segment)."""
    if not data:
        return data
    repeated = marker * (len(data) // len(marker) + 1)
    return repeated[: len(data)]


class FakeCdn:
    """An HTTP server that proxies a real CDN and alters chosen segments."""

    def __init__(
        self,
        urlspace: UrlSpace,
        real_cdn_host: str,
        should_pollute: Callable[[int], bool],
        hostname: str = "cdn.attacker.example",
        marker: bytes = POLLUTION_MARKER,
    ) -> None:
        self.urlspace = urlspace
        self.real_cdn_host = real_cdn_host
        self.should_pollute = should_pollute
        self.hostname = hostname
        self.marker = marker
        self.segments_polluted = 0
        self.segments_passed_through = 0

    def install(self) -> None:
        """Register this component in the URL space and return it."""
        self.urlspace.register(self.hostname, self)

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve one HTTP request."""
        scheme, _host, path = parse_url(request.url)
        upstream = HttpRequest(
            request.method,
            f"{scheme}://{self.real_cdn_host}{path}",
            dict(request.headers),
            request.body,
            request.client_ip,
        )
        response = self.urlspace.dispatch(upstream)
        if not response.ok:
            return response
        filename = path.rsplit("/", 1)[-1]
        if filename.startswith("seg-") and filename.endswith(".ts"):
            index = _parse_segment_index(filename)
            if index is not None and self.should_pollute(index):
                self.segments_polluted += 1
                return HttpResponse(200, pollute_bytes(response.body, self.marker), dict(response.headers))
            self.segments_passed_through += 1
        return response


def pollute_all(_index: int) -> bool:
    """Predicate for the *direct* content pollution attack (§IV-C test 1)."""
    return True


def pollute_after_slow_start(slow_start: int) -> Callable[[int], bool]:
    """Predicate for the *video segment* pollution attack (§IV-C test 2):
    leave the first ``slow_start`` segments authentic."""

    def predicate(index: int) -> bool:
        """Predicate."""
        return index >= slow_start

    return predicate
