"""Command-line interface: regenerate any of the paper's results.

Usage::

    python -m repro detect            # Tables I-IV
    python -m repro risk-matrix       # Table V
    python -m repro im-checking       # Table VI (pass --full for 600 s)
    python -m repro resources         # Fig. 4
    python -m repro bandwidth         # Fig. 5
    python -m repro free-riding       # §IV-B in-the-wild key study
    python -m repro ip-leak           # §IV-D week-long harvest
    python -m repro token-defense     # §V-A evaluation
    python -m repro ecdn              # §VI Microsoft eCDN discussion
    python -m repro all               # everything, in paper order
    python -m repro lint              # reprolint the source tree
"""

from __future__ import annotations

import argparse
import sys

from repro.util.perf import WallTimer


def _run_detect(args) -> str:
    from repro.experiments import detection_tables

    return detection_tables.run(seed=args.seed).render_all()


def _run_risk_matrix(args) -> str:
    from repro.experiments import risk_matrix

    return risk_matrix.run(seed=args.seed, quick=not args.full).render()


def _run_im_checking(args) -> str:
    from repro.experiments import im_checking

    duration = 600.0 if args.full else 200.0
    return im_checking.run(seed=args.seed, duration=duration).render()


def _run_resources(args) -> str:
    from repro.experiments import resource_fig4

    return resource_fig4.run(seed=args.seed).render()


def _run_bandwidth(args) -> str:
    from repro.experiments import bandwidth_fig5

    return bandwidth_fig5.run(seed=args.seed).render()


def _run_free_riding(args) -> str:
    from repro.experiments import free_riding_wild

    return free_riding_wild.run(seed=args.seed).render()


def _run_ip_leak(args) -> str:
    from repro.experiments import ip_leak_wild

    days = 7.0 if args.full else args.days
    return ip_leak_wild.run(seed=args.seed, days=days).render()


def _run_token_defense(args) -> str:
    from repro.experiments import token_defense

    return token_defense.run(seed=args.seed).render()


def _run_ecdn(args) -> str:
    from repro.experiments import ecdn_discussion

    return ecdn_discussion.run(seed=args.seed).render()


def _run_propagation(args) -> str:
    from repro.experiments import pollution_propagation

    return pollution_propagation.run(seed=args.seed).render()


def _run_consent(args) -> str:
    from repro.experiments import consent_and_config

    return consent_and_config.run(seed=args.seed).render()


def _run_quality(args) -> str:
    from repro.experiments import detection_quality

    return detection_quality.run(seed=args.seed).render()


_COMMANDS = {
    "detect": (_run_detect, "Tables I-IV: the PDN customer detection pipeline"),
    "risk-matrix": (_run_risk_matrix, "Table V: the security & privacy risk matrix"),
    "im-checking": (_run_im_checking, "Table VI: IM-checking overhead"),
    "resources": (_run_resources, "Fig. 4: PDN peer resource consumption"),
    "bandwidth": (_run_bandwidth, "Fig. 5: upload growth with served peers"),
    "free-riding": (_run_free_riding, "§IV-B: in-the-wild API-key study"),
    "ip-leak": (_run_ip_leak, "§IV-D: in-the-wild IP harvest"),
    "token-defense": (_run_token_defense, "§V-A: disposable video-binding tokens"),
    "ecdn": (_run_ecdn, "§VI: Microsoft eCDN discussion"),
    "propagation": (_run_propagation, "§IV-C: swarm-scale pollution propagation"),
    "consent": (_run_consent, "§IV-D: consent audit + cellular configs"),
    "detection-quality": (_run_quality, "detector precision/recall vs ground truth"),
}

_ALL_ORDER = [
    "detect", "detection-quality", "free-riding", "risk-matrix", "resources",
    "bandwidth", "ip-leak", "consent", "propagation", "token-defense",
    "im-checking", "ecdn",
]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Stealthy Peers' (DSN 2024) results.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (_fn, help_text) in list(_COMMANDS.items()) + [
        ("all", (None, "run every experiment in paper order"))
    ]:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--seed", type=int, default=2024, help="simulation seed")
        sub.add_argument("--full", action="store_true", help="paper-scale parameters")
        sub.add_argument("--days", type=float, default=1.0, help="ip-leak harvest days (without --full)")
    lint = subparsers.add_parser(
        "lint", help="run the determinism & simulation-safety linter (reprolint)"
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to repro-lint (paths, --format, ...)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # Forwarded before argparse: REMAINDER mangles leading options.
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    commands = _ALL_ORDER if args.command == "all" else [args.command]
    for name in commands:
        fn, _ = _COMMANDS[name]
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        with WallTimer() as timer:
            print(fn(args))
        print(f"[{name}: {timer.elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
