"""Command-line interface: regenerate any of the paper's results.

Subcommands are built from the experiment registry
(:mod:`repro.harness.registry`) — adding an experiment module with an
``@experiment(...)`` registration is all it takes to appear here.

Usage::

    python -m repro list              # show every registered experiment
    python -m repro detect            # Tables I-IV
    python -m repro all --jobs 4      # everything, in paper order, parallel
    python -m repro all --format json --out runs/   # manifests + JSON results
    python -m repro verify --runs 2   # replay-from-seed determinism check
    python -m repro verify --sanitize # ... plus DetSan guards + dispatch traces
    python -m repro bandwidth --profile   # event-loop callback-site profile
    python -m repro lint              # reprolint the source tree
"""

from __future__ import annotations

import argparse
import ast
import json
import sys

from repro.harness import registry
from repro.harness.runner import Runner, RunOutcome, RunRequest


def _parse_override(text: str) -> tuple[str, object]:
    """Parse one ``--param key=value`` override; values via literal_eval."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(f"expected KEY=VALUE, got {text!r}")
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def _add_run_options(sub: argparse.ArgumentParser) -> None:
    """The options shared by every experiment subcommand and ``all``."""
    sub.add_argument("--seed", type=int, default=registry.DEFAULT_SEED, help="simulation seed")
    sub.add_argument("--full", action="store_true", help="paper-scale parameters")
    sub.add_argument("--quick", action="store_true", help="scaled-down smoke parameters")
    sub.add_argument("--out", metavar="DIR", default=None,
                     help="write a manifest + result JSON per experiment under DIR")
    sub.add_argument("--format", choices=("text", "json"), default="text", dest="fmt",
                     help="stdout format (default: text)")
    sub.add_argument("--profile", action="store_true",
                     help="profile event-loop callback sites during the run")
    sub.add_argument("--sanitize", action="store_true",
                     help="run under DetSan: raise on wall-clock/global-RNG use "
                          "in simulation code and fingerprint event dispatch")
    sub.add_argument("-p", "--param", action="append", default=[], type=_parse_override,
                     metavar="KEY=VALUE", help="override one experiment parameter")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser from the experiment registry."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Stealthy Peers' (DSN 2024) results.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for spec in registry.all_specs():
        sub = subparsers.add_parser(spec.name, help=spec.help)
        _add_run_options(sub)
        for opt in spec.options:
            sub.add_argument(opt.flag, dest=f"opt_{opt.param}", type=opt.type,
                             default=None, help=opt.help)
    all_sub = subparsers.add_parser("all", help="run every experiment in paper order")
    _add_run_options(all_sub)
    all_sub.add_argument("--jobs", type=int, default=1,
                         help="run experiments in a process pool of this size")
    verify = subparsers.add_parser(
        "verify", help="re-run each experiment at the same seed; fail on digest mismatch"
    )
    verify.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiments to verify (default: all)")
    verify.add_argument("--seed", type=int, default=registry.DEFAULT_SEED, help="simulation seed")
    verify.add_argument("--runs", type=int, default=2, help="executions per experiment")
    verify.add_argument("--jobs", type=int, default=1, help="process-pool size")
    verify.add_argument("--quick", action="store_true", help="scaled-down smoke parameters")
    verify.add_argument("--sanitize", action="store_true",
                        help="run under DetSan and report the first divergent "
                             "event when dispatch traces disagree")
    subparsers.add_parser("list", help="list every registered experiment")
    lint = subparsers.add_parser(
        "lint", help="run the determinism & simulation-safety linter (reprolint)"
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to repro-lint (paths, --format, ...)")
    return parser


def _resolved_params(spec, args) -> dict:
    """Merge the spec's parameter layers with this invocation's flags."""
    option_values = {}
    for opt in spec.options:
        value = getattr(args, f"opt_{opt.param}", None)
        if value is not None:
            option_values[opt.param] = value
    return spec.resolve_params(
        full=args.full,
        quick=args.quick,
        option_values=option_values,
        overrides=dict(args.param),
    )


def _print_text(outcome: RunOutcome) -> None:
    """The classic per-experiment text block: banner, result, timing."""
    record = outcome.record
    print(f"\n{'=' * 72}\n{record.experiment}\n{'=' * 72}")
    if record.ok:
        print(outcome.rendered)
    else:
        print(f"FAILED: {record.error}")
    if outcome.profile:
        from repro.harness.profile import SiteProfiler, render_wheel_summary

        profiler = SiteProfiler()
        profiler.total = outcome.profile["total_events"]
        profiler.sites = dict(outcome.profile["sites"])
        print()
        print(profiler.render())
        wheel = outcome.profile.get("wheel")
        if wheel:
            print(render_wheel_summary(wheel))
    print(
        f"[{record.experiment}: {record.wall_seconds:.1f}s, "
        f"{record.events_fired} events, digest {str(record.result_digest)[:12]}]"
    )


def _run_experiments(args, names: list[str]) -> int:
    """Execute ``names`` through the runner and emit the chosen format."""
    requests = []
    for name in names:
        spec = registry.get(name)
        requests.append(RunRequest(name, args.seed, _resolved_params(spec, args)))
    runner = Runner(jobs=getattr(args, "jobs", 1), out_dir=args.out,
                    profile=args.profile, sanitize=args.sanitize)
    outcomes = runner.run(requests)
    if args.fmt == "json":
        payload = {
            "runs": [
                {"manifest": o.record.to_dict(), **o.to_payload()} for o in outcomes
            ]
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for outcome in outcomes:
            _print_text(outcome)
    return 0 if all(o.record.ok for o in outcomes) else 1


def _run_verify(args) -> int:
    """The ``repro verify`` subcommand: replay and compare digests."""
    names = args.experiments or registry.names()
    params_for = {}
    for name in names:
        spec = registry.get(name)  # validates unknown names early
        params_for[name] = spec.resolve_params(quick=args.quick)
    runner = Runner(jobs=args.jobs, sanitize=args.sanitize)
    report = runner.verify(names, seed=args.seed, runs=args.runs, params_for=params_for)
    print(report.render())
    for name, error in sorted(report.errors.items()):
        print(f"\n{name} failed:\n{error}")
    return 0 if report.ok else 1


def _run_list() -> int:
    """The ``repro list`` subcommand: show the registry."""
    from repro.util.tables import render_table

    rows = [
        [spec.name, spec.paper_ref or "-", spec.module.rsplit(".", 1)[-1], spec.help]
        for spec in registry.all_specs()
    ]
    print(render_table(["experiment", "paper", "module", "description"], rows,
                       title="registered experiments"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # Forwarded before argparse: REMAINDER mangles leading options.
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _run_list()
    if args.command == "verify":
        return _run_verify(args)
    names = registry.names() if args.command == "all" else [args.command]
    return _run_experiments(args, names)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
