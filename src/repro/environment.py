"""The simulation environment: one object bundling shared infrastructure.

Everything an experiment needs to stand up — event loop, network, URL
space, geolocation database, STUN/TURN infrastructure, and geo-aware
host allocation — lives here, so examples and benchmarks read as "build
an environment, add parties, run".
"""

from __future__ import annotations

from repro.net.clock import EventLoop
from repro.net.nat import NatType
from repro.net.network import Host, Network
from repro.privacy.geo import GeoDatabase
from repro.streaming.http import HttpClient, UrlSpace
from repro.util.ids import CountingIdFactory
from repro.util.rand import DeterministicRandom
from repro.webrtc.peer_connection import RtcConfig
from repro.webrtc.stun import StunServer
from repro.webrtc.turn import TurnServer


class Environment:
    """Shared infrastructure for one simulation run."""

    def __init__(self, seed: int | str = 0, loss_rate: float = 0.0) -> None:
        self.rand = DeterministicRandom(seed)
        self.loop = EventLoop()
        self.network = Network(self.loop, rand=self.rand, loss_rate=loss_rate)
        self.urlspace = UrlSpace()
        self.geo = GeoDatabase()
        self.ids = CountingIdFactory()
        self.stun = StunServer(self.network.add_host("stun.infra", region="US"))
        self._turn: TurnServer | None = None

    @property
    def turn(self) -> TurnServer:
        """A TURN relay, created on first use (the §V-C mitigation)."""
        if self._turn is None:
            self._turn = TurnServer(self.network.add_host("turn.infra", region="US"))
        return self._turn

    def rtc_config(self, relay_only: bool = False) -> RtcConfig:
        """Rtc config."""
        return RtcConfig(
            stun_servers=[self.stun.endpoint],
            turn_server=self.turn.endpoint if relay_only else None,
            relay_only=relay_only,
        )

    def add_viewer_host(
        self,
        name: str | None = None,
        country: str = "US",
        nat_type: NatType = NatType.FULL_CONE,
        uplink_bytes_per_sec: float | None = None,
        external_ip: str | None = None,
    ) -> Host:
        """A NATed host whose public address geolocates to ``country``.

        ``external_ip`` overrides the geolocated draw — scenario
        populations use it to park CGNAT viewers in the RFC 6598 shared
        space; the caller must supply an address not already in use.
        """
        name = name or self.ids.next("viewer")
        if external_ip is None:
            external_ip = self.geo.random_ip(self.rand.fork(f"ip:{name}"), country)
            attempts = 0
            while external_ip in self.network.hosts or self.network.is_routable(external_ip):
                external_ip = self.geo.random_ip(self.rand.fork(f"ip:{name}:{attempts}"), country)
                attempts += 1
        nat = self.network.add_nat(nat_type, external_ip=external_ip)
        return self.network.add_host(
            name, nat=nat, region=country, uplink_bytes_per_sec=uplink_bytes_per_sec
        )

    def add_server_host(self, name: str, country: str = "US") -> Host:
        """Add server host."""
        return self.network.add_host(name, region=country)

    def http_client(self, host: Host, proxy=None) -> HttpClient:
        """Http client."""
        return HttpClient(self.urlspace, client_ip=host.public_ip, proxy=proxy)

    def inject_faults(self, plan=None):
        """Attach a :class:`~repro.net.faults.FaultInjector`, arming ``plan``.

        Idempotent on the injector: repeated calls reuse the one attached
        to the network, so several plans can be armed on one environment.
        """
        from repro.net.faults import FaultInjector

        injector = self.network.faults
        if injector is None:
            injector = FaultInjector(self.network, urlspace=self.urlspace)
        if plan is not None:
            injector.arm(plan)
        return injector

    def run(self, seconds: float) -> None:
        """Advance the simulated clock by ``seconds``."""
        self.loop.run(seconds)
