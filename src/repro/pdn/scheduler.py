"""Swarm membership and neighbor selection (mesh overlay).

PDNs are mesh-based (§II): each peer connects to a random subset of the
swarm watching the same content. Neighbor selection is also where the
§V-C IP-leak mitigation plugs in — constraining candidates to the same
country or ISP before their addresses are ever disclosed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.rand import DeterministicRandom


class GeoFilterMode(enum.Enum):
    """How aggressively the scheduler restricts candidate disclosure."""

    NONE = "none"
    SAME_COUNTRY = "same_country"
    SAME_ISP = "same_isp"


@dataclass
class PeerRecord:
    """What the signaling server knows about one connected peer."""

    peer_id: str
    ip: str
    country: str = "unknown"
    isp: str = "unknown"
    joined_at: float = 0.0
    # Relay-only peers advertise no real transport address (§V-C TURN
    # mitigation): the scheduler may pick them, but their IP is never
    # disclosed to other peers.
    hidden: bool = False
    session: object | None = field(default=None, repr=False)


class SwarmScheduler:
    """Picks candidate neighbors for a joining or refreshing peer."""

    def __init__(
        self,
        rand: DeterministicRandom,
        max_candidates: int = 8,
        geo_filter: GeoFilterMode = GeoFilterMode.NONE,
    ) -> None:
        self.rand = rand
        self.max_candidates = max_candidates
        self.geo_filter = geo_filter
        self.candidates_disclosed = 0

    def eligible(self, candidate: PeerRecord, requester: PeerRecord) -> bool:
        """Eligible."""
        if candidate.peer_id == requester.peer_id:
            return False
        if self.geo_filter is GeoFilterMode.SAME_COUNTRY:
            return candidate.country == requester.country
        if self.geo_filter is GeoFilterMode.SAME_ISP:
            return candidate.isp == requester.isp and candidate.country == requester.country
        return True

    def candidates_for(
        self,
        swarm: list[PeerRecord],
        requester: PeerRecord,
        limit: int | None = None,
    ) -> list[PeerRecord]:
        """Random sample of eligible swarm members for the requester."""
        limit = limit if limit is not None else self.max_candidates
        pool = [p for p in swarm if self.eligible(p, requester)]
        if len(pool) > limit:
            pool = self.rand.sample(pool, limit)
        self.candidates_disclosed += len(pool)
        return pool
