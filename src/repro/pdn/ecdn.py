"""Microsoft eCDN (§VI Discussion).

After acquiring Peer5, Microsoft folded the service into Teams/Stream
as an *enterprise* CDN. Two properties matter for the paper's follow-up
measurement:

- the API key is the **Microsoft tenant id**, shared across the
  enterprise and *no longer publicly visible* — it never appears in page
  source, so the key-scraping step of the free-riding attack has nothing
  to scrape;
- the **silent simulator** runs peers in headless browsers to exercise
  data transmission. Against it, the paper observed no peer connection
  in the direct-pollution test but confirmed that *video segment
  pollution still works* — the integrity gap survived the acquisition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import PdnAnalyzer, PeerContainer
from repro.core.testbed import TestBed, build_test_bed
from repro.environment import Environment
from repro.pdn.auth import AuthPolicyKind
from repro.pdn.billing import BillingModel
from repro.pdn.provider import ProviderProfile

MSECDN = ProviderProfile(
    name="msecdn",
    sdk_host="ecdn.microsoft.com",
    signaling_host="signal.ecdn.microsoft.com",
    auth_policy=AuthPolicyKind.API_KEY_ONLY,  # the tenant id *is* the key...
    billing_model=BillingModel.NONE,  # bundled with the enterprise license
    sdk_url_pattern="https://ecdn.microsoft.com/sdk/{key}/loader.js",
    android_namespace="com.microsoft.ecdn",
    slow_start_segments=2,
)


def build_ecdn_test_bed(env: Environment, **kwargs) -> TestBed:
    """An eCDN deployment: same stack, but the tenant id stays out of
    the page source (delivered through enterprise configuration)."""
    bed = build_test_bed(env, MSECDN, domain="stream.contoso.example", **kwargs)
    bed.site.landing.embed.credential_in_page = False
    return bed


@dataclass
class SilentSimulator:
    """The eCDN test harness: headless peers that only move data.

    The paper ran its content-integrity tests against this simulator;
    here it is a thin arrangement of analyzer peer containers with
    playback disabled from the UI's point of view (the players still
    drive segment fetches — that is what "silent" peers do)."""

    analyzer: PdnAnalyzer
    bed: TestBed

    def launch_peer(self, name: str, proxy=None) -> PeerContainer:
        """Launch peer."""
        peer = self.analyzer.create_peer(name=name, proxy=proxy)
        peer.watch_test_stream(self.bed)
        return peer


def tenant_id_exposed(bed: TestBed, html: str) -> bool:
    """Would a scraper find the tenant id in this page? (§VI: it must not.)"""
    return bed.api_key in html
