"""The provider's customer portal (usage & billing dashboard).

§III-B: the authors "signed up as a customer of the verified PDN
services so as to access their documentation, client-side SDKs as well
as customer portals". The portal is where a free-riding victim would
*see* the damage: P2P traffic and viewer-hours they never served,
accruing cost under their API key.

Fittingly for the ecosystem's security posture, the portal
authenticates with the same static API key the paper shows anyone can
scrape — so the attacker can even watch the victim's meter.
"""

from __future__ import annotations

import json

from repro.streaming.http import HttpRequest, HttpResponse


class CustomerPortal:
    """Read-only usage dashboard, one per provider."""

    def __init__(self, provider) -> None:
        self.provider = provider
        self.hostname = f"portal.{provider.profile.sdk_host}"
        self.requests_served = 0

    def install(self, urlspace) -> "CustomerPortal":
        """Register this component in the URL space and return it."""
        urlspace.register(self.hostname, self)
        return self

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve one HTTP request."""
        self.requests_served += 1
        if not request.path.startswith("/api/usage"):
            return HttpResponse(404, b"not found")
        key_value = _query_param(request.path, "key")
        api_key = self.provider.authenticator.lookup(key_value or "")
        if api_key is None:
            return HttpResponse(403, b"invalid api key")
        account = self.provider.billing.account(api_key.customer_id)
        payload = {
            "customer_id": api_key.customer_id,
            "key_active": api_key.active,
            "p2p_bytes": account.p2p_bytes,
            "viewer_hours": round(account.viewer_seconds / 3600.0, 4),
            "sessions": account.sessions,
            "cost_usd": round(account.cost, 6),
            "billing_model": account.model.value,
        }
        return HttpResponse(
            200, json.dumps(payload).encode(), {"content-type": "application/json"}
        )


def _query_param(path: str, name: str) -> str | None:
    if "?" not in path:
        return None
    for chunk in path.split("?", 1)[1].split("&"):
        if chunk.startswith(name + "="):
            return chunk.split("=", 1)[1]
    return None
