"""Usage billing — the economics of the free-riding attack.

§IV-B: Peer5 and Streamroot charge by monthly P2P traffic (Peer5:
$500 per 50 TB), Viblast by concurrent viewer hours ($0.01/hour). An
attacker free-riding a victim's key inflates exactly these meters, so
the billing account is what the free-riding benchmark reads to show the
monetary damage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BillingModel(enum.Enum):
    """BillingModel."""
    P2P_TRAFFIC = "p2p_traffic"  # $ per byte of P2P traffic (Peer5, Streamroot)
    VIEWER_HOURS = "viewer_hours"  # $ per concurrent viewer hour (Viblast)
    NONE = "none"  # private services bill nobody


# Peer5's public pricing: $500 for 50 TB of P2P traffic.
PEER5_PRICE_PER_BYTE = 500.0 / (50 * 1e12)
VIBLAST_PRICE_PER_VIEWER_HOUR = 0.01


@dataclass
class BillingAccount:
    """Usage meters for one customer at one provider."""

    customer_id: str
    model: BillingModel
    price_per_byte: float = PEER5_PRICE_PER_BYTE
    price_per_viewer_hour: float = VIBLAST_PRICE_PER_VIEWER_HOUR
    p2p_bytes: int = 0
    viewer_seconds: float = 0.0
    sessions: int = 0

    def record_p2p_bytes(self, count: int) -> None:
        """Record p2p bytes."""
        if count < 0:
            raise ValueError("byte count cannot be negative")
        self.p2p_bytes += count

    def record_viewer_time(self, seconds: float) -> None:
        """Record viewer time."""
        if seconds < 0:
            raise ValueError("viewer time cannot be negative")
        self.viewer_seconds += seconds

    def record_session(self) -> None:
        """Record session."""
        self.sessions += 1

    @property
    def cost(self) -> float:
        """Dollars owed under this provider's pricing model."""
        if self.model is BillingModel.P2P_TRAFFIC:
            return self.p2p_bytes * self.price_per_byte
        if self.model is BillingModel.VIEWER_HOURS:
            return (self.viewer_seconds / 3600.0) * self.price_per_viewer_hour
        return 0.0


class BillingLedger:
    """All customer accounts at one provider."""

    def __init__(self, model: BillingModel) -> None:
        self.model = model
        self._accounts: dict[str, BillingAccount] = {}

    def account(self, customer_id: str) -> BillingAccount:
        """Account."""
        if customer_id not in self._accounts:
            self._accounts[customer_id] = BillingAccount(customer_id, self.model)
        return self._accounts[customer_id]

    def total_cost(self) -> float:
        """Total cost."""
        return sum(a.cost for a in self._accounts.values())

    def accounts(self) -> list[BillingAccount]:
        """Accounts."""
        return list(self._accounts.values())
