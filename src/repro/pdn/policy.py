"""Per-customer client-side PDN configuration.

§IV-D's *resource squatting in the wild* finding is about exactly this
object: Peer5 ships the customer's configuration in an unprotected
JavaScript variable, and three popular apps were found configured to use
viewers' *cellular* data for both upload and download. The policy knobs
here mirror the fields the paper extracted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CellularPolicy(enum.Enum):
    """What the SDK may do when the device is on a cellular connection."""

    NONE = "none"  # no P2P on cellular at all
    LEECH = "leech"  # download from peers, never upload (most customers)
    FULL = "full"  # upload and download on cellular (the 3 flagged apps)


@dataclass(frozen=True)
class ClientPolicy:
    """The customer-controlled SDK configuration (the unprotected JS config)."""

    cellular: CellularPolicy = CellularPolicy.LEECH
    max_neighbors: int = 8
    max_upload_bytes_per_sec: float | None = None  # None = unlimited (default!)
    show_consent_dialog: bool = False  # no studied customer sets this
    allow_user_disable: bool = False  # none of the providers allow it

    def upload_allowed(self, connection_type: str) -> bool:
        """May the SDK serve segments to peers on this connection type?"""
        if connection_type == "cellular":
            return self.cellular is CellularPolicy.FULL
        return True

    def download_allowed(self, connection_type: str) -> bool:
        """May the SDK fetch segments from peers on this connection type?"""
        if connection_type == "cellular":
            return self.cellular in (CellularPolicy.LEECH, CellularPolicy.FULL)
        return True

    def to_js_config(self) -> dict:
        """The unprotected configuration variable shipped in the SDK JS."""
        return {
            "cellularMode": self.cellular.value,
            "maxNeighbors": self.max_neighbors,
            "maxUploadBps": self.max_upload_bytes_per_sec,
            "consentDialog": self.show_consent_dialog,
            "userDisable": self.allow_user_disable,
        }
