"""PDN peer/customer authentication.

The free-riding vulnerability (§IV-B) is *inherent* in how these
services authenticate: a static API key embedded in the customer's page,
checked — at best — against the HTTP ``Origin``/``Referer`` headers,
which any proxy can spoof. This module implements that mechanism
faithfully, per provider policy:

- ``API_KEY_ONLY``: any origin accepted (Peer5/Streamroot default) —
  vulnerable to the plain cross-domain attack;
- ``ALLOWLIST_OPTIONAL``: a customer *may* configure a domain allowlist;
- ``ALLOWLIST_REQUIRED``: the provider forces an allowlist at setup
  (Viblast) — stops cross-domain but not domain spoofing, because the
  check trusts client-supplied headers;
- ``SESSION_TOKEN``: private services issue per-session tokens, with or
  without binding to the video URL (Tencent Video famously without).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.rand import DeterministicRandom


class AuthPolicyKind(enum.Enum):
    """AuthPolicyKind."""
    API_KEY_ONLY = "api_key_only"
    ALLOWLIST_OPTIONAL = "allowlist_optional"
    ALLOWLIST_REQUIRED = "allowlist_required"
    SESSION_TOKEN = "session_token"


@dataclass
class ApiKey:
    """A customer's static credential, as shipped inside pages/apps."""

    key: str
    customer_id: str
    allowed_domains: frozenset[str] | None = None  # None = no allowlist configured
    active: bool = True

    @property
    def has_allowlist(self) -> bool:
        """Has allowlist."""
        return self.allowed_domains is not None


@dataclass(frozen=True)
class AuthDecision:
    """Outcome of an authentication attempt."""

    accepted: bool
    customer_id: str | None = None
    reason: str = ""


def _registrable_domain(origin: str) -> str:
    """Normalize an Origin/Referer value to a comparable domain."""
    value = origin.strip().lower()
    for prefix in ("https://", "http://", "app://"):
        if value.startswith(prefix):
            value = value[len(prefix) :]
    value = value.split("/")[0].split(":")[0]
    return value[4:] if value.startswith("www.") else value


class Authenticator:
    """Server-side authentication for one provider."""

    def __init__(self, policy: AuthPolicyKind, rand: DeterministicRandom | None = None) -> None:
        self.policy = policy
        self.rand = rand or DeterministicRandom("auth")
        self._keys: dict[str, ApiKey] = {}
        self._issued: dict[str, int] = {}  # customer_id -> keys issued so far
        self._session_tokens: dict[str, dict] = {}  # token -> claims
        self.attempts = 0
        self.rejections = 0

    # -- key management ---------------------------------------------------

    def issue_key(
        self,
        customer_id: str,
        allowed_domains: set[str] | None = None,
    ) -> ApiKey:
        """Issue a static API key for a customer.

        Under ``ALLOWLIST_REQUIRED`` the provider insists on a non-empty
        allowlist at setup time (Viblast's behaviour).

        Key material is derived from a per-customer fork rather than the
        authenticator's sequential stream, so the key a customer receives
        does not depend on how many other customers signed up first —
        corpus shards can provision disjoint customer subsets in any
        order and still mint identical credentials.
        """
        if self.policy is AuthPolicyKind.ALLOWLIST_REQUIRED and not allowed_domains:
            allowed_domains = {customer_id}  # provider defaults it to the signup domain
        serial = self._issued.get(customer_id, 0)
        self._issued[customer_id] = serial + 1
        key = ApiKey(
            key=self.rand.fork(f"key:{customer_id}:{serial}").bytes(12).hex(),
            customer_id=customer_id,
            allowed_domains=(
                frozenset(_registrable_domain(d) for d in allowed_domains)
                if allowed_domains
                else None
            ),
        )
        self._keys[key.key] = key
        return key

    def revoke_key(self, key: str) -> None:
        """Revoke key."""
        if key in self._keys:
            self._keys[key].active = False

    def configure_allowlist(self, key: str, domains: set[str]) -> None:
        """Configure allowlist."""
        api_key = self._keys[key]
        api_key.allowed_domains = frozenset(_registrable_domain(d) for d in domains)

    def lookup(self, key: str) -> ApiKey | None:
        """Lookup."""
        return self._keys.get(key)

    # -- session tokens (private services) -----------------------------------

    def issue_session_token(self, customer_id: str, video_url: str | None = None) -> str:
        """Issue a temporary session token, optionally video-bound.

        ``video_url=None`` reproduces Tencent Video's weakness: the token
        authenticates the peer but not *what* it is allowed to stream.
        """
        token = self.rand.bytes(16).hex()
        self._session_tokens[token] = {"customer_id": customer_id, "video_url": video_url}
        return token

    # -- the check itself ---------------------------------------------------

    def authenticate(
        self,
        key_or_token: str,
        origin: str | None = None,
        video_url: str | None = None,
    ) -> AuthDecision:
        """Authenticate a joining peer.

        ``origin`` is whatever the client *claims* in its Origin/Referer
        headers — the server has no way to verify it, which is the root
        cause of the domain-spoofing bypass.
        """
        self.attempts += 1
        if self.policy is AuthPolicyKind.SESSION_TOKEN:
            decision = self._check_session_token(key_or_token, video_url)
        else:
            decision = self._check_api_key(key_or_token, origin)
        if not decision.accepted:
            self.rejections += 1
        return decision

    def _check_api_key(self, key: str, origin: str | None) -> AuthDecision:
        api_key = self._keys.get(key)
        if api_key is None:
            return AuthDecision(False, reason="unknown api key")
        if not api_key.active:
            return AuthDecision(False, reason="expired api key")
        if api_key.allowed_domains is not None:
            claimed = _registrable_domain(origin or "")
            if claimed not in api_key.allowed_domains:
                return AuthDecision(
                    False, api_key.customer_id, reason=f"origin {claimed!r} not in allowlist"
                )
        return AuthDecision(True, api_key.customer_id, reason="ok")

    def _check_session_token(self, token: str, video_url: str | None) -> AuthDecision:
        claims = self._session_tokens.get(token)
        if claims is None:
            return AuthDecision(False, reason="unknown session token")
        bound = claims.get("video_url")
        if bound is not None and video_url != bound:
            return AuthDecision(
                False, claims["customer_id"], reason="token not valid for this video"
            )
        return AuthDecision(True, claims["customer_id"], reason="ok")
