"""The PDN signaling/tracker server.

This is the trusted third party that distinguishes PDNs from classic
P2P-CDNs (§III-A): it authenticates joining peers, groups them into
swarms keyed by (customer, video), disclosed candidate peers' transport
addresses, and relays SDP offers/answers.

The *join* step rides over HTTP so that an intercepting proxy sees — and
can rewrite — the ``Origin``/``Referer`` headers, which is precisely the
paper's domain-spoofing attack surface. After a successful join the SDK
attaches a push callback (the websocket analog) for server-initiated
messages.

Wire endpoints (all JSON bodies)::

    POST /v2/join        {credential, video_url}        -> {session_id, peer_id}
    POST /v2/candidates  {session_id, limit?}           -> {peers: [{peer_id, ip, country}]}
    POST /v2/relay       {session_id, to, kind, payload} -> {ok}
    POST /v2/stats       {session_id, p2p_up, p2p_down} -> {ok}
    POST /v2/im_report   {session_id, index, digest}    -> {ok}       (defense)
    POST /v2/sim         {session_id, index}            -> {digest, sig} | 404 (defense)
    POST /v2/leave       {session_id}                   -> {ok}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.net.clock import EventLoop
from repro.pdn.scheduler import PeerRecord
from repro.streaming.http import HttpRequest, HttpResponse
from repro.util.rand import DeterministicRandom

PushCallback = Callable[[dict], None]


@dataclass
class DisclosureEvent:
    """One candidate-IP disclosure: whose address was shown to whom."""

    at: float
    to_peer: str
    about_peer: str
    ip: str


class SignalingSession:
    """Server-side state for one connected peer."""

    def __init__(
        self,
        server: "PdnSignalingServer",
        session_id: str,
        peer_id: str,
        customer_id: str,
        swarm_id: str,
        record: PeerRecord,
        video_url: str,
    ) -> None:
        self.server = server
        self.session_id = session_id
        self.peer_id = peer_id
        self.customer_id = customer_id
        self.swarm_id = swarm_id
        self.record = record
        self.video_url = video_url
        self.joined_at = server.loop.now
        self.last_seen = server.loop.now
        self.left = False
        self.push: PushCallback | None = None
        self.p2p_up_reported = 0
        self.p2p_down_reported = 0

    def deliver(self, message: dict) -> None:
        """Push a message to the attached client, if any."""
        if self.push is not None and not self.left:
            self.push(message)


class PdnSignalingServer:
    """The provider's signaling host (an HTTP server in the URL space)."""

    def __init__(self, loop: EventLoop, rand: DeterministicRandom, provider) -> None:
        self.loop = loop
        self.rand = rand
        self.provider = provider
        self._sessions: dict[str, SignalingSession] = {}
        self._swarms: dict[str, dict[str, SignalingSession]] = {}
        self.blacklist: set[str] = set()  # peer ids banned by the defense layer
        self.disclosures: list[DisclosureEvent] = []
        self.integrity = None  # IntegrityCoordinator, installed by the defense
        self.geo_resolver: Callable[[str], tuple[str, str]] = lambda ip: ("unknown", "unknown")
        self._peer_counter = 0
        self.joins_accepted = 0
        self.joins_rejected = 0
        self.sessions_reaped = 0
        # Trackers expire silent peers: the SDK's periodic stats report
        # doubles as its keepalive.
        self.session_ttl = 60.0
        loop.call_every(self.session_ttl / 2, self._reap_idle_sessions)

    # -- HTTP interface -------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve one HTTP request."""
        try:
            body = json.loads(request.body.decode() or "{}")
        except ValueError:
            return _json_response(400, {"error": "bad json"})
        path = request.path
        if path == "/v2/join":
            return self._handle_join(request, body)
        session = self._sessions.get(body.get("session_id", ""))
        if session is None or session.left:
            return _json_response(403, {"error": "unknown session"})
        if session.peer_id in self.blacklist:
            return _json_response(403, {"error": "peer blacklisted"})
        session.last_seen = self.loop.now
        if path == "/v2/candidates":
            return self._handle_candidates(session, body)
        if path == "/v2/relay":
            return self._handle_relay(session, body)
        if path == "/v2/stats":
            return self._handle_stats(session, body)
        if path == "/v2/im_report":
            return self._handle_im_report(session, body)
        if path == "/v2/sim":
            return self._handle_sim(session, body)
        if path == "/v2/leave":
            self._leave(session)
            return _json_response(200, {"ok": True})
        return _json_response(404, {"error": "no such endpoint"})

    # -- join ----------------------------------------------------------------

    def _handle_join(self, request: HttpRequest, body: dict) -> HttpResponse:
        credential = body.get("credential", "")
        video_url = body.get("video_url", "")
        origin = request.header("Origin") or request.header("Referer") or ""
        if self.provider.token_defense is not None:
            outcome = self.provider.token_defense.validate(credential, video_url)
            if not outcome.accepted:
                self.joins_rejected += 1
                return _json_response(403, {"error": outcome.reason})
            customer_id = outcome.customer_id or "unknown"
        else:
            decision = self.provider.authenticator.authenticate(
                credential, origin=origin, video_url=video_url
            )
            if not decision.accepted:
                self.joins_rejected += 1
                return _json_response(403, {"error": decision.reason})
            customer_id = decision.customer_id or "unknown"
        self.joins_accepted += 1
        self._peer_counter += 1
        peer_id = f"peer-{self._peer_counter}"
        session_id = self.rand.bytes(8).hex()
        country, isp = self.geo_resolver(request.client_ip)
        record = PeerRecord(
            peer_id=peer_id,
            ip=request.client_ip,
            country=country,
            isp=isp,
            joined_at=self.loop.now,
            hidden=bool(body.get("relay_only", False)),
        )
        swarm_id = f"{customer_id}|{video_url}"
        session = SignalingSession(
            self, session_id, peer_id, customer_id, swarm_id, record, video_url
        )
        record.session = session
        self._sessions[session_id] = session
        self._swarms.setdefault(swarm_id, {})[peer_id] = session
        account = self.provider.billing.account(customer_id)
        account.record_session()
        return _json_response(200, {"session_id": session_id, "peer_id": peer_id})

    def attach(self, session_id: str, push: PushCallback) -> SignalingSession | None:
        """Open the push channel (websocket analog) for a joined session."""
        session = self._sessions.get(session_id)
        if session is not None:
            session.push = push
        return session

    # -- swarm operations --------------------------------------------------------

    def _handle_candidates(self, session: SignalingSession, body: dict) -> HttpResponse:
        swarm = [
            s.record
            for s in self._swarms.get(session.swarm_id, {}).values()
            if not s.left and s.peer_id not in self.blacklist
        ]
        limit = body.get("limit")
        chosen = self.provider.scheduler.candidates_for(swarm, session.record, limit)
        peers = []
        for record in chosen:
            if not record.hidden:
                self.disclosures.append(
                    DisclosureEvent(self.loop.now, session.peer_id, record.peer_id, record.ip)
                )
            peers.append(
                {
                    "peer_id": record.peer_id,
                    "ip": "" if record.hidden else record.ip,
                    "country": record.country,
                }
            )
        return _json_response(200, {"peers": peers})

    def _handle_relay(self, session: SignalingSession, body: dict) -> HttpResponse:
        target_id = body.get("to", "")
        swarm = self._swarms.get(session.swarm_id, {})
        target = swarm.get(target_id)
        if target is None or target.left or target_id in self.blacklist:
            return _json_response(200, {"ok": False})
        target.deliver(
            {"type": body.get("kind", "message"), "from": session.peer_id, "payload": body.get("payload")}
        )
        return _json_response(200, {"ok": True})

    def _handle_stats(self, session: SignalingSession, body: dict) -> HttpResponse:
        up = int(body.get("p2p_up", 0))
        down = int(body.get("p2p_down", 0))
        session.p2p_up_reported += up
        session.p2p_down_reported += down
        # Upload bytes are the billable quantity (each transferred byte
        # is billed once, on the sender side).
        self.provider.billing.account(session.customer_id).record_p2p_bytes(up)
        return _json_response(200, {"ok": True})

    def _handle_im_report(self, session: SignalingSession, body: dict) -> HttpResponse:
        if self.integrity is None:
            return _json_response(200, {"ok": False})
        self.integrity.receive_report(
            session.peer_id,
            session.video_url,
            int(body["index"]),
            body["digest"],
            base=str(body.get("r", "")),
        )
        return _json_response(200, {"ok": True})

    def _handle_sim(self, session: SignalingSession, body: dict) -> HttpResponse:
        if self.integrity is None:
            return _json_response(404, {"error": "integrity checking not enabled"})
        sim = self.integrity.get_sim(
            session.video_url, int(body["index"]), base=str(body.get("r", ""))
        )
        if sim is None:
            return _json_response(404, {"error": "sim not available"})
        return _json_response(200, {"digest": sim.digest, "sig": sim.signature})

    def _leave(self, session: SignalingSession) -> None:
        if session.left:
            return
        session.left = True
        self._swarms.get(session.swarm_id, {}).pop(session.peer_id, None)
        account = self.provider.billing.account(session.customer_id)
        account.record_viewer_time(self.loop.now - session.joined_at)

    # -- administration ------------------------------------------------------

    def ban_peer(self, peer_id: str) -> None:
        """Blacklist a peer (the defense layer's response to fake IMs)."""
        self.blacklist.add(peer_id)
        for swarm in self._swarms.values():
            swarm.pop(peer_id, None)

    def _reap_idle_sessions(self) -> None:
        """Expire peers that stopped reporting (crashed tabs, killed
        containers): their addresses must not keep being disclosed."""
        deadline = self.loop.now - self.session_ttl
        for session in list(self._sessions.values()):
            if not session.left and session.last_seen < deadline:
                self.sessions_reaped += 1
                self._leave(session)

    def restart(self) -> None:
        """Simulate a signaling-server crash/redeploy: all in-memory
        session and swarm state is lost. (Durable state — customer keys,
        billing — lives in the provider and survives.)"""
        self._sessions.clear()
        self._swarms.clear()

    def settle_all(self) -> None:
        """Flush viewer-time billing for still-connected sessions."""
        for session in list(self._sessions.values()):
            self._leave(session)

    def swarm_size(self, swarm_id: str) -> int:
        """Number of live peers in a swarm."""
        return len(self._swarms.get(swarm_id, {}))

    def swarm_ids(self) -> list[str]:
        """All swarm identifiers currently known."""
        return list(self._swarms)


def _json_response(status: int, payload: dict) -> HttpResponse:
    return HttpResponse(status, json.dumps(payload).encode(), {"content-type": "application/json"})
