"""PDN provider profiles and the provider service object.

Three public providers are modeled after the paper's findings
(Table V):

=============  ====================  ==========================  =============
provider       auth policy           billing                     cross-domain?
=============  ====================  ==========================  =============
Peer5          allowlist optional    P2P traffic ($500/50 TB)    vulnerable by default
Streamroot     allowlist optional    P2P traffic                 vulnerable by default
Viblast        allowlist required    viewer hours ($0.01/h)      protected (but spoofable)
=============  ====================  ==========================  =============

Private platform services (Table IV) use per-session tokens and their
own signaling domains; :func:`private_profile` builds those, including
the Mango-TV-style no-binding weakness and the Tencent-style
token-not-bound-to-video weakness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.net.clock import EventLoop
from repro.pdn.auth import ApiKey, AuthPolicyKind, Authenticator
from repro.pdn.billing import BillingLedger, BillingModel
from repro.pdn.policy import ClientPolicy
from repro.pdn.scheduler import GeoFilterMode, SwarmScheduler
from repro.streaming.http import HttpRequest, HttpResponse, UrlSpace
from repro.util.rand import DeterministicRandom

# re-exported for convenience
__all__ = [
    "ProviderProfile",
    "PdnProvider",
    "AuthPolicyKind",
    "BillingModel",
    "PEER5",
    "STREAMROOT",
    "VIBLAST",
    "private_profile",
]


@dataclass(frozen=True)
class ProviderProfile:
    """Static description of a PDN provider's service design."""

    name: str
    sdk_host: str
    signaling_host: str
    auth_policy: AuthPolicyKind
    billing_model: BillingModel
    sdk_url_pattern: str  # the detector's URL signature, {key} substituted
    android_namespace: str | None = None  # APK signature (package namespace)
    manifest_key: str | None = None  # Android manifest metadata signature
    slow_start_segments: int = 2
    is_private: bool = False
    video_bound_tokens: bool = False  # private services: bind token to video URL
    drm_protected: bool = False  # private platforms gate playback on registered sources

    def sdk_url(self, api_key: str) -> str:
        """Sdk url."""
        return self.sdk_url_pattern.format(key=api_key)


PEER5 = ProviderProfile(
    name="peer5",
    sdk_host="api.peer5.com",
    signaling_host="signal.peer5.com",
    auth_policy=AuthPolicyKind.ALLOWLIST_OPTIONAL,
    billing_model=BillingModel.P2P_TRAFFIC,
    sdk_url_pattern="https://api.peer5.com/peer5.js?id={key}",
    android_namespace="com.peer5.sdk",
    manifest_key="com.peer5.ApiKey",
)

STREAMROOT = ProviderProfile(
    name="streamroot",
    sdk_host="cdn.streamroot.io",
    signaling_host="backend.dna.streamroot.io",
    auth_policy=AuthPolicyKind.ALLOWLIST_OPTIONAL,
    billing_model=BillingModel.P2P_TRAFFIC,
    sdk_url_pattern="https://cdn.streamroot.io/dna/{key}/dna.js",
    android_namespace="io.streamroot.dna",
    manifest_key="io.streamroot.dna.StreamrootKey",
)

VIBLAST = ProviderProfile(
    name="viblast",
    sdk_host="cdn.viblast.com",
    signaling_host="pdn.viblast.com",
    auth_policy=AuthPolicyKind.ALLOWLIST_REQUIRED,
    billing_model=BillingModel.VIEWER_HOURS,
    sdk_url_pattern="https://cdn.viblast.com/vb/{key}/viblast.js",
    android_namespace="com.viblast.android",
    manifest_key="com.viblast.LicenseKey",
)

PUBLIC_PROVIDERS = (PEER5, STREAMROOT, VIBLAST)


def private_profile(
    platform_domain: str,
    signaling_host: str,
    video_bound_tokens: bool = True,
    drm_protected: bool = True,
) -> ProviderProfile:
    """Build a private (single-platform) PDN service profile.

    Private platforms default to DRM-style access control on video
    sources (§IV-C: Mango TV transmitted polluted segments over DTLS but
    never played them, "probably because private PDN services maintain
    access control on all the existing video sources").
    """
    return ProviderProfile(
        name=f"private:{platform_domain}",
        sdk_host=platform_domain,
        signaling_host=signaling_host,
        auth_policy=AuthPolicyKind.SESSION_TOKEN,
        billing_model=BillingModel.NONE,
        sdk_url_pattern=f"https://{platform_domain}/player/pdn.js",
        slow_start_segments=2,
        is_private=True,
        video_bound_tokens=video_bound_tokens,
        drm_protected=drm_protected,
    )


class PdnProvider:
    """A running PDN service: auth + billing + signaling + scheduling.

    Also an HTTP server for its SDK host, serving the JavaScript SDK
    whose body carries the signature strings and the unprotected
    configuration variable that the detector and the resource-squatting
    analysis read.
    """

    def __init__(
        self,
        loop: EventLoop,
        rand: DeterministicRandom,
        profile: ProviderProfile,
        geo_filter: GeoFilterMode = GeoFilterMode.NONE,
        max_neighbors: int = 8,
    ) -> None:
        self.loop = loop
        self.rand = rand.fork(f"provider:{profile.name}")
        self.profile = profile
        self.authenticator = Authenticator(profile.auth_policy, self.rand.fork("auth"))
        self.billing = BillingLedger(profile.billing_model)
        self.scheduler = SwarmScheduler(
            self.rand.fork("sched"), max_candidates=max_neighbors, geo_filter=geo_filter
        )
        # The signaling server is created lazily to avoid a circular import.
        from repro.pdn.signaling import PdnSignalingServer

        self.signaling = PdnSignalingServer(loop, self.rand.fork("signal"), self)
        self._customer_policies: dict[str, ClientPolicy] = {}
        # Video sources registered with the platform's DRM/access control.
        # Only meaningful when profile.drm_protected is set.
        self.drm_registry: set[str] = set()
        # §V-A defense: when set, joins authenticate with disposable
        # video-binding tokens instead of the static API key.
        self.token_defense = None  # TokenValidator | None

    def register_drm_video(self, video_url: str) -> None:
        """Register drm video."""
        self.drm_registry.add(video_url)

    # -- customer management ------------------------------------------------

    def signup_customer(
        self,
        customer_id: str,
        allowed_domains: set[str] | None = None,
        policy: ClientPolicy | None = None,
    ) -> ApiKey:
        """Provision a customer: API key + client policy config."""
        key = self.authenticator.issue_key(customer_id, allowed_domains)
        self._customer_policies[customer_id] = policy or ClientPolicy()
        self.billing.account(customer_id)
        return key

    def customer_policy(self, customer_id: str) -> ClientPolicy:
        """Customer policy."""
        return self._customer_policies.get(customer_id, ClientPolicy())

    def issue_session_token(self, customer_id: str, video_url: str | None = None) -> str:
        """Private services: mint a session token (maybe video-bound)."""
        bound = video_url if self.profile.video_bound_tokens else None
        return self.authenticator.issue_session_token(customer_id, bound)

    # -- the SDK artifact -----------------------------------------------------

    def sdk_script_source(self, api_key: str) -> str:
        """The JavaScript SDK body served to browsers.

        Includes the provider namespace (a content signature) and the
        *unprotected configuration variable* (§IV-D resource squatting
        in the wild) exposing the customer's cellular policy.
        """
        key = self.authenticator.lookup(api_key)
        policy = (
            self.customer_policy(key.customer_id) if key is not None else ClientPolicy()
        )
        config = json.dumps(policy.to_js_config())
        return (
            f"/* {self.profile.name} pdn sdk */\n"
            f"var _pdnNamespace = '{self.profile.android_namespace or self.profile.name}';\n"
            f"var _pdnApiKey = '{api_key}';\n"
            f"var _pdnConfig = {config};\n"
            f"var _pdnSignaling = 'wss://{self.profile.signaling_host}/v2/ws';\n"
        )

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve the SDK JS from the provider's CDN host."""
        key = _extract_key_from_request(request, self.profile)
        if key is None:
            return HttpResponse(404, b"unknown sdk path")
        return HttpResponse(
            200,
            self.sdk_script_source(key).encode(),
            headers={"content-type": "application/javascript"},
        )

    def install(self, urlspace: UrlSpace) -> None:
        """Make the provider reachable: SDK host, signaling host, and —
        for public providers — the customer portal."""
        urlspace.register(self.profile.sdk_host, self)
        urlspace.register(self.profile.signaling_host, self.signaling)
        if not self.profile.is_private:
            from repro.pdn.portal import CustomerPortal

            self.portal = CustomerPortal(self).install(urlspace)


def _extract_key_from_request(request: HttpRequest, profile: ProviderProfile) -> str | None:
    """Pull the API key back out of an SDK URL, per provider pattern."""
    url = request.url
    prefix, suffix = profile.sdk_url_pattern.split("{key}")
    if url.startswith(prefix) and url.endswith(suffix):
        return url[len(prefix) : len(url) - len(suffix)] or None
    return None
