"""The PDN client SDK — the JavaScript library's in-browser behaviour.

The SDK is a :class:`~repro.streaming.player.SegmentLoader` that mixes
CDN and P2P delivery, reproducing the mechanisms the paper reverse-
engineered:

- **slow start** (§IV-C): the first ``slow_start_segments`` segments are
  always fetched from the CDN, which is what defeats *direct* content
  pollution — a victim's authentic CDN copies expose a neighbor whose
  announcements disagree, and that neighbor is dropped;
- **mesh swarming**: the SDK joins the provider's signaling server,
  receives candidate peers, and maintains up to ``max_neighbors``
  WebRTC links, announcing which segments it holds;
- **in-memory cache** with a purge timer (the browser-cache behaviour
  that blocks classic storage-based pollution attacks);
- **no integrity verification of P2P payloads** — the root cause of the
  video segment pollution attack. The optional ``integrity`` hook is the
  paper's §V-B defense and is off by default, as in the wild;
- **resource squatting**: uploads proceed whenever the customer policy
  allows, with no user consent; cellular behaviour follows
  :class:`~repro.pdn.policy.ClientPolicy`.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Callable, ClassVar

from repro.net.clock import EventLoop
from repro.net.network import Host
from repro.pdn.policy import ClientPolicy
from repro.streaming.http import HttpClient
from repro.util.errors import SdpError
from repro.util.rand import DeterministicRandom
from repro.webrtc.peer_connection import PeerConnection, RtcConfig, SessionDescription
from repro.webrtc.sdp import parse_sdp, render_sdp

CONTROL_CHANNEL = 1
DATA_CHANNEL = 2


def _data_frame(key: tuple[str, int], data: bytes) -> bytes:
    """Wire format of a segment delivery: index, rendition tag, payload."""
    rendition, index = key
    tag = rendition.encode()
    return struct.pack("!IH", index, len(tag)) + tag + data
_P2P_TIMEOUT = 3.0
_CACHE_TTL = 120.0
_STATS_INTERVAL = 5.0
_TOPOLOGY_INTERVAL = 10.0


#: Cap on the latency sample reservoir a client keeps for percentile
#: estimates. Long swarm runs record millions of P2P deliveries; the
#: streaming count/sum/min/max summary is exact, and p50/p95 come from
#: this bounded, seeded reservoir instead of an ever-growing list.
LATENCY_RESERVOIR_CAP = 256


@dataclass
class SdkStats:
    """Cumulative counters the resource monitor samples.

    P2P delivery latencies are summarised streamingly: exact
    ``count/sum/min/max`` plus a bounded sample reservoir
    (:attr:`p2p_latencies`, Algorithm R over the SDK's seeded stream)
    from which ``to_dict`` derives deterministic p50/p95 digests.
    """

    bytes_cdn: int = 0
    bytes_p2p_down: int = 0
    bytes_p2p_up: int = 0
    hash_bytes: int = 0  # bytes run through IM hashing (defense only)
    p2p_requests_served: int = 0
    p2p_requests_failed: int = 0
    p2p_fetches: int = 0
    p2p_fallbacks: int = 0
    neighbors_banned: int = 0
    peer_churn_evictions: int = 0  # neighbors dropped because their host churned
    p2p_latencies: list = field(default_factory=list)  # bounded sample reservoir
    p2p_latency_count: int = 0
    p2p_latency_sum: float = 0.0
    p2p_latency_min: float = 0.0
    p2p_latency_max: float = 0.0

    #: Class-level so it is not a dataclass field (and not serialised).
    RESERVOIR_CAP: ClassVar[int] = LATENCY_RESERVOIR_CAP

    def __post_init__(self) -> None:
        # Seeded stream for reservoir eviction, attached by the SDK via
        # attach_rand(); bare stats objects fall back to keep-first.
        self._latency_rand: DeterministicRandom | None = None
        if self.p2p_latencies and self.p2p_latency_count == 0:
            # Directly-constructed with raw samples (tests, old dicts):
            # derive the streaming summary from the list.
            samples = [float(x) for x in self.p2p_latencies]
            self.p2p_latencies = samples
            self.p2p_latency_count = len(samples)
            self.p2p_latency_sum = sum(samples)
            self.p2p_latency_min = min(samples)
            self.p2p_latency_max = max(samples)

    def attach_rand(self, rand: DeterministicRandom) -> None:
        """Wire the seeded stream the latency reservoir evicts with."""
        self._latency_rand = rand

    def record_latency(self, seconds: float) -> None:
        """Fold one request→delivery latency into the bounded summary."""
        count = self.p2p_latency_count = self.p2p_latency_count + 1
        self.p2p_latency_sum += seconds
        if count == 1:
            self.p2p_latency_min = self.p2p_latency_max = seconds
        else:
            if seconds < self.p2p_latency_min:
                self.p2p_latency_min = seconds
            if seconds > self.p2p_latency_max:
                self.p2p_latency_max = seconds
        reservoir = self.p2p_latencies
        if len(reservoir) < self.RESERVOIR_CAP:
            reservoir.append(seconds)
        elif self._latency_rand is not None:
            # Algorithm R: sample i survives with probability cap/i.
            slot = self._latency_rand.randint(0, count - 1)
            if slot < self.RESERVOIR_CAP:
                reservoir[slot] = seconds

    def _latency_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the reservoir (0.0 when empty)."""
        if not self.p2p_latencies:
            return 0.0
        ordered = sorted(self.p2p_latencies)
        rank = int(fraction * (len(ordered) - 1) + 0.5)
        return ordered[min(rank, len(ordered) - 1)]

    @property
    def p2p_total(self) -> int:
        """Total P2P bytes moved in either direction."""
        return self.bytes_p2p_down + self.bytes_p2p_up

    def to_dict(self) -> dict:
        """Every counter as plain JSON types, for chaos-run digests."""
        return {
            "bytes_cdn": self.bytes_cdn,
            "bytes_p2p_down": self.bytes_p2p_down,
            "bytes_p2p_up": self.bytes_p2p_up,
            "bytes_p2p_total": self.p2p_total,
            "hash_bytes": self.hash_bytes,
            "p2p_requests_served": self.p2p_requests_served,
            "p2p_requests_failed": self.p2p_requests_failed,
            "p2p_fetches": self.p2p_fetches,
            "p2p_fallbacks": self.p2p_fallbacks,
            "neighbors_banned": self.neighbors_banned,
            "peer_churn_evictions": self.peer_churn_evictions,
            "p2p_latencies": [round(lat, 9) for lat in self.p2p_latencies],
            "p2p_latency_count": self.p2p_latency_count,
            "p2p_latency_sum": round(self.p2p_latency_sum, 9),
            "p2p_latency_min": round(self.p2p_latency_min, 9),
            "p2p_latency_max": round(self.p2p_latency_max, 9),
            "p2p_latency_p50": round(self._latency_percentile(0.50), 9),
            "p2p_latency_p95": round(self._latency_percentile(0.95), 9),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SdkStats":
        """Rebuild from :meth:`to_dict` output (JSON round-trip).

        Latencies are coerced to ``float`` on load so that
        ``to_dict → from_dict → to_dict`` is a fixed point even when the
        JSON layer hands back ints (e.g. a rounded ``0``).
        """
        return cls(
            bytes_cdn=int(data.get("bytes_cdn", 0)),
            bytes_p2p_down=int(data.get("bytes_p2p_down", 0)),
            bytes_p2p_up=int(data.get("bytes_p2p_up", 0)),
            hash_bytes=int(data.get("hash_bytes", 0)),
            p2p_requests_served=int(data.get("p2p_requests_served", 0)),
            p2p_requests_failed=int(data.get("p2p_requests_failed", 0)),
            p2p_fetches=int(data.get("p2p_fetches", 0)),
            p2p_fallbacks=int(data.get("p2p_fallbacks", 0)),
            neighbors_banned=int(data.get("neighbors_banned", 0)),
            peer_churn_evictions=int(data.get("peer_churn_evictions", 0)),
            p2p_latencies=[float(x) for x in data.get("p2p_latencies", [])],
            p2p_latency_count=int(data.get("p2p_latency_count", 0)),
            p2p_latency_sum=float(data.get("p2p_latency_sum", 0.0)),
            p2p_latency_min=float(data.get("p2p_latency_min", 0.0)),
            p2p_latency_max=float(data.get("p2p_latency_max", 0.0)),
        )


class NeighborLink:
    """One WebRTC association with a swarm neighbor."""

    def __init__(self, peer_id: str, pc: PeerConnection, initiated: bool) -> None:
        self.peer_id = peer_id
        self.pc = pc
        self.initiated = initiated
        self.haves: dict[tuple[str, int], str] = {}  # (rendition, index) -> digest
        self.banned = False
        self.bytes_up = 0
        self.bytes_down = 0

    @property
    def connected(self) -> bool:
        """True once the link is established and not banned."""
        return self.pc.connected and not self.banned


@dataclass
class _PendingFetch:
    index: int
    base_url: str  # doubles as the rendition/content tag on the wire
    uri: str
    neighbor_id: str
    on_done: Callable[[bytes | None, str], None]
    requested_at: float = 0.0
    timer: object = None

    @property
    def key(self) -> tuple[str, int]:
        """The (rendition, index) content key."""
        return (self.base_url, self.index)


class PdnClient:
    """One viewer's PDN SDK instance (implements ``SegmentLoader``)."""

    def __init__(
        self,
        *,
        loop: EventLoop,
        rand: DeterministicRandom,
        host: Host,
        http: HttpClient,
        provider,
        credential: str,
        page_origin: str,
        video_url: str,
        rtc_config: RtcConfig | None = None,
        policy: ClientPolicy | None = None,
        connection_type: str = "wifi",
        name: str = "viewer",
        integrity=None,
        slow_start: int | None = None,
    ) -> None:
        self.loop = loop
        self.rand = rand.fork(f"sdk:{name}")
        self.host = host
        self.http = http
        self.provider = provider
        self.credential = credential
        self.page_origin = page_origin
        self.video_url = video_url
        self.rtc_config = rtc_config or RtcConfig()
        self.policy = policy or ClientPolicy()
        self.connection_type = connection_type
        self.name = name
        self.integrity = integrity
        self.slow_start = (
            slow_start if slow_start is not None else provider.profile.slow_start_segments
        )

        self.stats = SdkStats()
        self.stats.attach_rand(self.rand.fork("latency-reservoir"))
        self.session_id: str | None = None
        self.peer_id: str | None = None
        self.rejoins = 0
        self.started = False
        self.stopped = False
        self.join_error: str | None = None
        self.neighbors: dict[str, NeighborLink] = {}
        self.candidate_ips_seen: list[tuple[float, str, str]] = []  # (t, peer_id, ip)
        # Content is keyed by (rendition base URL, index): multi-bitrate
        # streams must never cross-serve between renditions.
        self._cache: dict[tuple[str, int], bytes] = {}
        self._cdn_digests: dict[tuple[str, int], str] = {}
        # CDN-verified digests of the slow-start window only: this is the
        # reference set the SDK cross-checks neighbor announcements
        # against (the mechanism that defeats *direct* pollution but not
        # segment pollution, §IV-C).
        self._slow_start_digests: dict[tuple[str, int], str] = {}
        self._pending: dict[tuple[str, int], _PendingFetch] = {}
        self._fetch_count = 0
        self._reported_up = 0
        self._upload_window: list[tuple[float, int]] = []
        self._timers = []

    # -- lifecycle -----------------------------------------------------------

    @property
    def signaling_base(self) -> str:
        """Signaling base."""
        return f"https://{self.provider.profile.signaling_host}"

    def _signaling_headers(self) -> dict[str, str]:
        return {"Origin": self.page_origin, "Referer": self.page_origin + "/"}

    def start(self) -> bool:
        """Join the PDN. Returns False (and records why) if auth fails."""
        if self.started:
            return True
        if not self._join():
            return False
        self.started = True
        self._refresh_topology()
        self._timers.append(self.loop.call_every(_TOPOLOGY_INTERVAL, self._refresh_topology))
        self._timers.append(self.loop.call_every(_STATS_INTERVAL, self._report_stats))
        return True

    def _join(self) -> bool:
        response = self.http.post(
            self.signaling_base + "/v2/join",
            json.dumps(
                {
                    "credential": self.credential,
                    "video_url": self.video_url,
                    "relay_only": self.rtc_config.relay_only,
                }
            ).encode(),
            headers=self._signaling_headers(),
        )
        payload = _json_body(response)
        if not response.ok:
            self.join_error = payload.get("error", f"http {response.status}")
            return False
        self.session_id = payload["session_id"]
        self.peer_id = payload["peer_id"]
        self.provider.signaling.attach(self.session_id, self._on_push)
        return True

    def _rejoin(self) -> None:
        """The signaling server forgot us (restart): join again.

        Established WebRTC links keep working — the data plane does not
        depend on the tracker — but a fresh session is needed to learn
        new candidates and report stats."""
        if self.stopped or not self.started:
            return
        if self._join():
            self.rejoins += 1

    def stop(self) -> None:
        """Stop this component."""
        if self.stopped:
            return
        self.stopped = True
        for timer in self._timers:
            timer.cancel()
        self._report_stats()
        if self.session_id is not None:
            self._post("/v2/leave", {})
        for link in self.neighbors.values():
            link.pc.close()

    def _post(self, path: str, body: dict) -> dict:
        body = dict(body)
        body["session_id"] = self.session_id
        response = self.http.post(
            self.signaling_base + path,
            json.dumps(body).encode(),
            headers=self._signaling_headers(),
        )
        payload = _json_body(response)
        if response.status == 403 and payload.get("error") == "unknown session":
            # The tracker lost our session (restart): recover.
            self._rejoin()
        return payload

    # -- fault/churn notifications -------------------------------------------

    def attach_faults(self, injector) -> None:
        """Subscribe to a fault injector's churn notifications.

        Real SDKs see churn through ICE consent timeouts and data-channel
        closures; the injector's notices are the simulator's equivalent
        signal, letting the SDK exercise the exact fallback machinery
        (`_p2p_timeout`, neighbor eviction, topology refill) that a
        misbehaving network triggers in the wild.
        """
        injector.add_listener(self._on_network_fault)

    def _on_network_fault(self, notice) -> None:
        """React to one churn notice (host_down / nat_rebind)."""
        if self.stopped or not self.started:
            return
        if notice.kind == "nat_rebind" and notice.host == self.host.name:
            # Our own mapping changed: re-validate every association so
            # neighbors follow us to the fresh external address.
            for link in list(self.neighbors.values()):
                if link.connected:
                    link.pc.refresh_connectivity()
        elif notice.kind == "host_down" and notice.host != self.host.name:
            for link in list(self.neighbors.values()):
                remote = link.pc.remote_endpoint
                if remote is not None and remote.ip in notice.public_ips:
                    self._evict_neighbor(link)

    def _evict_neighbor(self, link: NeighborLink) -> None:
        """Drop a churned neighbor — gone, not malicious (no ban).

        Pending fetches aimed at it fail over to the CDN immediately
        instead of waiting out the full ``_P2P_TIMEOUT``, and removing
        the entry (rather than banning) lets the next topology refresh
        recruit a replacement.
        """
        self.neighbors.pop(link.peer_id, None)
        self.stats.peer_churn_evictions += 1
        if not link.pc.closed:
            link.pc.close()
        for key, pending in list(self._pending.items()):
            if pending.neighbor_id == link.peer_id:
                if pending.timer is not None:
                    pending.timer.cancel()
                self._p2p_timeout(key)

    # -- topology maintenance ----------------------------------------------------

    def _refresh_topology(self) -> None:
        if self.stopped or not self.started:
            return
        active = [l for l in self.neighbors.values() if not l.banned]
        want = self.policy.max_neighbors - len(active)
        if want <= 0:
            return
        payload = self._post("/v2/candidates", {"limit": want})
        for peer in payload.get("peers", []):
            if peer.get("ip"):
                self.candidate_ips_seen.append((self.loop.now, peer["peer_id"], peer["ip"]))
            if peer["peer_id"] not in self.neighbors:
                self._initiate_connection(peer["peer_id"])

    def _make_pc(self, peer_id: str) -> PeerConnection:
        pc = PeerConnection(
            self.host, self.loop, self.rand, self.rtc_config, name=f"{self.name}->{peer_id}"
        )
        pc.on_message = lambda channel, data, pid=peer_id: self._on_p2p_message(pid, channel, data)
        pc.on_connected = lambda pid=peer_id: self._on_neighbor_connected(pid)
        return pc

    def _initiate_connection(self, peer_id: str) -> None:
        pc = self._make_pc(peer_id)
        self.neighbors[peer_id] = NeighborLink(peer_id, pc, initiated=True)
        pc.create_offer(
            lambda offer: self._post(
                "/v2/relay", {"to": peer_id, "kind": "offer", "payload": render_sdp(offer)}
            )
        )

    def _on_push(self, message: dict) -> None:
        if self.stopped:
            return
        kind = message.get("type")
        sender = message.get("from", "")
        if kind == "offer":
            self._on_remote_offer(sender, message.get("payload") or "")
        elif kind == "answer":
            link = self.neighbors.get(sender)
            if link is not None and link.initiated:
                answer = self._parse_remote_sdp(sender, message.get("payload") or "")
                if answer is not None:
                    link.pc.set_answer(answer)

    def _parse_remote_sdp(self, sender: str, sdp_text: str) -> SessionDescription | None:
        """Parse relayed SDP, logging every candidate address it leaks."""
        try:
            description = parse_sdp(sdp_text)
        except SdpError:
            return None
        for candidate in description.candidates:
            self.candidate_ips_seen.append((self.loop.now, sender, candidate.endpoint.ip))
        return description

    def _on_remote_offer(self, sender: str, sdp_text: str) -> None:
        offer = self._parse_remote_sdp(sender, sdp_text)
        if offer is None:
            return
        existing = self.neighbors.get(sender)
        if existing is not None:
            # Simultaneous-open tie break: the lexicographically smaller
            # peer id's offer survives; the other side will answer ours.
            if existing.initiated and self.peer_id is not None and sender >= self.peer_id:
                return
            existing.pc.close()
        pc = self._make_pc(sender)
        self.neighbors[sender] = NeighborLink(sender, pc, initiated=False)
        pc.accept_offer(
            offer,
            lambda answer: self._post(
                "/v2/relay", {"to": sender, "kind": "answer", "payload": render_sdp(answer)}
            ),
        )

    def _on_neighbor_connected(self, peer_id: str) -> None:
        link = self.neighbors.get(peer_id)
        if link is None or link.banned:
            return
        for rendition, index in self._cache:
            self._send_control(
                link,
                {"type": "have", "r": rendition, "index": index,
                 "digest": self._digest_of((rendition, index))},
            )

    # -- segment loader interface ---------------------------------------------------

    def fetch_playlist(self, url: str, on_done: Callable[[str | None], None]) -> None:
        """Fetch playlist."""
        response = self.http.get(url, headers=self._signaling_headers())
        on_done(response.body.decode() if response.ok else None)

    def fetch_segment(
        self,
        base_url: str,
        uri: str,
        index: int,
        on_done: Callable[[bytes | None, str], None],
    ) -> None:
        """Fetch segment."""
        self._fetch_count += 1
        key = (base_url, index)
        if key in self._cache:
            on_done(self._cache[key], "cache")
            return
        use_p2p = (
            self.started
            and self._fetch_count > self.slow_start
            and self.policy.download_allowed(self.connection_type)
        )
        source = self._pick_source(key) if use_p2p else None
        if source is None:
            self._fetch_from_cdn(base_url, uri, index, on_done)
            return
        self._fetch_from_peer(source, base_url, uri, index, on_done)

    def _pick_source(self, key: tuple[str, int]) -> NeighborLink | None:
        holders = [
            link
            for link in self.neighbors.values()
            if link.connected and key in link.haves and not link.banned
        ]
        return self.rand.choice(holders) if holders else None

    # -- CDN path ---------------------------------------------------------------

    def _fetch_from_cdn(
        self, base_url: str, uri: str, index: int, on_done: Callable[[bytes | None, str], None]
    ) -> None:
        response = self.http.get(base_url + uri, headers=self._signaling_headers())
        if not response.ok:
            on_done(None, "cdn")
            return
        data = response.body
        self.stats.bytes_cdn += len(data)
        digest = hashlib.sha256(data).hexdigest()
        key = (base_url, index)
        self._cdn_digests[key] = digest
        if len(self._slow_start_digests) < self.slow_start and key not in self._slow_start_digests:
            self._slow_start_digests[key] = digest
            self._check_announcements_against(key, digest)
        self._store(key, data)
        if self.integrity is not None:
            self.integrity.on_cdn_segment(self, index, data, rendition=base_url)
        on_done(data, "cdn")

    def _check_announcements_against(self, key: tuple[str, int], authentic_digest: str) -> None:
        """Slow-start consistency check: ban neighbors whose announced
        digest for a CDN-verified segment disagrees with the CDN copy."""
        for link in self.neighbors.values():
            announced = link.haves.get(key)
            if announced is not None and announced != authentic_digest:
                self._ban(link, f"announcement mismatch on segment {key[1]}")

    # -- P2P path ---------------------------------------------------------------

    def _fetch_from_peer(
        self,
        link: NeighborLink,
        base_url: str,
        uri: str,
        index: int,
        on_done: Callable[[bytes | None, str], None],
    ) -> None:
        self.stats.p2p_fetches += 1
        pending = _PendingFetch(index, base_url, uri, link.peer_id, on_done, self.loop.now)
        pending.timer = self.loop.schedule(_P2P_TIMEOUT, self._p2p_timeout, pending.key)
        self._pending[pending.key] = pending
        self._send_control(link, {"type": "request", "r": base_url, "index": index})

    def _p2p_timeout(self, key: tuple[str, int]) -> None:
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        self.stats.p2p_fallbacks += 1
        self._fetch_from_cdn(pending.base_url, pending.uri, pending.index, pending.on_done)

    def _complete_p2p(self, key: tuple[str, int], data: bytes) -> None:
        pending = self._pending.pop(key, None)
        if pending is None:
            return  # unsolicited data; ignore
        index = pending.index
        if pending.timer is not None:
            pending.timer.cancel()
        self.stats.bytes_p2p_down += len(data)
        if self.provider.profile.drm_protected and self.video_url not in self.provider.drm_registry:
            # The Mango TV observation: the DTLS transfer completed, but an
            # unregistered source cannot be decoded, so nothing is played.
            self.stats.p2p_fallbacks += 1
            self._fetch_from_cdn(pending.base_url, pending.uri, index, pending.on_done)
            return

        def deliver(verified: bool) -> None:
            """Push a message to the attached client, if any."""
            if not verified:
                # Integrity defense rejected the segment: ban the sender
                # and fall back to the CDN.
                bad_link = self.neighbors.get(pending.neighbor_id)
                if bad_link is not None:
                    self._ban(bad_link, f"SIM verification failed on segment {index}")
                self.stats.p2p_fallbacks += 1
                self._fetch_from_cdn(pending.base_url, pending.uri, index, pending.on_done)
                return
            self.stats.record_latency(self.loop.now - pending.requested_at)
            self._store(key, data)
            pending.on_done(data, "p2p")

        if self.integrity is not None:
            self.integrity.verify_p2p_segment(
                self, index, data, deliver, rendition=pending.base_url
            )
        else:
            deliver(True)

    # -- serving neighbors ---------------------------------------------------------

    def _on_p2p_message(self, peer_id: str, channel: int, data: bytes) -> None:
        link = self.neighbors.get(peer_id)
        if link is None or link.banned:
            return
        if channel == CONTROL_CHANNEL:
            try:
                message = json.loads(data.decode())
            except ValueError:
                return
            self._on_control(link, message)
        elif channel == DATA_CHANNEL and len(data) >= 6:
            index, tag_len = struct.unpack("!IH", data[:6])
            if len(data) < 6 + tag_len:
                return
            rendition = data[6 : 6 + tag_len].decode(errors="replace")
            payload = data[6 + tag_len :]
            link.bytes_down += len(payload)
            self._complete_p2p((rendition, index), payload)

    def _on_control(self, link: NeighborLink, message: dict) -> None:
        kind = message.get("type")
        if kind == "have":
            key = (str(message.get("r", "")), int(message["index"]))
            digest = str(message["digest"])
            link.haves[key] = digest
            authentic = self._slow_start_digests.get(key)
            if authentic is not None and digest != authentic:
                self._ban(link, f"announcement mismatch on segment {key[1]}")
        elif kind == "request":
            self._serve_request(link, (str(message.get("r", "")), int(message["index"])))
        elif kind == "miss":
            key = (str(message.get("r", "")), int(message["index"]))
            pending = self._pending.get(key)
            if pending is not None and pending.neighbor_id == link.peer_id:
                self._p2p_timeout(key)

    def _serve_request(self, link: NeighborLink, key: tuple[str, int]) -> None:
        data = self._cache.get(key)
        allowed = self.policy.upload_allowed(self.connection_type)
        if data is None or not allowed or self._upload_capped(len(data)):
            self.stats.p2p_requests_failed += 1
            self._send_control(link, {"type": "miss", "r": key[0], "index": key[1]})
            return
        self.stats.p2p_requests_served += 1
        self.stats.bytes_p2p_up += len(data)
        link.bytes_up += len(data)
        self._upload_window.append((self.loop.now, len(data)))
        link.pc.send(DATA_CHANNEL, _data_frame(key, data))

    def _upload_capped(self, size: int) -> bool:
        cap = self.policy.max_upload_bytes_per_sec
        if cap is None:
            return False
        horizon = self.loop.now - 1.0
        recent = sum(n for t, n in self._upload_window if t >= horizon)
        return recent + size > cap

    def _send_control(self, link: NeighborLink, message: dict) -> None:
        if link.pc.closed:
            return
        link.pc.send(CONTROL_CHANNEL, json.dumps(message).encode())

    # -- cache ---------------------------------------------------------------

    def _store(self, key: tuple[str, int], data: bytes) -> None:
        fresh = key not in self._cache
        self._cache[key] = data
        self.loop.schedule(_CACHE_TTL, self._purge, key)
        if fresh:
            digest = hashlib.sha256(data).hexdigest()
            for link in self.neighbors.values():
                if link.connected:
                    self._send_control(
                        link, {"type": "have", "r": key[0], "index": key[1], "digest": digest}
                    )

    def _purge(self, key: tuple[str, int]) -> None:
        self._cache.pop(key, None)

    def _digest_of(self, key: tuple[str, int]) -> str:
        return hashlib.sha256(self._cache[key]).hexdigest()

    def cache_bytes(self) -> int:
        """Cache bytes."""
        return sum(len(v) for v in self._cache.values())

    # -- housekeeping ---------------------------------------------------------

    def _ban(self, link: NeighborLink, reason: str) -> None:
        if link.banned:
            return
        link.banned = True
        self.stats.neighbors_banned += 1
        self._send_control(link, {"type": "bye", "reason": reason})
        link.pc.close()

    def _report_stats(self) -> None:
        if not self.started or self.session_id is None:
            return
        # Always report: the stats ping doubles as the tracker keepalive.
        delta_up = self.stats.bytes_p2p_up - self._reported_up
        self._post("/v2/stats", {"p2p_up": delta_up, "p2p_down": 0})
        self._reported_up = self.stats.bytes_p2p_up

    # -- what an attacker in this position can see ---------------------------------

    def harvested_ips(self) -> list[tuple[float, str]]:
        """Every remote transport address observed by this peer:
        candidates disclosed by signaling plus STUN check sources."""
        out = [(t, ip) for t, _pid, ip in self.candidate_ips_seen]
        for link in self.neighbors.values():
            out.extend((t, ep.ip) for t, ep in link.pc.ice.observed_remotes)
        return out


def _json_body(response) -> dict:
    try:
        return json.loads(response.body.decode() or "{}")
    except ValueError:
        return {}
