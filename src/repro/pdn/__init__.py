"""The peer-assisted delivery network (PDN) itself.

This package implements the services under study: provider profiles
modeling Peer5 / Streamroot / Viblast and the private platform services
(:mod:`repro.pdn.provider`), static-API-key authentication with optional
domain allowlists (:mod:`repro.pdn.auth`), usage billing
(:mod:`repro.pdn.billing`), the signaling/tracker server that forms
swarms and relays SDP (:mod:`repro.pdn.signaling`), neighbor selection
(:mod:`repro.pdn.scheduler`), and the client SDK — a hybrid segment
loader that mixes CDN slow-start with P2P delivery
(:mod:`repro.pdn.sdk`).
"""

from repro.pdn.provider import (
    PEER5,
    STREAMROOT,
    VIBLAST,
    AuthPolicyKind,
    BillingModel,
    PdnProvider,
    ProviderProfile,
    private_profile,
)
from repro.pdn.auth import ApiKey, AuthDecision, Authenticator
from repro.pdn.billing import BillingAccount
from repro.pdn.policy import CellularPolicy, ClientPolicy
from repro.pdn.scheduler import SwarmScheduler
from repro.pdn.signaling import PdnSignalingServer, SignalingSession
from repro.pdn.sdk import PdnClient

__all__ = [
    "PEER5",
    "STREAMROOT",
    "VIBLAST",
    "AuthPolicyKind",
    "BillingModel",
    "PdnProvider",
    "ProviderProfile",
    "private_profile",
    "ApiKey",
    "AuthDecision",
    "Authenticator",
    "BillingAccount",
    "CellularPolicy",
    "ClientPolicy",
    "SwarmScheduler",
    "PdnSignalingServer",
    "SignalingSession",
    "PdnClient",
]
