"""Website category engines (the VirusTotal category filter).

The paper filters the Tranco top 300K to 68,713 video-related domains
using five category engines, keeping a domain when *any* engine's label
contains a video keyword. Each engine here is an imperfect labeler of a
site's true category — with per-engine noise, so a site can be kept by
one engine and missed by another, like the real ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rand import DeterministicRandom
from repro.web.page import Website

ENGINE_NAMES = (
    "Forcepoint ThreatSeeker",
    "Sophos",
    "BitDefender",
    "Comodo Valkyrie Verdict",
    "alphaMountain.ai",
)

VIDEO_KEYWORDS = ("tv", "media", "video", "stream", "entertainment")

# What each engine tends to call a site of a given true category.
_LABELS_BY_CATEGORY = {
    "tv": ["tv", "streaming media", "entertainment"],
    "video": ["video", "media sharing", "streaming media"],
    "live": ["tv", "live media", "streaming media"],
    "news": ["news", "news and media", "information"],
    "adult": ["adult", "adult media"],
    "general": ["business", "shopping", "technology", "reference"],
    "social": ["social networking", "social media"],
}


@dataclass
class CategoryEngine:
    """One labeler with a miss rate (returns a non-video label sometimes)."""

    name: str
    miss_rate: float
    rand: DeterministicRandom

    def label(self, site: Website) -> str:
        """Label."""
        labels = _LABELS_BY_CATEGORY.get(site.category, _LABELS_BY_CATEGORY["general"])
        stream = self.rand.fork(f"{self.name}:{site.domain}")
        if stream.random() < self.miss_rate:
            return "uncategorized"
        return stream.choice(labels)


def default_engines(rand: DeterministicRandom) -> list[CategoryEngine]:
    """Default engines."""
    rates = [0.25, 0.30, 0.20, 0.35, 0.30]
    return [
        CategoryEngine(name, rate, rand.fork(f"engine:{name}"))
        for name, rate in zip(ENGINE_NAMES, rates)
    ]


def is_video_related(site: Website, engines: list[CategoryEngine]) -> bool:
    """Paper rule: keep the domain if any engine label has a video keyword."""
    for engine in engines:
        label = engine.label(site)
        if any(keyword in label for keyword in VIDEO_KEYWORDS):
            return True
    return False
