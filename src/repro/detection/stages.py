"""Composable streaming detection stages (§III-C, decomposed).

The monolithic :class:`~repro.detection.pipeline.DetectionPipeline`
walks a fully materialised corpus; at millions of domains neither the
corpus nor the per-site scan results fit in memory. These stages express
the same methodology over a *stream* of corpus specs:

    GenerateShard -> CategorizeAndSearch -> SignatureScan   (per shard)
    ConfirmDynamic -> Report                                (driver)

Every stage satisfies the :class:`Stage` protocol: a typed
``process(item)`` returning that item's outputs for the next stage, and
a picklable, canonical-JSON-digestable ``state_dict()``. Stage state
lives on the instance — never on module globals — so shard workers stay
isolated and identical work always digests identically.

The scan stages keep only what the report needs: potential-customer
scans, extracted keys, counters. Everything else (noise sites, clean
scans) is observed and dropped, which is what bounds a shard's memory
to the ground-truth population regardless of corpus size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable

from repro.detection.categorize import default_engines, is_video_related
from repro.detection.dynamic import ConfirmationResult, DynamicConfirmer
from repro.detection.scanner import ApkScanner, ScanResult, WebsiteScanner
from repro.detection.signatures import Signature
from repro.environment import Environment
from repro.harness.result import content_digest
from repro.web.apk import AndroidApp
from repro.web.corpus import AppSpec, CorpusBuilder, CorpusConfig, CorpusShard, SiteSpec
from repro.web.page import Website


@runtime_checkable
class Stage(Protocol):
    """One streaming-pipeline stage.

    ``process`` maps one input item to zero or more output items for the
    next stage; ``state_dict`` exposes everything the stage accumulated
    as plain JSON types (picklable, digestable via
    :func:`~repro.harness.result.content_digest`).
    """

    name: str

    def process(self, item) -> list:
        """Consume one item; return the outputs for the next stage."""
        ...  # pragma: no cover - protocol

    def state_dict(self) -> dict:
        """The stage's accumulated state as plain JSON types."""
        ...  # pragma: no cover - protocol


@dataclass
class SiteItem:
    """A materialised website flowing through the stages."""

    spec: SiteSpec
    site: Website


@dataclass
class AppItem:
    """A materialised Android app flowing through the stages."""

    spec: AppSpec
    app: AndroidApp


class GenerateShard:
    """Stage 0: materialise one shard's specs, one item at a time.

    With ``keep=False`` (the streaming default) sites are registered for
    HTTP scanning only; :meth:`release` drops them from the URL space
    once downstream stages are done, so at most one droppable site is
    resident at a time.
    """

    name = "generate"

    def __init__(self, builder: CorpusBuilder, keep: bool = False) -> None:
        self.builder = builder
        self.keep = keep
        self.sites_generated = 0
        self.apps_generated = 0

    def process(self, spec: SiteSpec | AppSpec) -> list:
        """Materialise one spec into a :class:`SiteItem`/:class:`AppItem`."""
        if isinstance(spec, SiteSpec):
            self.sites_generated += 1
            return [SiteItem(spec, self.builder.materialize_site(spec, keep=self.keep))]
        self.apps_generated += 1
        return [AppItem(spec, self.builder.materialize_app(spec, keep=self.keep))]

    def release(self, item: SiteItem | AppItem) -> None:
        """Drop a streamed item once the downstream stages are done."""
        if isinstance(item, SiteItem) and not self.keep:
            self.builder.release_site(item.spec)

    def state_dict(self) -> dict:
        """Counts of materialised specs, by kind."""
        return {"sites_generated": self.sites_generated, "apps_generated": self.apps_generated}


class CategorizeAndSearch:
    """Stage 1: the category-engine filter plus source-code search.

    Reproduces the monolithic pipeline's keep rule exactly: a site
    survives when any category engine labels it video-related *or* the
    source-search engines (NerdyData/PublicWWW) hit a signature in its
    indexed source. Engine labels come from stateless per-site RNG
    forks, so the verdict for a domain is identical in every shard
    layout. Apps pass through — the paper's app pipeline has no
    category filter.
    """

    name = "categorize+search"

    def __init__(self, env: Environment, signatures: list[Signature]) -> None:
        # Same fork the monolithic pipeline uses — labels are identical.
        self.engines = default_engines(env.rand.fork("category-engines"))
        self.urlspace = env.urlspace
        self.signatures = signatures
        from repro.detection.source_search import SourceSearchEngine

        self.search = SourceSearchEngine("nerdydata+publicwww")
        self.source_search_hits: set[str] = set()
        self.sites_dropped = 0

    def process(self, item: SiteItem | AppItem) -> list:
        """Filter one site (apps pass through)."""
        if isinstance(item, AppItem):
            return [item]
        hit = self.search.match_site(self.urlspace, item.site, self.signatures)
        if hit:
            self.source_search_hits.add(item.spec.domain)
        if is_video_related(item.site, self.engines) or hit:
            return [item]
        self.sites_dropped += 1
        return []

    def state_dict(self) -> dict:
        """The engines' hit set plus how many sites the filter dropped."""
        return {
            "source_search_hits": sorted(self.source_search_hits),
            "sites_dropped": self.sites_dropped,
        }


class SignatureScan:
    """Stage 2: crawl surviving sites / unpack apps, match signatures.

    Only *potential* scans (at least one signature fired) are retained;
    clean scans contribute to the counters and are dropped — that is the
    stage's memory bound.
    """

    name = "signature-scan"

    def __init__(self, urlspace, signatures: list[Signature]) -> None:
        self.site_scanner = WebsiteScanner(urlspace, signatures=signatures)
        self.apk_scanner = ApkScanner()
        self.video_related_scanned = 0
        self.site_scans: dict[str, ScanResult] = {}
        self.app_scans: dict[str, ScanResult] = {}
        self.extracted_keys: set[str] = set()
        self.generic_webrtc_sites: list[str] = []

    def process(self, item: SiteItem | AppItem) -> list:
        """Scan one item; retain the result only if a signature fired."""
        if isinstance(item, SiteItem):
            self.video_related_scanned += 1
            scan = self.site_scanner.scan(item.spec.domain)
            self.extracted_keys.update(scan.extracted_keys)
            if scan.is_potential:
                self.site_scans[item.spec.domain] = scan
                if scan.provider() == "webrtc-generic":
                    self.generic_webrtc_sites.append(item.spec.domain)
        else:
            scan = self.apk_scanner.scan(item.app)
            self.extracted_keys.update(scan.extracted_keys)
            if scan.is_potential:
                self.app_scans[item.app.package_name] = scan
        return [scan]

    def state_dict(self) -> dict:
        """Retained potential scans, keys, and scan counters."""
        return {
            "video_related_scanned": self.video_related_scanned,
            "pages_fetched": self.site_scanner.pages_fetched,
            "site_scans": {d: s.to_dict() for d, s in sorted(self.site_scans.items())},
            "app_scans": {p: s.to_dict() for p, s in sorted(self.app_scans.items())},
            "extracted_keys": sorted(self.extracted_keys),
            "generic_webrtc_sites": sorted(self.generic_webrtc_sites),
        }


class ConfirmDynamic:
    """Stage 3 (driver-side): dynamic confirmation of one candidate."""

    name = "confirm"

    def __init__(
        self, env: Environment, watch_seconds: float = 40.0, probe_country: str = "US"
    ) -> None:
        self.confirmer = DynamicConfirmer(
            env, watch_seconds=watch_seconds, probe_country=probe_country
        )
        self.confirmations: dict[str, ConfirmationResult] = {}

    def process(self, item: SiteItem | AppItem) -> list:
        """Dynamically test one candidate; always returns one result."""
        if isinstance(item, SiteItem):
            result = self.confirmer.confirm_site(item.site)
        else:
            result = self.confirmer.confirm_app(item.app)
        self.confirmations[result.target] = result
        return [result]

    def state_dict(self) -> dict:
        """How many targets were tested and which ones confirmed."""
        return {
            "targets_tested": self.confirmer.targets_tested,
            "confirmed": sorted(t for t, r in self.confirmations.items() if r.confirmed),
        }


@dataclass
class ShardScanState:
    """One shard's scan-phase output: the join of its stages' states.

    Picklable (ships back from pool workers), JSON-round-trippable
    (persisted per shard for ``--resume``), and digestable — the digest
    recorded in the run manifest is ``content_digest(self.to_dict())``.
    """

    shard_index: int
    shard_count: int
    sites_generated: int = 0
    apps_generated: int = 0
    sites_dropped: int = 0
    video_related_scanned: int = 0
    pages_fetched: int = 0
    site_scans: dict[str, ScanResult] = field(default_factory=dict)
    app_scans: dict[str, ScanResult] = field(default_factory=dict)
    extracted_keys: set[str] = field(default_factory=set)
    source_search_hits: set[str] = field(default_factory=set)
    generic_webrtc_sites: list[str] = field(default_factory=list)

    @classmethod
    def collect(
        cls,
        shard: CorpusShard,
        generate: GenerateShard,
        categorize: CategorizeAndSearch,
        scan: SignatureScan,
    ) -> "ShardScanState":
        """Join the three scan stages' states into one shard record."""
        return cls(
            shard_index=shard.index,
            shard_count=shard.count,
            sites_generated=generate.sites_generated,
            apps_generated=generate.apps_generated,
            sites_dropped=categorize.sites_dropped,
            video_related_scanned=scan.video_related_scanned,
            pages_fetched=scan.site_scanner.pages_fetched,
            site_scans=dict(scan.site_scans),
            app_scans=dict(scan.app_scans),
            extracted_keys=set(scan.extracted_keys),
            source_search_hits=set(categorize.source_search_hits),
            generic_webrtc_sites=sorted(scan.generic_webrtc_sites),
        )

    def to_dict(self) -> dict:
        """Canonical JSON form: sorted keys, sorted sets, stable order."""
        return {
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "sites_generated": self.sites_generated,
            "apps_generated": self.apps_generated,
            "sites_dropped": self.sites_dropped,
            "video_related_scanned": self.video_related_scanned,
            "pages_fetched": self.pages_fetched,
            "site_scans": {d: s.to_dict() for d, s in sorted(self.site_scans.items())},
            "app_scans": {p: s.to_dict() for p, s in sorted(self.app_scans.items())},
            "extracted_keys": sorted(self.extracted_keys),
            "source_search_hits": sorted(self.source_search_hits),
            "generic_webrtc_sites": sorted(self.generic_webrtc_sites),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardScanState":
        """Rebuild a persisted shard state (the ``--resume`` load path)."""
        return cls(
            shard_index=data["shard_index"],
            shard_count=data["shard_count"],
            sites_generated=data["sites_generated"],
            apps_generated=data["apps_generated"],
            sites_dropped=data["sites_dropped"],
            video_related_scanned=data["video_related_scanned"],
            pages_fetched=data["pages_fetched"],
            site_scans={d: ScanResult.from_dict(s) for d, s in data["site_scans"].items()},
            app_scans={p: ScanResult.from_dict(s) for p, s in data["app_scans"].items()},
            extracted_keys=set(data["extracted_keys"]),
            source_search_hits=set(data["source_search_hits"]),
            generic_webrtc_sites=list(data["generic_webrtc_sites"]),
        )

    def content_digest(self) -> str:
        """The digest the run manifest pins for this shard."""
        return content_digest(self.to_dict())


class Report:
    """Stage 4: reduce a merged scan state into a :class:`PipelineReport`.

    Confirmation maps start empty; the driver fills them through its
    :class:`ConfirmDynamic` stages in the monolithic pipeline's exact
    confirmation order.
    """

    name = "report"

    def __init__(self, config: CorpusConfig) -> None:
        self.config = config
        self.reports_built = 0

    def process(self, merged: ShardScanState) -> list:
        """Assemble the scan-side report fields from a merged state."""
        from repro.detection.pipeline import PipelineReport

        report = PipelineReport(
            virtual_total_domains=self.config.virtual_total_domains,
            virtual_video_related=self.config.virtual_video_related,
        )
        report.video_related_scanned = merged.video_related_scanned
        report.site_scans = dict(merged.site_scans)
        report.app_scans = dict(merged.app_scans)
        report.extracted_keys = set(merged.extracted_keys)
        report.source_search_hits = set(merged.source_search_hits)
        report.generic_webrtc_sites = list(merged.generic_webrtc_sites)
        self.reports_built += 1
        return [report]

    def state_dict(self) -> dict:
        """How many reports this stage assembled."""
        return {"reports_built": self.reports_built}


def run_stages(specs: Iterable, generate: GenerateShard, stages: list[Stage]) -> None:
    """Drive specs through generate + the scan stages, releasing as it goes.

    The inner fold is the whole composition law: each stage's outputs
    feed the next stage; an empty output list short-circuits the item.
    """
    for spec in specs:
        for item in generate.process(spec):
            outputs = [item]
            for stage in stages:
                outputs = [out for value in outputs for out in stage.process(value)]
                if not outputs:
                    break
            generate.release(item)
